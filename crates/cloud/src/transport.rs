//! The transport seam between clients and the cloud, with deterministic
//! fault injection.
//!
//! The paper's deployment ran over real GPRS links to an Azure instance
//! that was routinely unreachable; the seed reproduction modelled only a
//! binary outage flag. This module inserts a proper transport boundary —
//! [`CloudTransport`] — between `CloudClient` and [`SharedCloud`], so a
//! [`FaultyCloud`] decorator can inject seeded, reproducible per-request
//! faults: drop, delay-by-N-sim-minutes, duplicate delivery, reorder, and
//! error responses, driven by a [`FaultPlan`].
//!
//! Fault semantics (all deterministic given the plan's seed):
//!
//! * **Drop** — the request is lost before the server sees it; the caller
//!   receives a synthetic [`STATUS_TIMEOUT`] response.
//! * **Error** — the server is not invoked; the caller receives a
//!   [`STATUS_INJECTED_ERROR`] response (a flaky proxy/gateway).
//! * **Delay** — the request is *held* and delivered to the server once
//!   its due time has passed (piggybacking on later traffic or an explicit
//!   [`FaultyCloud::flush`]); the caller times out ([`STATUS_TIMEOUT`]).
//!   The server-side effect still happens — late — which is exactly the
//!   hazard idempotent endpoints must absorb.
//! * **Reorder** — the request is held and delivered right *after* the
//!   next request that passes through, so the server observes the two in
//!   swapped order; the caller of the held request times out.
//! * **Duplicate** — the request is delivered to the server twice
//!   back-to-back; the caller sees the second response.
//!
//! A dropped or timed-out request makes the retrying client re-send, so
//! at-least-once delivery plus server-side deduplication (sequence
//! watermarks) yields exactly-once *absorption* — the invariant the chaos
//! test-suite pins.
//!
//! Since the middleware refactor, [`FaultyCloud`] is implemented as a
//! [`Layer`]: the fault decision wraps a [`Next`] continuation, the same
//! seam the server-side stack (outage → admission → auth → …) composes
//! over. Its [`CloudTransport`] impl is a one-liner that runs that layer
//! over the wrapped cloud, so existing call sites are untouched.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use pmware_obs::{Counter, FieldValue, Obs};
use pmware_world::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::api::{Request, Response};
use crate::instance::SharedCloud;
use crate::layer::{Layer, Next};

/// Synthetic status for a request (or its response) lost in transit: the
/// client waited out its timeout without hearing back. Retryable.
pub const STATUS_TIMEOUT: u16 = 599;

/// Synthetic status for an injected transport-level error (a flaky
/// gateway answering 502 without consulting the service). Retryable.
pub const STATUS_INJECTED_ERROR: u16 = 502;

/// Synthetic client-side status: the per-maintenance-pass request budget
/// is exhausted, so the request was never sent. Not retryable within the
/// pass — the next pass gets a fresh budget.
pub const STATUS_BUDGET_EXHAUSTED: u16 = 597;

/// The request reached an instance that no longer owns the caller's
/// state (the user was migrated away during a federation failover or
/// drain). The client should refresh its topology snapshot and re-send
/// to its new instance; the federated endpoint does exactly that before
/// the client's retry loop ever sees the status.
pub const STATUS_MISDIRECTED: u16 = 421;

/// Anything a cloud client can talk to: the real [`SharedCloud`] or a
/// fault-injecting decorator around it.
pub trait CloudTransport: Send + Sync + fmt::Debug {
    /// Delivers one request at simulated instant `now`.
    fn send(&self, request: &Request, now: SimTime) -> Response;
}

impl CloudTransport for SharedCloud {
    fn send(&self, request: &Request, now: SimTime) -> Response {
        self.handle(request, now)
    }
}

/// Cheap, cloneable handle to some [`CloudTransport`] — what clients hold.
///
/// ```
/// use pmware_cloud::{CellDatabase, CloudEndpoint, CloudInstance, Request, SharedCloud};
/// use pmware_world::SimTime;
/// use serde_json::json;
///
/// let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::new(), 1));
/// let endpoint: CloudEndpoint = cloud.into();
/// let resp = endpoint.send(
///     &Request::post("/api/v1/registration", json!({"imei": "1", "email": "a@x"})),
///     SimTime::EPOCH,
/// );
/// assert!(resp.is_success());
/// ```
#[derive(Debug, Clone)]
pub struct CloudEndpoint(Arc<dyn CloudTransport>);

impl CloudEndpoint {
    /// Wraps any transport.
    pub fn new(transport: impl CloudTransport + 'static) -> Self {
        CloudEndpoint(Arc::new(transport))
    }

    /// Delivers one request at simulated instant `now`.
    pub fn send(&self, request: &Request, now: SimTime) -> Response {
        self.0.send(request, now)
    }
}

impl From<SharedCloud> for CloudEndpoint {
    fn from(cloud: SharedCloud) -> Self {
        CloudEndpoint::new(cloud)
    }
}

impl From<FaultyCloud> for CloudEndpoint {
    fn from(faulty: FaultyCloud) -> Self {
        CloudEndpoint::new(faulty)
    }
}

/// One kind of injected transport fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Request lost before the server sees it.
    Drop,
    /// Request held and delivered late; the caller times out.
    Delay,
    /// Request delivered to the server twice.
    Duplicate,
    /// Request held and delivered after the next one, swapping their order.
    Reorder,
    /// Transport-level error response without touching the server.
    Error,
}

impl FaultKind {
    /// Stable lower-case name, used as the `kind` metric label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Error => "error",
        }
    }
}

/// All five fault kinds.
pub const ALL_FAULT_KINDS: [FaultKind; 5] = [
    FaultKind::Drop,
    FaultKind::Delay,
    FaultKind::Duplicate,
    FaultKind::Reorder,
    FaultKind::Error,
];

/// A reproducible plan for which requests get which faults.
///
/// Either **rate-based** (each matching request faults with probability
/// `rate`, kind chosen uniformly from `kinds`, both drawn from a
/// xoshiro-seeded stream so runs replay exactly) or **schedule-based**
/// (an explicit list of `(matching-request-index, kind)` pairs).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
    kinds: Vec<FaultKind>,
    delay: SimDuration,
    path_filter: Option<String>,
    schedule: Vec<(u64, FaultKind)>,
}

impl FaultPlan {
    /// A rate-based plan over all five fault kinds.
    pub fn with_rate(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rate,
            kinds: ALL_FAULT_KINDS.to_vec(),
            delay: SimDuration::from_minutes(10),
            path_filter: None,
            schedule: Vec::new(),
        }
    }

    /// A schedule-based plan: the `i`-th matching request gets `kind`.
    pub fn with_schedule(seed: u64, schedule: Vec<(u64, FaultKind)>) -> FaultPlan {
        FaultPlan {
            seed,
            rate: 0.0,
            kinds: ALL_FAULT_KINDS.to_vec(),
            delay: SimDuration::from_minutes(10),
            path_filter: None,
            schedule,
        }
    }

    /// Restricts the injected kinds (rate-based plans).
    pub fn kinds(mut self, kinds: &[FaultKind]) -> FaultPlan {
        assert!(!kinds.is_empty(), "a fault plan needs at least one kind");
        self.kinds = kinds.to_vec();
        self
    }

    /// Sets the delay magnitude for [`FaultKind::Delay`].
    pub fn delay(mut self, delay: SimDuration) -> FaultPlan {
        self.delay = delay;
        self
    }

    /// Only faults requests whose path contains `fragment`; other requests
    /// pass through untouched and do not advance the request index.
    pub fn only_path(mut self, fragment: impl Into<String>) -> FaultPlan {
        self.path_filter = Some(fragment.into());
        self
    }

    /// The plan's seed (for reporting).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's fault rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

/// Counters of what the decorator did, for reports and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Requests that entered the decorator.
    pub requests: u64,
    /// Faults injected in total.
    pub faults: u64,
    /// Requests lost outright.
    pub drops: u64,
    /// Requests held for late delivery.
    pub delays: u64,
    /// Requests delivered twice.
    pub duplicates: u64,
    /// Requests held to swap order with their successor.
    pub reorders: u64,
    /// Injected error responses.
    pub errors: u64,
    /// Held requests that were eventually delivered to the server.
    pub late_deliveries: u64,
}

#[derive(Debug)]
struct HeldRequest {
    request: Request,
    /// Earliest instant at which the request may reach the server.
    due: SimTime,
    /// Reordered requests are delivered right after the next pass-through
    /// request regardless of `due`.
    after_next: bool,
}

/// Registry-backed fault counters. The decorator always carries a live
/// registry (a private one by default), so [`FaultyCloud::stats`] stays a
/// correct snapshot view whether or not a study attached shared
/// observability via [`FaultyCloud::set_obs`].
#[derive(Debug)]
struct FaultMetrics {
    obs: Obs,
    requests: Counter,
    /// Indexed in [`ALL_FAULT_KINDS`] order.
    by_kind: [Counter; ALL_FAULT_KINDS.len()],
    late_deliveries: Counter,
}

impl FaultMetrics {
    fn resolve(obs: Obs) -> FaultMetrics {
        let requests = obs.counter("transport_requests_total", &[]);
        let by_kind = std::array::from_fn(|i| {
            obs.counter(
                "transport_faults_total",
                &[("kind", ALL_FAULT_KINDS[i].label())],
            )
        });
        let late_deliveries = obs.counter("transport_late_deliveries_total", &[]);
        FaultMetrics {
            obs,
            requests,
            by_kind,
            late_deliveries,
        }
    }

    fn kind(&self, kind: FaultKind) -> &Counter {
        let slot = ALL_FAULT_KINDS
            .iter()
            .position(|k| *k == kind)
            .expect("known kind");
        &self.by_kind[slot]
    }

    fn snapshot(&self) -> FaultStats {
        let per: Vec<u64> = self.by_kind.iter().map(|c| c.get()).collect();
        FaultStats {
            requests: self.requests.get(),
            faults: per.iter().sum(),
            drops: per[0],
            delays: per[1],
            duplicates: per[2],
            reorders: per[3],
            errors: per[4],
            late_deliveries: self.late_deliveries.get(),
        }
    }
}

#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
    enabled: bool,
    /// Matching requests seen so far (the schedule index).
    seen: u64,
    held: VecDeque<HeldRequest>,
    metrics: FaultMetrics,
}

impl FaultState {
    /// Decides the fault for one request, advancing the deterministic
    /// stream. `None` means the request passes through.
    fn decide(&mut self, request: &Request) -> Option<FaultKind> {
        if !self.enabled {
            return None;
        }
        if let Some(fragment) = &self.plan.path_filter {
            if !request.path.contains(fragment.as_str()) {
                return None;
            }
        }
        let index = self.seen;
        self.seen += 1;
        if !self.plan.schedule.is_empty() {
            return self
                .plan
                .schedule
                .iter()
                .find(|(i, _)| *i == index)
                .map(|(_, kind)| *kind);
        }
        if self.plan.rate <= 0.0 || !self.rng.gen_bool(self.plan.rate.min(1.0)) {
            return None;
        }
        let kind = self.plan.kinds[self.rng.gen_range(0..self.plan.kinds.len())];
        Some(kind)
    }
}

/// A fault-injecting decorator around a [`SharedCloud`].
///
/// Clones share one fault stream, so the decorator can be handed to a
/// client while the test keeps a handle for [`FaultyCloud::flush`],
/// [`FaultyCloud::set_enabled`] and [`FaultyCloud::stats`].
#[derive(Debug, Clone)]
pub struct FaultyCloud {
    inner: SharedCloud,
    state: Arc<Mutex<FaultState>>,
}

impl FaultyCloud {
    /// Decorates `inner` with `plan`. Injection starts enabled.
    pub fn new(inner: SharedCloud, plan: FaultPlan) -> FaultyCloud {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultyCloud {
            inner,
            state: Arc::new(Mutex::new(FaultState {
                plan,
                rng,
                enabled: true,
                seen: 0,
                held: VecDeque::new(),
                metrics: FaultMetrics::resolve(Obs::new().for_actor("transport")),
            })),
        }
    }

    /// Re-binds the decorator's counters (and trace events) to `obs`,
    /// carrying the totals accumulated so far. With a metrics-less handle
    /// the private registry is kept so [`FaultyCloud::stats`] stays
    /// correct.
    pub fn set_obs(&self, obs: &Obs) {
        let mut state = self.state.lock();
        let current = state.metrics.snapshot();
        let obs = obs.clone().metrics_or(&state.metrics.obs);
        state.metrics = FaultMetrics::resolve(obs);
        state.metrics.requests.set(current.requests);
        state.metrics.kind(FaultKind::Drop).set(current.drops);
        state.metrics.kind(FaultKind::Delay).set(current.delays);
        state
            .metrics
            .kind(FaultKind::Duplicate)
            .set(current.duplicates);
        state.metrics.kind(FaultKind::Reorder).set(current.reorders);
        state.metrics.kind(FaultKind::Error).set(current.errors);
        state.metrics.late_deliveries.set(current.late_deliveries);
    }

    /// The undecorated cloud, for server-side assertions and outage flags.
    pub fn inner(&self) -> &SharedCloud {
        &self.inner
    }

    /// Turns injection on or off (held requests are kept either way).
    /// Disabling models the network recovering — the standard epilogue of
    /// a chaos run before asserting convergence.
    pub fn set_enabled(&self, enabled: bool) {
        self.state.lock().enabled = enabled;
    }

    /// What the decorator has done so far (a snapshot view over the
    /// metrics registry).
    pub fn stats(&self) -> FaultStats {
        self.state.lock().metrics.snapshot()
    }

    /// Delivers every held request (delayed or reordered) to the server at
    /// `now`, regardless of due time. Models queued traffic draining once
    /// the link recovers.
    pub fn flush(&self, now: SimTime) {
        let mut state = self.state.lock();
        while let Some(held) = state.held.pop_front() {
            state.metrics.late_deliveries.inc();
            let _ = Next::new(&[], &self.inner).run(&held.request, now);
        }
    }

    /// Delivers held requests whose due time has passed.
    fn flush_due(&self, state: &mut FaultState, now: SimTime, next: Next<'_>) {
        let mut keep = VecDeque::new();
        while let Some(held) = state.held.pop_front() {
            if !held.after_next && held.due <= now {
                state.metrics.late_deliveries.inc();
                let _ = next.run(&held.request, now);
            } else {
                keep.push_back(held);
            }
        }
        state.held = keep;
    }

    /// Delivers held reordered requests (after their successor went
    /// through).
    fn flush_after_next(&self, state: &mut FaultState, now: SimTime, next: Next<'_>) {
        let mut keep = VecDeque::new();
        while let Some(held) = state.held.pop_front() {
            if held.after_next {
                state.metrics.late_deliveries.inc();
                let _ = next.run(&held.request, now);
            } else {
                keep.push_back(held);
            }
        }
        state.held = keep;
    }

    fn timeout_response() -> Response {
        Response::error(STATUS_TIMEOUT, "request timed out")
    }
}

impl Layer for FaultyCloud {
    fn call(&self, request: &Request, now: SimTime, next: Next<'_>) -> Response {
        let mut state = self.state.lock();
        state.metrics.requests.inc();
        // Held traffic whose due time has passed lands first.
        self.flush_due(&mut state, now, next);
        let decision = state.decide(request);
        if let Some(kind) = decision {
            state.metrics.kind(kind).inc();
            state.metrics.obs.event(
                now,
                "transport.fault",
                &[
                    ("kind", FieldValue::from(kind.label())),
                    ("path", FieldValue::from(request.path.as_str())),
                ],
            );
            // Annotate the caller's causal trace with the injection. The
            // id is allocated here, on the caller's own thread, so span
            // ids within a trace stay schedule-independent (held requests
            // delivered later from other threads deliberately do NOT
            // record spans — that allocation would race the owner's).
            if request.ctx.is_active() {
                if let Some(sink) = state.metrics.obs.spans() {
                    let at_us = now.as_seconds().saturating_mul(1_000_000);
                    let id = sink.alloc(request.ctx.trace);
                    sink.record(
                        request.ctx.trace,
                        id,
                        request.ctx.parent,
                        &format!("fault:{}", kind.label()),
                        at_us,
                        at_us,
                        &[("path", FieldValue::from(request.path.as_str()))],
                    );
                }
            }
        }
        match decision {
            None => {
                let response = next.run(request, now);
                // A reordered predecessor is delivered right behind us.
                self.flush_after_next(&mut state, now, next);
                response
            }
            Some(FaultKind::Drop) => Self::timeout_response(),
            Some(FaultKind::Error) => {
                Response::error(STATUS_INJECTED_ERROR, "bad gateway (injected)")
            }
            Some(FaultKind::Delay) => {
                let due = now + state.plan.delay;
                state.held.push_back(HeldRequest {
                    request: request.clone(),
                    due,
                    after_next: false,
                });
                Self::timeout_response()
            }
            Some(FaultKind::Reorder) => {
                state.held.push_back(HeldRequest {
                    request: request.clone(),
                    due: now,
                    after_next: true,
                });
                Self::timeout_response()
            }
            Some(FaultKind::Duplicate) => {
                let _first = next.run(request, now);
                next.run(request, now)
            }
        }
    }
}

impl CloudTransport for FaultyCloud {
    fn send(&self, request: &Request, now: SimTime) -> Response {
        // The fault boundary is where the wire exists: spell the request
        // as JSON bytes (rendered once and cached on the request, so a
        // retry schedule re-sends the same encoding), parse them back,
        // run the fault layer over the wrapped cloud, and round-trip the
        // response the same way — the full marshalling path the Django
        // service saw. An undecorated [`SharedCloud`] endpoint skips all
        // of this and moves typed payloads end-to-end.
        // The span context and latency annotation are diagnostics, not
        // wire state: both are copied across the marshalling boundary by
        // hand, exactly like a tracing header rides outside the body.
        let parsed = Request::from_bytes(request.wire_bytes())
            .expect("request round-trips")
            .with_ctx(request.ctx);
        let response = self.call(&parsed, now, Next::new(&[], &self.inner));
        let latency = response.latency_us();
        let wire = Response::from_bytes(&response.to_bytes()).expect("response round-trips");
        match latency {
            Some((queue_us, service_us)) => wire.with_latency(queue_us, service_us),
            None => wire,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geolocate::CellDatabase;
    use crate::instance::CloudInstance;
    use serde_json::json;

    fn cloud() -> SharedCloud {
        SharedCloud::new(CloudInstance::new(CellDatabase::new(), 9))
    }

    fn register(endpoint: &CloudEndpoint) -> String {
        let resp = endpoint.send(
            &Request::post(
                "/api/v1/registration",
                json!({"imei": "i-1", "email": "a@x.com"}),
            ),
            SimTime::EPOCH,
        );
        assert!(resp.is_success(), "{resp:?}");
        resp.json()["token"].as_str().unwrap().to_owned()
    }

    #[test]
    fn passthrough_when_disabled_or_zero_rate() {
        let faulty = FaultyCloud::new(cloud(), FaultPlan::with_rate(1, 0.0));
        let endpoint: CloudEndpoint = faulty.clone().into();
        let token = register(&endpoint);
        let resp = endpoint.send(
            &Request::get("/api/v1/places").with_token(&token),
            SimTime::EPOCH,
        );
        assert!(resp.is_success());
        assert_eq!(faulty.stats().faults, 0);
        assert_eq!(faulty.stats().requests, 2);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let record = |seed: u64| -> Vec<u16> {
            let faulty = FaultyCloud::new(
                cloud(),
                FaultPlan::with_rate(seed, 0.5).kinds(&[FaultKind::Drop, FaultKind::Error]),
            );
            let endpoint: CloudEndpoint = faulty.clone().into();
            faulty.set_enabled(false);
            let token = register(&endpoint);
            faulty.set_enabled(true);
            (0..20)
                .map(|i| {
                    endpoint
                        .send(
                            &Request::get("/api/v1/places").with_token(&token),
                            SimTime::from_seconds(i * 60),
                        )
                        .status
                })
                .collect()
        };
        let a = record(7);
        let b = record(7);
        let c = record(8);
        assert_eq!(a, b, "same seed must replay identically");
        assert_ne!(a, c, "different seeds should differ");
        assert!(a.iter().any(|s| *s != 200), "rate 0.5 must fault something");
    }

    #[test]
    fn drop_times_out_without_reaching_the_server() {
        let faulty = FaultyCloud::new(
            cloud(),
            FaultPlan::with_schedule(1, vec![(0, FaultKind::Drop)]).only_path("/places/sync"),
        );
        let endpoint: CloudEndpoint = faulty.clone().into();
        let token = register(&endpoint);
        let sync = Request::post("/api/v1/places/sync", json!({"places": []})).with_token(&token);
        let resp = endpoint.send(&sync, SimTime::EPOCH);
        assert_eq!(resp.status, STATUS_TIMEOUT);
        // The second attempt (index 1, unscheduled) goes through.
        let resp = endpoint.send(&sync, SimTime::EPOCH);
        assert!(resp.is_success());
        assert_eq!(faulty.stats().drops, 1);
    }

    #[test]
    fn delay_delivers_late_on_flush() {
        let shared = cloud();
        let faulty = FaultyCloud::new(
            shared.clone(),
            FaultPlan::with_schedule(1, vec![(0, FaultKind::Delay)])
                .only_path("/places/sync")
                .delay(SimDuration::from_minutes(5)),
        );
        let endpoint: CloudEndpoint = faulty.clone().into();
        let token = register(&endpoint);
        let place = pmware_algorithms::signature::DiscoveredPlace::new(
            pmware_algorithms::signature::DiscoveredPlaceId(3),
            pmware_algorithms::signature::PlaceSignature::WifiAps(Default::default()),
            vec![],
        );
        let sync =
            Request::post("/api/v1/places/sync", json!({"places": [place]})).with_token(&token);
        let resp = endpoint.send(&sync, SimTime::EPOCH);
        assert_eq!(resp.status, STATUS_TIMEOUT, "caller times out");
        // Not delivered yet: the server still has no places.
        let list = Request::get("/api/v1/places").with_token(&token);
        let resp = shared.handle(&list, SimTime::EPOCH);
        assert_eq!(resp.json()["places"].as_array().unwrap().len(), 0);
        // Later traffic past the due time carries it in.
        let resp = endpoint.send(&list, SimTime::EPOCH + SimDuration::from_minutes(6));
        assert!(resp.is_success());
        assert_eq!(
            resp.json()["places"].as_array().unwrap().len(),
            1,
            "held request must land before the later one"
        );
        assert_eq!(faulty.stats().late_deliveries, 1);
    }

    #[test]
    fn reorder_swaps_with_the_next_request() {
        let shared = cloud();
        let faulty = FaultyCloud::new(
            shared.clone(),
            FaultPlan::with_schedule(1, vec![(0, FaultKind::Reorder)]).only_path("/profiles/sync"),
        );
        let endpoint: CloudEndpoint = faulty.clone().into();
        let token = register(&endpoint);
        let profile = |day: u64| crate::profile::MobilityProfile::new(day);
        // Day-0 profile is held; day-1 goes through first, then day-0 lands.
        let first = Request::post("/api/v1/profiles/sync", json!({"profile": profile(0)}))
            .with_token(&token);
        let second = Request::post("/api/v1/profiles/sync", json!({"profile": profile(1)}))
            .with_token(&token);
        assert_eq!(endpoint.send(&first, SimTime::EPOCH).status, STATUS_TIMEOUT);
        assert!(endpoint.send(&second, SimTime::EPOCH).is_success());
        // Both eventually present.
        for day in 0..2 {
            let resp = shared.handle(
                &Request::get(format!("/api/v1/profiles/{day}")).with_token(&token),
                SimTime::EPOCH,
            );
            assert!(resp.is_success(), "day {day}: {resp:?}");
        }
        assert_eq!(faulty.stats().reorders, 1);
        assert_eq!(faulty.stats().late_deliveries, 1);
    }

    #[test]
    fn duplicate_hits_the_server_twice() {
        let shared = cloud();
        let faulty = FaultyCloud::new(
            shared.clone(),
            FaultPlan::with_schedule(1, vec![(0, FaultKind::Duplicate)]).only_path("/social/sync"),
        );
        let endpoint: CloudEndpoint = faulty.clone().into();
        let token = register(&endpoint);
        let contact = json!({
            "contact": "peer-1",
            "start": 0,
            "end": 600,
            "place": null,
        });
        // Legacy body (no first_seq): the server extends blindly, so a
        // duplicated delivery is visible as a doubled store — which is the
        // hazard the sequenced path exists to remove.
        let resp = endpoint.send(
            &Request::post("/api/v1/social/sync", json!({"contacts": [contact]}))
                .with_token(&token),
            SimTime::EPOCH,
        );
        assert!(resp.is_success());
        assert_eq!(
            resp.json()["stored"],
            2,
            "blind extend absorbed the duplicate"
        );
        assert_eq!(faulty.stats().duplicates, 1);
    }

    #[test]
    fn schedule_only_faults_matching_paths() {
        let faulty = FaultyCloud::new(
            cloud(),
            FaultPlan::with_schedule(1, vec![(0, FaultKind::Drop), (1, FaultKind::Drop)])
                .only_path("/places/sync"),
        );
        let endpoint: CloudEndpoint = faulty.clone().into();
        let token = register(&endpoint);
        // Non-matching requests pass and do not consume schedule slots.
        for _ in 0..3 {
            let resp = endpoint.send(
                &Request::get("/api/v1/places").with_token(&token),
                SimTime::EPOCH,
            );
            assert!(resp.is_success());
        }
        let sync = Request::post("/api/v1/places/sync", json!({"places": []})).with_token(&token);
        assert_eq!(endpoint.send(&sync, SimTime::EPOCH).status, STATUS_TIMEOUT);
        assert_eq!(endpoint.send(&sync, SimTime::EPOCH).status, STATUS_TIMEOUT);
        assert!(endpoint.send(&sync, SimTime::EPOCH).is_success());
    }
}
