//! Social-contact sync and place-targeted queries (§2.3.3 social module).

use super::{with_body, Ctx};
use crate::api::{Request, Response};
use crate::payload::{Payload, SocialQueryBody, SyncContactsBody};
use crate::profile::ContactEntry;

/// `POST /api/v1/social/sync` — append encounters, deduplicating re-sent
/// prefixes through the sequence watermark.
pub(crate) fn sync(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<SyncContactsBody>(request, |body| {
        let store = ctx.store();
        let mut store = store.lock();
        match body.first_seq {
            Some(first_seq) => {
                // Sequenced sync: skip the prefix already absorbed (a
                // retried buffer re-sends from its unacknowledged base),
                // append only unseen entries, and acknowledge the new
                // watermark so the client can drain its buffer. A base
                // past the watermark means the server lost state — absorb
                // everything and resync.
                let len = body.contacts.len() as u64;
                if first_seq > store.contacts_absorbed {
                    store.contacts_absorbed = first_seq;
                }
                let skip = (store.contacts_absorbed - first_seq) as usize;
                if skip > 0 {
                    ctx.core.metrics.replay_social_sync.inc();
                }
                if (skip as u64) < len {
                    store
                        .contacts
                        .extend(body.contacts.iter().skip(skip).cloned());
                    store.contacts_absorbed = first_seq + len;
                }
            }
            None => {
                // Legacy blind extend.
                store.contacts_absorbed += body.contacts.len() as u64;
                store.contacts.extend(body.contacts.iter().cloned());
            }
        }
        Response::ok(Payload::ContactsAck {
            stored: store.contacts.len(),
            acked_upto: store.contacts_absorbed,
        })
    })
}

/// `POST /api/v1/social/query` — contacts, optionally filtered to one
/// place (§2.2.2 targeted sensing).
pub(crate) fn query(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<SocialQueryBody>(request, |body| {
        let store = ctx.store();
        let store = store.lock();
        let contacts: Vec<ContactEntry> = store
            .contacts
            .iter()
            .filter(|c| match body.place {
                Some(p) => c.place == Some(p),
                None => true,
            })
            .cloned()
            .collect();
        Response::ok(Payload::Contacts { contacts })
    })
}
