//! Social-contact sync and place-targeted queries (§2.3.3 social module).

use super::{with_body, Ctx};
use crate::api::{Request, Response};
use crate::payload::{Payload, SocialQueryBody, SyncContactsBody};
use crate::profile::ContactEntry;
use crate::storage::apply;

/// `POST /api/v1/social/sync` — append encounters, deduplicating re-sent
/// prefixes through the sequence watermark (the shared core in
/// [`crate::storage::apply`]).
pub(crate) fn sync(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<SyncContactsBody>(request, |body| {
        let store = ctx.store();
        let mut store = store.lock();
        let outcome = apply::apply_social_sync(&mut store, body);
        if outcome.replayed {
            ctx.core.metrics.replay_social_sync.inc();
        }
        Response::ok(Payload::ContactsAck {
            stored: outcome.stored,
            acked_upto: outcome.acked_upto,
        })
    })
}

/// `POST /api/v1/social/query` — contacts, optionally filtered to one
/// place (§2.2.2 targeted sensing).
pub(crate) fn query(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<SocialQueryBody>(request, |body| {
        let store = ctx.store();
        let store = store.lock();
        let contacts: Vec<ContactEntry> = store
            .contacts
            .iter()
            .filter(|c| match body.place {
                Some(p) => c.place == Some(p),
                None => true,
            })
            .cloned()
            .collect();
        Response::ok(Payload::Contacts { contacts })
    })
}
