//! Route sync, listing and point-to-point queries (§2.3.3 routes module).

use pmware_algorithms::route::CanonicalRoute;

use super::{with_body, Ctx};
use crate::api::{Request, Response};
use crate::payload::{Payload, RouteQueryBody, SyncRoutesBody};
use crate::storage::apply;

/// `POST /api/v1/routes/sync` — full replacement of the stored routes,
/// sequence-guarded; the canonical set is rebuilt from the traversals
/// (the shared core in [`crate::storage::apply`]).
pub(crate) fn sync(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<SyncRoutesBody>(request, |body| {
        let store = ctx.store();
        let mut store = store.lock();
        let outcome = apply::apply_routes_sync(&mut store, body);
        if outcome.stale {
            ctx.core.metrics.replay_routes_sync.inc();
        }
        Response::ok(Payload::SyncAck {
            stored: outcome.stored,
            stale: outcome.stale,
        })
    })
}

/// `GET /api/v1/routes` — the caller's canonical routes with usage
/// frequency.
pub(crate) fn list(ctx: &Ctx<'_>, _request: &Request) -> Response {
    let store = ctx.store();
    let routes = store.lock().routes.routes().to_vec();
    Response::ok(Payload::Routes { routes })
}

/// `POST /api/v1/routes/query` — routes between two places.
pub(crate) fn query(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<RouteQueryBody>(request, |body| {
        let store = ctx.store();
        let store = store.lock();
        let routes: Vec<CanonicalRoute> = store
            .routes
            .between(body.from, body.to)
            .into_iter()
            .cloned()
            .collect();
        Response::ok(Payload::Routes { routes })
    })
}
