//! Route sync, listing and point-to-point queries (§2.3.3 routes module).

use pmware_algorithms::route::{CanonicalRoute, RouteObservation, RouteStore};

use super::{with_body, Ctx};
use crate::api::{Request, Response};
use crate::payload::{Payload, RouteQueryBody, SyncRoutesBody};

/// `POST /api/v1/routes/sync` — full replacement of the stored routes,
/// sequence-guarded; the canonical set is rebuilt from the traversals.
pub(crate) fn sync(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<SyncRoutesBody>(request, |body| {
        {
            let store = ctx.store();
            let store = store.lock();
            if body.seq.is_some_and(|seq| seq <= store.routes_seq) {
                ctx.core.metrics.replay_routes_sync.inc();
                return Response::ok(Payload::SyncAck {
                    stored: store.routes.routes().len(),
                    stale: true,
                });
            }
        }
        let mut fresh = RouteStore::new(0.5);
        for route in &body.routes {
            for start in &route.traversals {
                let _ = fresh.record(RouteObservation {
                    from: route.from,
                    to: route.to,
                    start: *start,
                    end: *start,
                    geometry: route.geometry.clone(),
                });
            }
        }
        let stored = fresh.routes().len();
        let store = ctx.store();
        let mut store = store.lock();
        store.routes = fresh;
        if let Some(seq) = body.seq {
            store.routes_seq = seq;
        }
        Response::ok(Payload::SyncAck {
            stored,
            stale: false,
        })
    })
}

/// `GET /api/v1/routes` — the caller's canonical routes with usage
/// frequency.
pub(crate) fn list(ctx: &Ctx<'_>, _request: &Request) -> Response {
    let store = ctx.store();
    let routes = store.lock().routes.routes().to_vec();
    Response::ok(Payload::Routes { routes })
}

/// `POST /api/v1/routes/query` — routes between two places.
pub(crate) fn query(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<RouteQueryBody>(request, |body| {
        let store = ctx.store();
        let store = store.lock();
        let routes: Vec<CanonicalRoute> = store
            .routes
            .between(body.from, body.to)
            .into_iter()
            .cloned()
            .collect();
        Response::ok(Payload::Routes { routes })
    })
}
