//! Endpoint handlers: one small function per route, over a typed [`Ctx`].
//!
//! Each submodule owns one endpoint family of §2.3.3 (plus the analytics
//! queries of §2.3.2). Handlers contain *only* endpoint logic — auth,
//! outage, admission, and accounting all happened in the layer stack
//! above — and are wired to paths exclusively through the route table in
//! [`crate::router`].

pub(crate) mod analytics;
pub(crate) mod geolocate;
pub(crate) mod health;
pub(crate) mod places;
pub(crate) mod profiles;
pub(crate) mod registration;
pub(crate) mod routes;
pub(crate) mod social;

use pmware_world::SimTime;

use crate::api::{Request, Response};
use crate::auth::UserId;
use crate::state::CloudCore;
use crate::storage::StoreGuard;

/// Everything a handler may touch: the shared core, the validated caller
/// (absent only on public routes), the raw bearer token (the refresh
/// endpoint rotates it), and the simulated instant.
pub(crate) struct Ctx<'a> {
    pub(crate) core: &'a CloudCore,
    pub(crate) user: Option<UserId>,
    pub(crate) token: Option<&'a str>,
    pub(crate) now: SimTime,
}

impl Ctx<'_> {
    /// The validated caller. Only callable from handlers behind
    /// `RouteAuth::Bearer` — the dispatcher guarantees the field is set.
    pub(crate) fn user(&self) -> UserId {
        self.user.expect("bearer route always has a validated user")
    }

    /// The caller's per-user store (created — or hydrated from its parked
    /// snapshot — on first touch). The guard pins the store against
    /// eviction for as long as the handler holds it.
    pub(crate) fn store(&self) -> StoreGuard {
        self.core.store_at(self.user(), self.now)
    }
}

/// A route handler: pure function from context + request to response.
pub(crate) type Handler = fn(&Ctx<'_>, &Request) -> Response;

/// Hands `f` the request body as a `&B`, answering 400 on a shape
/// mismatch. A typed request (the in-process fast path) lends its body
/// straight out of the [`crate::Payload`] — no serde, no clone; an
/// untyped `Json` body falls back to a by-reference parse.
pub(crate) fn with_body<B: crate::payload::RequestBody>(
    request: &Request,
    f: impl FnOnce(&B) -> Response,
) -> Response {
    if let Some(body) = B::from_payload(&request.body) {
        return f(body);
    }
    match request.body.parse::<B>() {
        Ok(body) => f(&body),
        Err(e) => Response::bad_request(format!("invalid body: {e}")),
    }
}
