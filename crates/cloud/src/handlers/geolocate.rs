//! Cell-ID geolocation (§2.3.3 misc module — the OpenCellID stand-in).

use pmware_world::{CellGlobalId, CellId, Lac, Plmn};

use super::{with_body, Ctx};
use crate::api::{Request, Response};
use crate::payload::{GeolocateBody, GeolocateSignatureBody, Payload};

/// `POST /api/v1/misc/geolocate` — position of one cell tower.
pub(crate) fn by_cell(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<GeolocateBody>(request, |body| {
        let cell = CellGlobalId {
            plmn: Plmn {
                mcc: body.mcc,
                mnc: body.mnc,
            },
            lac: Lac(body.lac),
            cell: CellId(body.cid),
        };
        match ctx.core.cells.locate(cell) {
            Some(p) => Response::ok(Payload::Position {
                latitude: p.latitude(),
                longitude: p.longitude(),
            }),
            None => Response::not_found("unknown cell"),
        }
    })
}

/// `POST /api/v1/misc/geolocate_signature` — centroid position of a
/// place signature's cell set.
pub(crate) fn by_signature(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<GeolocateSignatureBody>(request, |body| {
        match ctx.core.cells.locate_signature(body.cells.iter()) {
            Some(p) => Response::ok(Payload::Position {
                latitude: p.latitude(),
                longitude: p.longitude(),
            }),
            None => Response::not_found("no known cells in signature"),
        }
    })
}
