//! Daily mobility-profile sync and fetch (§2.3.3 profiles module).

use super::{with_body, Ctx};
use crate::api::{Request, Response};
use crate::payload::{Payload, SyncProfileBody};

/// Path prefix of the by-day fetch route; the remainder is the day index.
pub(crate) const DAY_PREFIX: &str = "/api/v1/profiles/";

/// `POST /api/v1/profiles/sync` — per-day profile upsert with per-day
/// sequence staleness.
pub(crate) fn sync(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<SyncProfileBody>(request, |body| {
        let day = body.profile.day;
        let store = ctx.store();
        let mut store = store.lock();
        // Per-day upsert sequencing: a duplicate delivery or a stale
        // version reordered behind a newer one is acknowledged without
        // re-applying, so the history (and its generation) only moves for
        // new data.
        let stale = body
            .seq
            .is_some_and(|seq| store.profile_seq.get(&day).is_some_and(|&s| seq <= s));
        if stale {
            ctx.core.metrics.replay_profiles_sync.inc();
        }
        if !stale {
            store.history.upsert(body.profile.clone());
            if let Some(seq) = body.seq {
                store.profile_seq.insert(day, seq);
            }
        }
        Response::ok(Payload::ProfileSynced {
            synced_day: day,
            stale,
        })
    })
}

/// `GET /api/v1/profiles/{day}` — fetch one day's profile.
pub(crate) fn get_day(ctx: &Ctx<'_>, request: &Request) -> Response {
    let day: Result<u64, _> = request.path[DAY_PREFIX.len()..].parse();
    match day {
        Err(_) => Response::bad_request("day must be an integer"),
        Ok(day) => {
            let store = ctx.store();
            let store = store.lock();
            match store.history.day(day) {
                Some(profile) => Response::ok(Payload::ProfileDay {
                    profile: profile.clone(),
                }),
                None => Response::not_found("no profile for that day"),
            }
        }
    }
}
