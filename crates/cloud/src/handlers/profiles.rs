//! Daily mobility-profile sync and fetch (§2.3.3 profiles module).

use super::{with_body, Ctx};
use crate::api::{Request, Response};
use crate::payload::{Payload, SyncProfileBody};
use crate::storage::apply;

/// Path prefix of the by-day fetch route; the remainder is the day index.
pub(crate) const DAY_PREFIX: &str = "/api/v1/profiles/";

/// `POST /api/v1/profiles/sync` — per-day profile upsert with per-day
/// sequence staleness (the shared core in [`crate::storage::apply`]).
pub(crate) fn sync(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<SyncProfileBody>(request, |body| {
        let store = ctx.store();
        let mut store = store.lock();
        let outcome = apply::apply_profiles_sync(&mut store, body);
        if outcome.stale {
            ctx.core.metrics.replay_profiles_sync.inc();
        }
        Response::ok(Payload::ProfileSynced {
            synced_day: outcome.day,
            stale: outcome.stale,
        })
    })
}

/// `GET /api/v1/profiles/{day}` — fetch one day's profile.
pub(crate) fn get_day(ctx: &Ctx<'_>, request: &Request) -> Response {
    let day: Result<u64, _> = request.path[DAY_PREFIX.len()..].parse();
    match day {
        Err(_) => Response::bad_request("day must be an integer"),
        Ok(day) => {
            let store = ctx.store();
            let store = store.lock();
            match store.history.day(day) {
                Some(profile) => Response::ok(Payload::ProfileDay {
                    profile: profile.clone(),
                }),
                None => Response::not_found("no profile for that day"),
            }
        }
    }
}
