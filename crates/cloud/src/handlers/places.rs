//! Place discovery offload, sync, listing and labelling (§2.3.1/§2.3.3).
//!
//! The store-mutating cores live in [`crate::storage::apply`] — shared
//! with WAL hydration — so a replayed request reproduces exactly what the
//! original handler did. The handlers here add metrics and build the wire
//! responses.

use super::{with_body, Ctx};
use crate::api::{Request, Response};
use crate::payload::{DiscoverBody, LabelBody, Payload, SyncPlacesBody};
use crate::storage::apply;

/// `POST /api/v1/places/discover` — the GCA offload: fold a GSM
/// observation batch into the caller's persistent incremental engine.
pub(crate) fn discover(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<DiscoverBody>(request, |body| {
        // Clone the config before taking the user lock (lock order: config
        // lock is never held across a store lock). Absorbing under the
        // user lock only serializes this user's own requests — other users
        // live behind other mutexes.
        let config = ctx.core.gca_config.read().clone();
        let store = ctx.store();
        let mut store = store.lock();
        match apply::apply_discover(&mut store, &config, body) {
            Ok(outcome) => {
                if outcome.replayed {
                    ctx.core.metrics.replay_discover.inc();
                }
                Response::ok(Payload::Discovered {
                    places: store.places.clone(),
                    absorbed_upto: store.absorbed_upto,
                })
            }
            Err(message) => Response::bad_request(message),
        }
    })
}

/// `POST /api/v1/places/sync` — full replacement of the stored places,
/// sequence-guarded against reordered/duplicated deliveries.
pub(crate) fn sync(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<SyncPlacesBody>(request, |body| {
        let store = ctx.store();
        let mut store = store.lock();
        let outcome = apply::apply_places_sync(&mut store, body);
        if outcome.stale {
            ctx.core.metrics.replay_places_sync.inc();
        }
        Response::ok(Payload::SyncAck {
            stored: outcome.stored,
            stale: outcome.stale,
        })
    })
}

/// `GET /api/v1/places` — the caller's stored places.
pub(crate) fn list(ctx: &Ctx<'_>, _request: &Request) -> Response {
    let store = ctx.store();
    let places = store.lock().places.clone();
    Response::ok(Payload::Places { places })
}

/// `POST /api/v1/places/label` — attaches a user label to a place.
pub(crate) fn label(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<LabelBody>(request, |body| {
        let store = ctx.store();
        let mut store = store.lock();
        match apply::apply_label(&mut store, body) {
            Some(labelled) => Response::ok(Payload::Labelled { labelled }),
            None => Response::not_found("unknown place"),
        }
    })
}
