//! Place discovery offload, sync, listing and labelling (§2.3.1/§2.3.3).

use pmware_algorithms::gca::IncrementalGca;
use pmware_world::GsmObservation;

use super::{with_body, Ctx};
use crate::api::{Request, Response};
use crate::payload::{DiscoverBody, LabelBody, Payload, SyncPlacesBody};

/// `POST /api/v1/places/discover` — the GCA offload: fold a GSM
/// observation batch into the caller's persistent incremental engine.
pub(crate) fn discover(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<DiscoverBody>(request, |body| {
        // A batched body decodes to the exact observation sequence the
        // client encoded, so both spellings feed the same absorb path and
        // reach the same engine state. The plain-array path borrows the
        // typed body directly — no copy.
        let decoded;
        let observations: &[GsmObservation] = match &body.batch {
            Some(batch) => match batch.decode() {
                Ok(observations) => {
                    decoded = observations;
                    &decoded
                }
                Err(e) => return Response::bad_request(format!("invalid batch: {e}")),
            },
            None => &body.observations,
        };
        // Clone the config before taking the user lock (lock order: config
        // lock is never held across a store lock). Absorbing under the
        // user lock only serializes this user's own requests — other users
        // live behind other mutexes.
        let config = ctx.core.gca_config.read().clone();
        let store = ctx.store();
        let mut store = store.lock();
        match body.start {
            Some(start) => {
                // Sequenced offload: `start` is the batch's offset in the
                // client's observation stream. A duplicated or retried
                // delivery re-sends a prefix the engine already absorbed —
                // skip it; only the unseen tail is folded in. A start past
                // the watermark means the server lost its engine (config
                // reset): restart from this batch, which is authoritative.
                let len = observations.len() as u64;
                if start > store.absorbed_upto || store.gca.is_none() {
                    store.gca = Some(IncrementalGca::new(config));
                    store.absorbed_upto = start;
                }
                let skip = (store.absorbed_upto - start) as usize;
                if skip > 0 {
                    ctx.core.metrics.replay_discover.inc();
                }
                if (skip as u64) < len {
                    store.absorbed_upto = start + len;
                    let engine = store.gca.as_mut().expect("engine ensured above");
                    engine.absorb(&observations[skip..]);
                    store.places = engine.places().places;
                }
            }
            None => {
                // Legacy unsequenced offload: a batch that rewinds behind
                // the absorbed stream means the client restarted or
                // re-sent history — start over from exactly this batch.
                // Otherwise fold the suffix into the accumulated engine.
                let rewinds = match (&store.gca, observations.first()) {
                    (Some(engine), Some(first)) => {
                        engine.last_time().is_some_and(|t| first.time < t)
                    }
                    _ => false,
                };
                if rewinds || store.gca.is_none() {
                    store.gca = Some(IncrementalGca::new(config));
                    store.absorbed_upto = 0;
                }
                store.absorbed_upto += observations.len() as u64;
                let engine = store.gca.as_mut().expect("engine ensured above");
                engine.absorb(observations);
                store.places = engine.places().places;
            }
        }
        Response::ok(Payload::Discovered {
            places: store.places.clone(),
            absorbed_upto: store.absorbed_upto,
        })
    })
}

/// `POST /api/v1/places/sync` — full replacement of the stored places,
/// sequence-guarded against reordered/duplicated deliveries.
pub(crate) fn sync(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<SyncPlacesBody>(request, |body| {
        let store = ctx.store();
        let mut store = store.lock();
        // A full replacement that was reordered behind a newer one (or
        // delivered twice) must not clobber it.
        let stale = body.seq.is_some_and(|seq| seq <= store.places_seq);
        if stale {
            ctx.core.metrics.replay_places_sync.inc();
        }
        if !stale {
            store.places = body.places.clone();
            if let Some(seq) = body.seq {
                store.places_seq = seq;
            }
        }
        Response::ok(Payload::SyncAck {
            stored: store.places.len(),
            stale,
        })
    })
}

/// `GET /api/v1/places` — the caller's stored places.
pub(crate) fn list(ctx: &Ctx<'_>, _request: &Request) -> Response {
    let store = ctx.store();
    let places = store.lock().places.clone();
    Response::ok(Payload::Places { places })
}

/// `POST /api/v1/places/label` — attaches a user label to a place.
pub(crate) fn label(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<LabelBody>(request, |body| {
        let store = ctx.store();
        let mut store = store.lock();
        match store.places.iter_mut().find(|p| p.id == body.place) {
            Some(place) => {
                place.label = Some(body.label.clone());
                Response::ok(Payload::Labelled { labelled: place.id })
            }
            None => Response::not_found("unknown place"),
        }
    })
}
