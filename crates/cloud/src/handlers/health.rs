//! The liveness probe behind `GET /api/v1/health`.
//!
//! Reaching the handler at all *is* the liveness signal: the route is
//! public (the topology router probes without a token) and the request
//! still descends the whole layer stack, so an injected outage
//! short-circuits to 503 before this handler runs — a dead instance
//! fails its heartbeat exactly the way it fails client traffic. The body
//! additionally carries the instance's load view (queue depth and p99
//! latency from the latency model — both 0 while the model is disabled),
//! which load-aware placement policies read off the same probe, plus the
//! storage engine's resident-store count for capacity monitoring.

use crate::api::{Request, Response};
use crate::payload::Payload;

use super::Ctx;

/// `GET /api/v1/health` — answers `{"p99_us": .., "queue_depth": ..,
/// "resident_users": .., "status": "ok"}`.
pub(crate) fn status(ctx: &Ctx<'_>, _request: &Request) -> Response {
    let (queue_depth, p99_us) = ctx.core.latency.health_stats(ctx.now);
    Response::ok(Payload::Health {
        queue_depth,
        p99_us,
        resident_users: ctx.core.storage.resident_users() as u64,
    })
}
