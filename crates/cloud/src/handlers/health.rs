//! The liveness probe behind `GET /api/v1/health`.
//!
//! One handler, no state: reaching it at all *is* the health signal. The
//! route is public (the topology router probes without a token) and the
//! request still descends the whole layer stack, so an injected outage
//! short-circuits to 503 before this handler runs — a dead instance
//! fails its heartbeat exactly the way it fails client traffic.

use crate::api::{Request, Response};
use crate::payload::Payload;

use super::Ctx;

/// `GET /api/v1/health` — answers `{"status": "ok"}` unconditionally.
pub(crate) fn status(_ctx: &Ctx<'_>, _request: &Request) -> Response {
    Response::ok(Payload::Health)
}
