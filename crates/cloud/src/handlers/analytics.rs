//! Analytics and prediction queries (§2.3.2).

use super::{with_body, Ctx};
use crate::api::{Request, Response};
use crate::payload::{ArrivalBody, NextVisitBody, Payload, PlaceOnlyBody};
use crate::predict::{self, MarkovPredictor};

/// `POST /api/v1/analytics/arrival` — typical arrival time at a place
/// within an hour window.
pub(crate) fn arrival(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<ArrivalBody>(request, |body| {
        let window = body.window.unwrap_or((0, 24));
        let store = ctx.store();
        let store = store.lock();
        match predict::predict_arrival_in_window(&store.history, body.place, window) {
            Some(s) => Response::ok(Payload::ArrivalAt { second_of_day: s }),
            None => Response::not_found("no arrivals in window"),
        }
    })
}

/// `POST /api/v1/analytics/next_visit` — predicted next visit instant.
pub(crate) fn next_visit(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<NextVisitBody>(request, |body| {
        let store = ctx.store();
        let store = store.lock();
        match predict::predict_next_visit(&store.history, body.place, body.now) {
            Some(t) => Response::ok(Payload::VisitAt { time: t }),
            None => Response::not_found("no visit pattern for place"),
        }
    })
}

/// `POST /api/v1/analytics/frequency` — visit counts and weekly rate.
pub(crate) fn frequency(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<PlaceOnlyBody>(request, |body| {
        let store = ctx.store();
        let store = store.lock();
        Response::ok(Payload::Frequency {
            visits_per_week: store.history.visits_per_week(body.place),
            visit_count: store.history.visit_count(body.place),
        })
    })
}

/// `POST /api/v1/analytics/activity` — mean daily minutes in motion.
pub(crate) fn activity(ctx: &Ctx<'_>, _request: &Request) -> Response {
    let store = ctx.store();
    let store = store.lock();
    Response::ok(Payload::Activity {
        mean_daily_moving_minutes: store.history.mean_daily_moving_minutes(),
    })
}

/// `POST /api/v1/analytics/next_place` — Markov next-place prediction,
/// served from a generation-tagged memoized model.
pub(crate) fn next_place(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<PlaceOnlyBody>(request, |body| {
        let store = ctx.store();
        let mut store = store.lock();
        // Retrain only when the history generation moved on since the
        // cached model was built; repeat queries against an unchanged
        // history are retrain-free.
        let generation = store.history.generation();
        let stale = store.next_place.as_ref().map(|(g, _)| *g) != Some(generation);
        if stale {
            ctx.core.metrics.cache_misses.inc();
            let model = MarkovPredictor::train(&store.history);
            store.next_place = Some((generation, model));
        } else {
            ctx.core.metrics.cache_hits.inc();
        }
        let (_, model) = store.next_place.as_ref().expect("cache filled above");
        Response::ok(Payload::Predictions {
            predictions: model.predict_next(body.place),
        })
    })
}
