//! Registration and token lifecycle (§2.3.3 registration module).

use super::{with_body, Ctx};
use crate::api::{Request, Response};
use crate::auth::DeviceIdentity;
use crate::payload::{Payload, RegistrationBody};

/// `POST /api/v1/registration` — the one public route. Registers (or
/// re-registers, idempotently per identity) a device and issues a token.
pub(crate) fn register(ctx: &Ctx<'_>, request: &Request) -> Response {
    with_body::<RegistrationBody>(request, |body| {
        if body.imei.is_empty() || body.email.is_empty() {
            return Response::bad_request("imei and email are required");
        }
        let identity = DeviceIdentity {
            imei: body.imei.clone(),
            email: body.email.clone(),
        };
        let (user, token) =
            ctx.core
                .tokens
                .write()
                .register(identity, ctx.now, &mut *ctx.core.rng.lock());
        // Materialize the store so first touch happens under registration,
        // not on the hot request path. A re-registration of an evicted
        // identity hydrates the parked store here.
        let _ = ctx.core.store_at(user, ctx.now);
        Response::ok(Payload::Registered {
            user,
            token: token.token,
            expires_at: token.expires_at,
        })
    })
}

/// `POST /api/v1/token/refresh` — rotates the caller's bearer token.
pub(crate) fn token_refresh(ctx: &Ctx<'_>, _request: &Request) -> Response {
    let token = ctx.token.expect("bearer route always carries a token");
    let refreshed = ctx
        .core
        .tokens
        .write()
        .refresh(token, ctx.now, &mut *ctx.core.rng.lock());
    match refreshed {
        Some(t) => Response::ok(Payload::TokenRefreshed {
            token: t.token,
            expires_at: t.expires_at,
        }),
        None => Response::unauthorized("token not refreshable"),
    }
}
