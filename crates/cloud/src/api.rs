//! The REST-shaped transport: requests, responses, status codes.
//!
//! The paper's cloud instance "exposes REST based APIs which are used by
//! PMS to invoke cloud-hosted modules" (§2.3.3). This module models that
//! boundary faithfully — method + path + bearer token + body — while
//! staying in-process. Bodies are typed [`Payload`] values; the JSON
//! spelling the Django service saw is produced lazily by
//! [`Request::wire_bytes`]/[`Response::to_bytes`] and only at the fault
//! boundary, in exports, and in golden tests (see the [`crate::payload`]
//! module docs for the byte-identity contract).

use std::sync::OnceLock;

use bytes::Bytes;
use serde::{DeError, Deserialize, Serialize};
use serde_json::Value;

use crate::payload::Payload;

/// HTTP-style method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Read.
    Get,
    /// Create/submit.
    Post,
}

impl Method {
    /// Upper-case wire name (`"GET"`/`"POST"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }
}

/// Causal-span context riding on a request: the trace it belongs to and
/// the span to parent server-side/in-transit annotations under. Pure
/// diagnostics — never serialized, never compared, zero when no span
/// collector is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanCtx {
    /// Trace id ([`pmware_obs::SpanSink::trace_id`]); `0` = no trace.
    pub trace: u64,
    /// Parent span id within the trace; `0` = root.
    pub parent: u64,
}

impl SpanCtx {
    /// Whether a trace is attached.
    pub fn is_active(self) -> bool {
        self.trace != 0
    }
}

/// A request to the cloud instance.
///
/// Treat a request as immutable once built: [`Request::wire_bytes`]
/// caches the first encoding (the encode-once retry seam), so mutate
/// fields only before the request first hits the wire — the builders
/// ([`Request::with_token`]) reset the cache for you.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Path, e.g. `/api/v1/places/discover`.
    pub path: String,
    /// Bearer token, when authenticated.
    pub token: Option<String>,
    /// Typed body ([`Payload::Empty`] for body-less requests).
    pub body: Payload,
    /// Causal-span context (diagnostics only — not wire state, excluded
    /// from equality and serialization; a wire round-trip resets it and
    /// the fault boundary copies it back across).
    pub ctx: SpanCtx,
    /// Lazily rendered wire bytes; retries reuse the first encoding.
    wire: OnceLock<Bytes>,
}

impl Request {
    /// A GET request.
    pub fn get(path: impl Into<String>) -> Request {
        Request {
            method: Method::Get,
            path: path.into(),
            token: None,
            body: Payload::Empty,
            ctx: SpanCtx::default(),
            wire: OnceLock::new(),
        }
    }

    /// A POST request with a typed (or raw-JSON) body.
    pub fn post(path: impl Into<String>, body: impl Into<Payload>) -> Request {
        Request {
            method: Method::Post,
            path: path.into(),
            token: None,
            body: body.into(),
            ctx: SpanCtx::default(),
            wire: OnceLock::new(),
        }
    }

    /// Attaches a bearer token.
    pub fn with_token(mut self, token: impl Into<String>) -> Request {
        self.token = Some(token.into());
        self.wire = OnceLock::new();
        self
    }

    /// Attaches a causal-span context (diagnostics; does not touch the
    /// wire cache — the context is not wire state).
    pub fn with_ctx(mut self, ctx: SpanCtx) -> Request {
        self.ctx = ctx;
        self
    }

    /// The request's wire bytes (JSON envelope), rendered once and
    /// cached — every retry attempt at the fault boundary reuses the
    /// first encoding instead of re-serialising the body.
    pub fn wire_bytes(&self) -> &Bytes {
        self.wire
            .get_or_init(|| Bytes::from(serde_json::to_vec(self).expect("request is serializable")))
    }

    /// Serialises the request to wire bytes (JSON envelope).
    pub fn to_bytes(&self) -> Bytes {
        self.wire_bytes().clone()
    }

    /// Parses a request from wire bytes, reconstructing the typed body
    /// via the route table where the spelling matches exactly.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` for malformed payloads.
    pub fn from_bytes(bytes: &[u8]) -> Result<Request, serde_json::Error> {
        serde_json::from_slice(bytes)
    }
}

/// Wire equality: the byte cache is ignored (it is derived state).
impl PartialEq for Request {
    fn eq(&self, other: &Request) -> bool {
        self.method == other.method
            && self.path == other.path
            && self.token == other.token
            && self.body == other.body
    }
}

impl Serialize for Request {
    fn to_json_value(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        map.insert("body".to_owned(), self.body.to_json());
        map.insert("method".to_owned(), self.method.to_json_value());
        map.insert("path".to_owned(), Value::String(self.path.clone()));
        map.insert(
            "token".to_owned(),
            match &self.token {
                Some(token) => Value::String(token.clone()),
                None => Value::Null,
            },
        );
        Value::Object(map)
    }
}

impl<'de> Deserialize<'de> for Request {
    fn from_json_value(value: &Value) -> Result<Request, DeError> {
        let Value::Object(map) = value else {
            return Err(DeError::custom("expected an object for `Request`"));
        };
        let method = match map.get("method") {
            Some(v) => Method::from_json_value(v),
            None => Err(DeError::missing_field("Request", "method")),
        }
        .map_err(|e| e.context_field("Request", "method"))?;
        let path = match map.get("path") {
            Some(v) => String::from_json_value(v),
            None => Err(DeError::missing_field("Request", "path")),
        }
        .map_err(|e| e.context_field("Request", "path"))?;
        let token = Option::<String>::from_json_value(map.get("token").unwrap_or(&Value::Null))
            .map_err(|e| e.context_field("Request", "token"))?;
        let body = Payload::from_json(method, &path, map.get("body").unwrap_or(&Value::Null));
        Ok(Request {
            method,
            path,
            token,
            body,
            ctx: SpanCtx::default(),
            wire: OnceLock::new(),
        })
    }
}

/// A response from the cloud instance.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP-style status code.
    pub status: u16,
    /// Typed body.
    pub body: Payload,
    /// Latency annotation `(queue µs, service µs)` stamped by the queue
    /// layer when the latency model is enabled. Diagnostics only — not
    /// wire state, excluded from equality and serialization.
    latency_us: Option<(u64, u64)>,
}

/// Wire equality: the latency annotation is ignored (derived diagnostics,
/// not wire state).
impl PartialEq for Response {
    fn eq(&self, other: &Response) -> bool {
        self.status == other.status && self.body == other.body
    }
}

impl Response {
    /// A response with an arbitrary status and body.
    pub fn with_status(status: u16, body: impl Into<Payload>) -> Response {
        Response {
            status,
            body: body.into(),
            latency_us: None,
        }
    }

    /// 200 with a body.
    pub fn ok(body: impl Into<Payload>) -> Response {
        Response::with_status(200, body)
    }

    /// Stamps the latency annotation (queue layer only).
    pub fn with_latency(mut self, queue_us: u64, service_us: u64) -> Response {
        self.latency_us = Some((queue_us, service_us));
        self
    }

    /// The latency annotation `(queue µs, service µs)`, when the latency
    /// model timed this response.
    pub fn latency_us(&self) -> Option<(u64, u64)> {
        self.latency_us
    }

    /// 400 with an error message.
    pub fn bad_request(message: impl Into<String>) -> Response {
        Response::error(400, message)
    }

    /// 401 with an error message.
    pub fn unauthorized(message: impl Into<String>) -> Response {
        Response::error(401, message)
    }

    /// 404 with an error message.
    pub fn not_found(message: impl Into<String>) -> Response {
        Response::error(404, message)
    }

    /// 405 for a known path hit with the wrong method; `allow` lists the
    /// methods the path does accept (the HTTP `Allow` header, carried in
    /// the body here).
    pub fn method_not_allowed(allow: &[Method]) -> Response {
        Response::with_status(
            405,
            Payload::MethodNotAllowed {
                allow: allow.to_vec(),
            },
        )
    }

    /// An arbitrary-status error response with the canonical
    /// `{"error": message}` body.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        Response::with_status(
            status,
            Payload::Error {
                message: message.into(),
            },
        )
    }

    /// Returns `true` for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Deserialises the body into a typed value. The JSON escape hatch
    /// parses **by reference** — the body is no longer cloned per call.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` when the body does not match `T`.
    pub fn parse<T: serde::de::DeserializeOwned>(&self) -> Result<T, serde_json::Error> {
        self.body.parse()
    }

    /// Renders the body to its JSON wire spelling (exports, goldens,
    /// tests — not the hot path).
    pub fn json(&self) -> Value {
        self.body.to_json()
    }

    /// The error message of an error-shaped body, if any.
    pub fn error_message(&self) -> Option<&str> {
        self.body.error_message()
    }

    /// The admission controller's `retry_after_s` hint, if present.
    pub fn retry_after_s(&self) -> Option<u64> {
        self.body.retry_after_s()
    }

    /// Serialises the response to wire bytes.
    pub fn to_bytes(&self) -> Bytes {
        Bytes::from(serde_json::to_vec(self).expect("response is serializable"))
    }

    /// Parses a response from wire bytes. The body stays on the JSON
    /// escape hatch — response shapes are not reconstructed (typed
    /// access goes through [`Response::parse`]).
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` for malformed payloads.
    pub fn from_bytes(bytes: &[u8]) -> Result<Response, serde_json::Error> {
        serde_json::from_slice(bytes)
    }
}

impl Serialize for Response {
    fn to_json_value(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        map.insert("body".to_owned(), self.body.to_json());
        map.insert("status".to_owned(), self.status.to_json_value());
        Value::Object(map)
    }
}

impl<'de> Deserialize<'de> for Response {
    fn from_json_value(value: &Value) -> Result<Response, DeError> {
        let Value::Object(map) = value else {
            return Err(DeError::custom("expected an object for `Response`"));
        };
        let status = match map.get("status") {
            Some(v) => u16::from_json_value(v),
            None => Err(DeError::missing_field("Response", "status")),
        }
        .map_err(|e| e.context_field("Response", "status"))?;
        let body = match map.get("body") {
            None | Some(Value::Null) => Payload::Empty,
            Some(v) => Payload::Json(v.clone()),
        };
        Ok(Response {
            status,
            body,
            latency_us: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn request_builders() {
        let r = Request::get("/api/v1/places").with_token("tok-1");
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.token.as_deref(), Some("tok-1"));
        assert_eq!(r.body, Payload::Empty);

        let r = Request::post("/api/v1/registration", json!({"imei": "x"}));
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.body.to_json()["imei"], "x");
    }

    #[test]
    fn wire_round_trip() {
        let r = Request::post("/api/v1/places/sync", json!({"places": []})).with_token("abc");
        let bytes = r.to_bytes();
        let back = Request::from_bytes(&bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn wire_bytes_are_cached_across_attempts() {
        let r = Request::post("/api/v1/places/sync", json!({"places": []})).with_token("abc");
        let first = r.wire_bytes() as *const Bytes;
        let second = r.wire_bytes() as *const Bytes;
        assert_eq!(first, second, "second render must reuse the cache");
    }

    #[test]
    fn malformed_bytes_error() {
        assert!(Request::from_bytes(b"{not json").is_err());
    }

    #[test]
    fn response_helpers() {
        assert!(Response::ok(json!({"x": 1})).is_success());
        let e = Response::unauthorized("token expired");
        assert_eq!(e.status, 401);
        assert!(!e.is_success());
        assert_eq!(e.json()["error"], "token expired");
        assert_eq!(e.error_message(), Some("token expired"));
        assert_eq!(Response::bad_request("no").status, 400);
        assert_eq!(Response::not_found("no").status, 404);
    }

    #[test]
    fn typed_parse() {
        #[derive(Deserialize)]
        struct Count {
            count: u32,
        }
        let r = Response::ok(json!({"count": 5}));
        let p: Count = r.parse().unwrap();
        assert_eq!(p.count, 5);
        let bad: Result<Count, _> = Response::ok(json!({"nope": 1})).parse();
        assert!(bad.is_err());
    }
}
