//! The REST-shaped transport: requests, responses, status codes.
//!
//! The paper's cloud instance "exposes REST based APIs which are used by
//! PMS to invoke cloud-hosted modules" (§2.3.3). This module models that
//! boundary faithfully — method + path + bearer token + JSON body — while
//! staying in-process. Bodies are real JSON (`serde_json::Value`) and are
//! additionally renderable to wire bytes, so the marshalling cost and
//! shape match what the Django service saw.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// HTTP-style method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Read.
    Get,
    /// Create/submit.
    Post,
}

impl Method {
    /// Upper-case wire name (`"GET"`/`"POST"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }
}

/// A request to the cloud instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Path, e.g. `/api/v1/places/discover`.
    pub path: String,
    /// Bearer token, when authenticated.
    pub token: Option<String>,
    /// JSON body (`Value::Null` for body-less requests).
    pub body: Value,
}

impl Request {
    /// A GET request.
    pub fn get(path: impl Into<String>) -> Request {
        Request {
            method: Method::Get,
            path: path.into(),
            token: None,
            body: Value::Null,
        }
    }

    /// A POST request with a JSON body.
    pub fn post(path: impl Into<String>, body: Value) -> Request {
        Request {
            method: Method::Post,
            path: path.into(),
            token: None,
            body,
        }
    }

    /// Attaches a bearer token.
    pub fn with_token(mut self, token: impl Into<String>) -> Request {
        self.token = Some(token.into());
        self
    }

    /// Serialises the request to wire bytes (JSON envelope).
    pub fn to_bytes(&self) -> Bytes {
        Bytes::from(serde_json::to_vec(self).expect("request is serializable"))
    }

    /// Parses a request from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` for malformed payloads.
    pub fn from_bytes(bytes: &[u8]) -> Result<Request, serde_json::Error> {
        serde_json::from_slice(bytes)
    }
}

/// A response from the cloud instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// HTTP-style status code.
    pub status: u16,
    /// JSON body.
    pub body: Value,
}

impl Response {
    /// 200 with a body.
    pub fn ok(body: Value) -> Response {
        Response { status: 200, body }
    }

    /// 400 with an error message.
    pub fn bad_request(message: impl Into<String>) -> Response {
        Response::error(400, message)
    }

    /// 401 with an error message.
    pub fn unauthorized(message: impl Into<String>) -> Response {
        Response::error(401, message)
    }

    /// 404 with an error message.
    pub fn not_found(message: impl Into<String>) -> Response {
        Response::error(404, message)
    }

    /// 405 for a known path hit with the wrong method; `allow` lists the
    /// methods the path does accept (the HTTP `Allow` header, carried in
    /// the body here).
    pub fn method_not_allowed(allow: &[Method]) -> Response {
        let allow: Vec<&str> = allow.iter().map(|m| m.as_str()).collect();
        Response {
            status: 405,
            body: serde_json::json!({ "error": "method not allowed", "allow": allow }),
        }
    }

    fn error(status: u16, message: impl Into<String>) -> Response {
        Response {
            status,
            body: serde_json::json!({ "error": message.into() }),
        }
    }

    /// Returns `true` for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Deserialises the body into a typed value.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` when the body does not match `T`.
    pub fn parse<T: serde::de::DeserializeOwned>(&self) -> Result<T, serde_json::Error> {
        serde_json::from_value(self.body.clone())
    }

    /// Serialises the response to wire bytes.
    pub fn to_bytes(&self) -> Bytes {
        Bytes::from(serde_json::to_vec(self).expect("response is serializable"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn request_builders() {
        let r = Request::get("/api/v1/places").with_token("tok-1");
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.token.as_deref(), Some("tok-1"));
        assert_eq!(r.body, Value::Null);

        let r = Request::post("/api/v1/registration", json!({"imei": "x"}));
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.body["imei"], "x");
    }

    #[test]
    fn wire_round_trip() {
        let r = Request::post("/api/v1/places/sync", json!({"places": []})).with_token("abc");
        let bytes = r.to_bytes();
        let back = Request::from_bytes(&bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn malformed_bytes_error() {
        assert!(Request::from_bytes(b"{not json").is_err());
    }

    #[test]
    fn response_helpers() {
        assert!(Response::ok(json!({"x": 1})).is_success());
        let e = Response::unauthorized("token expired");
        assert_eq!(e.status, 401);
        assert!(!e.is_success());
        assert_eq!(e.body["error"], "token expired");
        assert_eq!(Response::bad_request("no").status, 400);
        assert_eq!(Response::not_found("no").status, 404);
    }

    #[test]
    fn typed_parse() {
        #[derive(Deserialize)]
        struct Payload {
            count: u32,
        }
        let r = Response::ok(json!({"count": 5}));
        let p: Payload = r.parse().unwrap();
        assert_eq!(p.count, 5);
        let bad: Result<Payload, _> = Response::ok(json!({"nope": 1})).parse();
        assert!(bad.is_err());
    }
}
