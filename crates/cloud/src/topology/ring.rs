//! Consistent-hash ring over instance ids.
//!
//! The default placement policy: each instance contributes a fixed number
//! of virtual points hashed onto a `u64` circle, and a user key lands on
//! the first point clockwise of its own hash. Adding or removing one
//! instance only moves the keys that hashed into its arcs — the classic
//! minimal-disruption property that keeps a failover from reshuffling the
//! whole population. FNV-1a keeps the hash deterministic across runs and
//! platforms (no `RandomState`).

use super::InstanceId;

/// Virtual points per instance. Enough to spread small-N rings evenly;
/// deterministic, so baked in rather than configurable.
const VNODES: u32 = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes` — the ring's only hash function.
pub(super) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A consistent-hash ring: sorted `(point, instance)` pairs.
#[derive(Debug, Clone, Default)]
pub(super) struct HashRing {
    points: Vec<(u64, InstanceId)>,
}

impl HashRing {
    /// Builds the ring over `instances` (typically the healthy subset).
    pub(super) fn build(instances: &[InstanceId]) -> HashRing {
        let mut points = Vec::with_capacity(instances.len() * VNODES as usize);
        for &id in instances {
            for vnode in 0..VNODES {
                let label = format!("instance-{}-vnode-{vnode}", id.0);
                points.push((fnv1a(label.as_bytes()), id));
            }
        }
        points.sort_unstable();
        HashRing { points }
    }

    /// The instance owning `key`: first ring point at or clockwise of the
    /// key's hash, wrapping at the top. `None` on an empty ring.
    pub(super) fn place(&self, key: &str) -> Option<InstanceId> {
        if self.points.is_empty() {
            return None;
        }
        let hash = fnv1a(key.as_bytes());
        let idx = self.points.partition_point(|&(point, _)| point < hash);
        let (_, id) = self.points[idx % self.points.len()];
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic() {
        let ring = HashRing::build(&[InstanceId(0), InstanceId(1), InstanceId(2)]);
        for key in ["a|1", "b|2", "c|3"] {
            assert_eq!(ring.place(key), ring.place(key));
        }
    }

    #[test]
    fn empty_ring_places_nothing() {
        assert_eq!(HashRing::build(&[]).place("k"), None);
    }

    #[test]
    fn removing_an_instance_only_moves_its_keys() {
        let full = HashRing::build(&[InstanceId(0), InstanceId(1), InstanceId(2)]);
        let reduced = HashRing::build(&[InstanceId(0), InstanceId(2)]);
        for i in 0..200 {
            let key = format!("user-{i}|u{i}@example.com");
            let before = full.place(&key).unwrap();
            let after = reduced.place(&key).unwrap();
            if before != InstanceId(1) {
                assert_eq!(before, after, "surviving placement moved for {key}");
            } else {
                assert_ne!(after, InstanceId(1));
            }
        }
    }

    #[test]
    fn small_rings_spread_keys() {
        let ring = HashRing::build(&[InstanceId(0), InstanceId(1)]);
        let mut counts = [0u32; 2];
        for i in 0..1000 {
            let key = format!("imei-{i}|user{i}@example.com");
            counts[ring.place(&key).unwrap().0 as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 200), "lopsided ring: {counts:?}");
    }
}
