//! The per-client federated transport.
//!
//! A [`FederatedEndpoint`] is what a federated deployment hands each
//! client instead of a bare instance handle. It performs exactly one
//! control-plane exchange — the topology handshake, triggered by the
//! client's own registration request — caches the assigned instance's
//! endpoint, and from then on forwards every request *directly*: the
//! router never sees steady-state traffic.
//!
//! Two response statuses re-open the control plane, both of which only
//! occur around a failover or drain: 421 ([`STATUS_MISDIRECTED`], the
//! relocation layer's "your state moved") and 503 (the instance died).
//! The endpoint re-handshakes once and, if the assignment actually
//! changed, re-sends the request to the new instance — invisible to the
//! client's retry loop in the common case. The chaos fault statuses (599,
//! 502) are deliberately *not* in that set: injected faults must keep
//! flowing to the client's own retry loop, and must not inflate the
//! pinned control-request count.
//!
//! On the way back, successful responses are observed: registration and
//! token-refresh replies keep the router's session records current (the
//! raw material for migration-time session adoption), and successful
//! mutating requests are appended to the user's migration WAL.

use parking_lot::Mutex;
use pmware_obs::FieldValue;
use pmware_world::SimTime;

use crate::api::{Request, Response, SpanCtx};
use crate::auth::{DeviceIdentity, UserId};
use crate::payload::{HandshakeBody, Payload, REGISTRATION_PATH, TOPOLOGY_HANDSHAKE_PATH};
use crate::transport::{CloudEndpoint, CloudTransport, STATUS_MISDIRECTED};

use super::{InstanceId, TopologyRouter};

const TOKEN_REFRESH_PATH: &str = "/api/v1/token/refresh";

#[derive(Debug, Default)]
struct ClientSlot {
    identity: Option<DeviceIdentity>,
    target: Option<(InstanceId, CloudEndpoint)>,
}

/// Client-side federation seam: one per client, created by
/// [`TopologyRouter::endpoint`]. Implements [`CloudTransport`], so it
/// slots into a [`CloudEndpoint`] exactly like a bare instance or a
/// chaos decorator would.
#[derive(Debug)]
pub struct FederatedEndpoint {
    router: TopologyRouter,
    slot: Mutex<ClientSlot>,
}

/// Shape of a registration reply as seen through a wire round trip
/// (chaos-wrapped endpoints hand back untyped JSON bodies).
#[derive(serde::Deserialize)]
struct RegisteredView {
    user: UserId,
    token: String,
    expires_at: SimTime,
}

/// Shape of a token-refresh reply through a wire round trip.
#[derive(serde::Deserialize)]
struct RefreshView {
    token: String,
    expires_at: SimTime,
}

impl FederatedEndpoint {
    pub(super) fn new(router: TopologyRouter) -> FederatedEndpoint {
        FederatedEndpoint {
            router,
            slot: Mutex::new(ClientSlot::default()),
        }
    }

    /// One control-plane round trip: handshake as `identity`, resolve the
    /// assigned instance's client endpoint. When the triggering request
    /// carries a span context and the router has a span sink bound, the
    /// exchange is recorded as a child span named `name` (`handshake` on
    /// first contact, `rehandshake` on a 421/503-triggered refresh).
    fn handshake(
        &self,
        identity: &DeviceIdentity,
        now: SimTime,
        ctx: SpanCtx,
        name: &'static str,
    ) -> Result<(InstanceId, CloudEndpoint), Box<Response>> {
        let request = Request::post(
            TOPOLOGY_HANDSHAKE_PATH,
            Payload::Handshake(HandshakeBody {
                imei: identity.imei.clone(),
                email: identity.email.clone(),
            }),
        );
        let response = self.router.control(&request, now);
        if ctx.is_active() {
            if let Some(sink) = self.router.span_sink() {
                let at_us = now.as_seconds().saturating_mul(1_000_000);
                let id = sink.alloc(ctx.trace);
                sink.record(
                    ctx.trace,
                    id,
                    ctx.parent,
                    name,
                    at_us,
                    at_us,
                    &[("status", FieldValue::from(u64::from(response.status)))],
                );
            }
        }
        if let Payload::Topology { assigned, .. } = response.body {
            let id = InstanceId(assigned);
            match self.router.endpoint_of(id) {
                Some(endpoint) => Ok((id, endpoint)),
                None => Err(Box::new(Response::error(
                    503,
                    "assigned instance not registered",
                ))),
            }
        } else {
            Err(Box::new(response))
        }
    }

    /// Feeds a successful exchange back into the router's session records
    /// and the migration WAL.
    fn observe(
        &self,
        identity: &DeviceIdentity,
        instance: InstanceId,
        request: &Request,
        response: &Response,
    ) {
        if !response.is_success() {
            return;
        }
        if request.path == REGISTRATION_PATH {
            if let Ok(view) = response.parse::<RegisteredView>() {
                self.router.record_session(
                    identity,
                    instance,
                    view.user,
                    &view.token,
                    view.expires_at,
                );
            }
        } else if request.path == TOKEN_REFRESH_PATH {
            if let Ok(view) = response.parse::<RefreshView>() {
                self.router
                    .update_token(identity, &view.token, view.expires_at);
            }
        }
        self.router.log_if_mutating(identity, request);
    }
}

/// Extracts the device identity from a registration request body (typed
/// or raw JSON).
fn identity_of(request: &Request) -> Option<DeviceIdentity> {
    if request.path != REGISTRATION_PATH {
        return None;
    }
    let body = request
        .body
        .parse::<crate::payload::RegistrationBody>()
        .ok()?;
    Some(DeviceIdentity {
        imei: body.imei,
        email: body.email,
    })
}

impl From<FederatedEndpoint> for CloudEndpoint {
    fn from(endpoint: FederatedEndpoint) -> CloudEndpoint {
        CloudEndpoint::new(endpoint)
    }
}

impl CloudTransport for FederatedEndpoint {
    fn send(&self, request: &Request, now: SimTime) -> Response {
        let mut slot = self.slot.lock();
        if let Some(identity) = identity_of(request) {
            slot.identity = Some(identity);
        }
        if slot.target.is_none() {
            let Some(identity) = slot.identity.clone() else {
                return Response::error(
                    STATUS_MISDIRECTED,
                    "no topology handshake performed; register first",
                );
            };
            match self.handshake(&identity, now, request.ctx, "handshake") {
                Ok(target) => slot.target = Some(target),
                Err(response) => return *response,
            }
        }
        let (instance, endpoint) = slot.target.clone().expect("target ensured above");
        let response = endpoint.send(request, now);
        if response.status == STATUS_MISDIRECTED || response.status == 503 {
            // The instance died or migrated us away: refresh the topology
            // once. Re-send only when the assignment actually changed —
            // otherwise the failure is real and the client's own retry
            // loop owns it.
            let Some(identity) = slot.identity.clone() else {
                return response;
            };
            let Ok((new_instance, new_endpoint)) =
                self.handshake(&identity, now, request.ctx, "rehandshake")
            else {
                return response;
            };
            slot.target = Some((new_instance, new_endpoint.clone()));
            if new_instance == instance {
                return response;
            }
            let retried = new_endpoint.send(request, now);
            self.observe(&identity, new_instance, request, &retried);
            return retried;
        }
        if let Some(identity) = slot.identity.clone() {
            self.observe(&identity, instance, request, &response);
        }
        response
    }
}
