//! Multi-instance federation: the topology router and its control plane.
//!
//! ROADMAP item 1: N cloud instances behind a router that stays **off the
//! hot path**. The [`TopologyRouter`] owns an instance registry and a
//! placement map; a client performs exactly one control-plane exchange —
//! the topology handshake, a typed [`Payload::Handshake`] /
//! [`Payload::Topology`] round trip on the ordinary wire path — and then
//! talks to its assigned instance *directly* through the existing
//! [`CloudTransport`] seam. Steady-state requests never traverse the
//! router; [`TopologyRouter::control_requests`] counts the handshakes and
//! refreshes, and the federation test matrix pins it to zero outside
//! handshake/failover windows.
//!
//! Placement is consistent hashing by default ([`ring`]), with an
//! explicit per-user override map layered on top and two alternative
//! balancing policies (round-robin, least-connections) for the *initial*
//! placement decision only — whatever the policy, a placed user stays put
//! until a failover or drain moves them.
//!
//! Failover is deterministic and WAL-driven: the router heartbeats every
//! instance through its full layer stack ([`TopologyRouter::heartbeat`]),
//! marks dead instances out of the ring, recomputes placement for the
//! displaced users, and replays each user's migration log ([`wal`]) into
//! the new instance. Server-side sequence watermarks make the replay
//! idempotent, and session adoption transplants the client's *live*
//! bearer token onto the new instance — the client never learns it moved
//! beyond one 421-triggered topology refresh.

mod endpoint;
mod ring;
mod wal;

pub use endpoint::FederatedEndpoint;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pmware_obs::{FieldValue, Obs, SpanSink};
use pmware_world::SimTime;

use crate::api::{Method, Request, Response};
use crate::auth::{DeviceIdentity, UserId};
use crate::handlers::with_body;
use crate::instance::SharedCloud;
use crate::payload::{HandshakeBody, Payload, TOPOLOGY_HANDSHAKE_PATH};
use crate::router::{resolve, RateClass, Resolution};
use crate::transport::CloudEndpoint;

use ring::HashRing;
use wal::MigrationWal;

/// Identifier of one cloud instance inside a federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u32);

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pci-{:02}", self.0)
    }
}

/// Placement policy for *new* users. Whatever the policy, an existing
/// placement is sticky until a failover or drain recomputes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BalancePolicy {
    /// Consistent hashing of the device identity onto the instance ring
    /// (the default: minimal movement when the instance set changes).
    #[default]
    ConsistentHash,
    /// Cycle through healthy instances in id order.
    RoundRobin,
    /// Place on the healthy instance currently holding the fewest users;
    /// ties go to the lowest instance id.
    LeastConnections,
}

impl BalancePolicy {
    /// Stable label (CLI flag value / metrics dimension).
    pub fn label(self) -> &'static str {
        match self {
            BalancePolicy::ConsistentHash => "consistent-hash",
            BalancePolicy::RoundRobin => "round-robin",
            BalancePolicy::LeastConnections => "least-connections",
        }
    }

    /// Parses a [`BalancePolicy::label`] spelling (also accepts the short
    /// forms `hash`, `rr`, and `least-conn`).
    pub fn parse(s: &str) -> Option<BalancePolicy> {
        match s {
            "consistent-hash" | "hash" => Some(BalancePolicy::ConsistentHash),
            "round-robin" | "rr" => Some(BalancePolicy::RoundRobin),
            "least-connections" | "least-conn" => Some(BalancePolicy::LeastConnections),
            _ => None,
        }
    }
}

/// Outcome of one [`TopologyRouter::fail_over`] or
/// [`TopologyRouter::drain_instance`] pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverReport {
    /// Users whose placement pointed at a dead (or drained) instance.
    pub displaced: usize,
    /// WAL requests successfully replayed into new instances.
    pub replayed: usize,
    /// Modeled migration latency: one sim-second per replayed request.
    pub migration_seconds: u64,
    /// Topology version after the pass.
    pub version: u64,
}

/// Result of a federated analytics fan-out
/// ([`TopologyRouter::federated_activity`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityFanout {
    /// Mean of the per-user daily moving minutes (0 with no sessions).
    pub population_mean: f64,
    /// `(identity key, mean daily moving minutes)` per live session, in
    /// identity-key order.
    pub per_user: Vec<(String, f64)>,
    /// Sessions currently placed per instance, in instance-id order.
    pub per_instance: Vec<(InstanceId, usize)>,
}

/// A live client session the router knows about (captured from the
/// registration reply by the [`FederatedEndpoint`]).
#[derive(Debug, Clone)]
struct SessionRecord {
    identity: DeviceIdentity,
    token: String,
    expires_at: SimTime,
    user: UserId,
    instance: InstanceId,
}

#[derive(Debug)]
struct InstanceEntry {
    id: InstanceId,
    /// Raw handle: heartbeats, WAL replay, adoption, and test snapshots.
    cloud: SharedCloud,
    /// What clients are handed at handshake — possibly a chaos-wrapped
    /// decorator over `cloud`.
    endpoint: CloudEndpoint,
    healthy: bool,
    /// Load view from the last heartbeat's health body: admitted but
    /// unfinished requests, and the p99 request latency bucket bound in
    /// microseconds. Both stay 0 until an instance with the latency
    /// model enabled answers a probe.
    queue_depth: u64,
    p99_us: u64,
}

#[derive(Debug, Default)]
struct RouterState {
    instances: Vec<InstanceEntry>,
    ring: HashRing,
    /// Operator pins: identity key → instance, consulted before any
    /// policy. An override to an unhealthy instance is ignored.
    overrides: BTreeMap<String, InstanceId>,
    /// Current placement per identity key (sticky once computed).
    placements: BTreeMap<String, InstanceId>,
    sessions: BTreeMap<String, SessionRecord>,
    policy: BalancePolicy,
    rr_next: usize,
    version: u64,
}

impl RouterState {
    fn healthy_ids(&self) -> Vec<InstanceId> {
        self.instances
            .iter()
            .filter(|e| e.healthy)
            .map(|e| e.id)
            .collect()
    }

    fn entry(&self, id: InstanceId) -> Option<&InstanceEntry> {
        self.instances.iter().find(|e| e.id == id)
    }

    fn is_healthy(&self, id: InstanceId) -> bool {
        self.entry(id).is_some_and(|e| e.healthy)
    }

    fn rebuild_ring(&mut self) {
        self.ring = HashRing::build(&self.healthy_ids());
    }

    /// Computes a fresh placement for `key` among healthy instances,
    /// excluding `exclude` (the drain case), and records it. Does **not**
    /// consult the sticky placement map — callers decide stickiness.
    fn compute_placement(&mut self, key: &str, exclude: Option<InstanceId>) -> Option<InstanceId> {
        let candidates: Vec<InstanceId> = self
            .healthy_ids()
            .into_iter()
            .filter(|id| Some(*id) != exclude)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let chosen = match self.policy {
            BalancePolicy::ConsistentHash => {
                if exclude.is_none() {
                    self.ring.place(key)?
                } else {
                    HashRing::build(&candidates).place(key)?
                }
            }
            BalancePolicy::RoundRobin => {
                let chosen = candidates[self.rr_next % candidates.len()];
                self.rr_next += 1;
                chosen
            }
            BalancePolicy::LeastConnections => {
                // Load = routed sessions + the instance's own queue depth
                // from its last heartbeat, so a latency-model-enabled
                // federation steers new users away from a backed-up
                // instance. With the model disabled every depth is 0 and
                // the decision reduces to pure session counting.
                let mut best = candidates[0];
                let mut best_load = u64::MAX;
                for id in candidates {
                    let sessions = self.placements.values().filter(|p| **p == id).count() as u64;
                    let queued = self.entry(id).map_or(0, |e| e.queue_depth);
                    let load = sessions + queued;
                    if load < best_load {
                        best = id;
                        best_load = load;
                    }
                }
                best
            }
        };
        self.placements.insert(key.to_owned(), chosen);
        Some(chosen)
    }

    /// Placement for `key`: override if healthy, else the sticky existing
    /// placement if healthy, else a fresh policy decision.
    fn place(&mut self, key: &str) -> Option<InstanceId> {
        if let Some(&pinned) = self.overrides.get(key) {
            if self.is_healthy(pinned) {
                self.placements.insert(key.to_owned(), pinned);
                return Some(pinned);
            }
        }
        if let Some(&current) = self.placements.get(key) {
            if self.is_healthy(current) {
                return Some(current);
            }
        }
        self.compute_placement(key, None)
    }

    fn topology_payload(&self, assigned: InstanceId) -> Payload {
        Payload::Topology {
            version: self.version,
            assigned: assigned.0,
            instances: self.instances.iter().map(|e| (e.id.0, e.healthy)).collect(),
        }
    }
}

#[derive(Debug)]
struct RouterInner {
    state: Mutex<RouterState>,
    wal: MigrationWal,
    /// Requests the router itself has answered — handshakes and
    /// 421/503-triggered refreshes only. The federation matrix pins this
    /// to zero growth at steady state: the router is off the hot path.
    control_requests: AtomicU64,
    /// Observability handle, disabled by default. Its span sink (when
    /// present) is where federated endpoints record handshake spans and
    /// the migration engine records WAL-replay spans.
    obs: Mutex<Obs>,
}

/// The federation control plane: instance registry, placement, health,
/// failover, and analytics fan-out. Cheap to clone (an `Arc` handle),
/// like [`SharedCloud`].
///
/// # Examples
///
/// ```
/// use pmware_cloud::topology::{BalancePolicy, TopologyRouter};
/// use pmware_cloud::{CellDatabase, CloudInstance, SharedCloud};
///
/// let router = TopologyRouter::new(BalancePolicy::ConsistentHash);
/// let a = router.add_instance(SharedCloud::new(CloudInstance::new(CellDatabase::new(), 1)));
/// let b = router.add_instance(SharedCloud::new(CloudInstance::new(CellDatabase::new(), 2)));
/// assert_ne!(a, b);
/// assert_eq!(router.topology().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TopologyRouter {
    shared: Arc<RouterInner>,
}

// The device identity key placement is computed over — shared with the
// durable storage engine, which keys its WAL and snapshots the same way.
pub(crate) use crate::storage::identity_key;

impl TopologyRouter {
    /// An empty federation using `policy` for new placements.
    pub fn new(policy: BalancePolicy) -> TopologyRouter {
        TopologyRouter {
            shared: Arc::new(RouterInner {
                state: Mutex::new(RouterState {
                    policy,
                    ..RouterState::default()
                }),
                wal: MigrationWal::default(),
                control_requests: AtomicU64::new(0),
                obs: Mutex::new(Obs::disabled()),
            }),
        }
    }

    /// Registers an instance whose clients talk straight to the shared
    /// handle. Returns its id; instances start healthy.
    pub fn add_instance(&self, cloud: SharedCloud) -> InstanceId {
        let endpoint = CloudEndpoint::from(cloud.clone());
        self.add_instance_endpoint(cloud, endpoint)
    }

    /// Registers an instance with a distinct client-facing endpoint —
    /// typically a chaos-wrapped [`crate::FaultyCloud`] over `cloud`.
    /// Heartbeats, replay, and adoption use the raw `cloud` handle; only
    /// steady-state client traffic goes through `endpoint`.
    pub fn add_instance_endpoint(&self, cloud: SharedCloud, endpoint: CloudEndpoint) -> InstanceId {
        let mut state = self.shared.state.lock();
        let id = InstanceId(state.instances.len() as u32);
        state.instances.push(InstanceEntry {
            id,
            cloud,
            endpoint,
            healthy: true,
            queue_depth: 0,
            p99_us: 0,
        });
        state.rebuild_ring();
        state.version += 1;
        id
    }

    /// A fresh per-client transport: handshakes on first registration,
    /// then routes every request directly to the assigned instance. Wrap
    /// it in a [`CloudEndpoint`] for the client.
    pub fn endpoint(&self) -> FederatedEndpoint {
        FederatedEndpoint::new(self.clone())
    }

    /// The active placement policy.
    pub fn policy(&self) -> BalancePolicy {
        self.shared.state.lock().policy
    }

    /// Pins a device to an instance, overriding the policy (consulted
    /// only while that instance is healthy).
    pub fn set_override(&self, imei: &str, email: &str, instance: InstanceId) {
        let mut state = self.shared.state.lock();
        state.overrides.insert(identity_key(imei, email), instance);
        state.version += 1;
    }

    /// Binds an observability handle. When it carries a span sink (see
    /// [`Obs::with_spans`]), federated endpoints record their
    /// handshake/re-handshake exchanges and [`TopologyRouter::fail_over`]
    /// records WAL-replay work as children of the originating request's
    /// trace. Disabled by default — binding nothing costs nothing.
    pub fn set_obs(&self, obs: &Obs) {
        *self.shared.obs.lock() = obs.clone();
    }

    /// The bound span sink, if any.
    pub(crate) fn span_sink(&self) -> Option<Arc<SpanSink>> {
        self.shared.obs.lock().spans().cloned()
    }

    /// Control-plane requests answered so far (handshakes + refreshes).
    pub fn control_requests(&self) -> u64 {
        self.shared.control_requests.load(Ordering::SeqCst)
    }

    /// Current topology version.
    pub fn version(&self) -> u64 {
        self.shared.state.lock().version
    }

    /// `(instance, healthy)` snapshot in id order.
    pub fn topology(&self) -> Vec<(InstanceId, bool)> {
        self.shared
            .state
            .lock()
            .instances
            .iter()
            .map(|e| (e.id, e.healthy))
            .collect()
    }

    /// Authenticated requests served per instance, in id order — the
    /// per-instance traffic breakdown the federation bench reports.
    pub fn instance_requests(&self) -> Vec<(InstanceId, u64)> {
        self.shared
            .state
            .lock()
            .instances
            .iter()
            .map(|e| (e.id, e.cloud.total_requests()))
            .collect()
    }

    /// The instance currently answering for a device's session, with the
    /// user id its state lives under there — how the federation tests
    /// read back a migrated user's cloud-side snapshot.
    pub fn locate(&self, imei: &str, email: &str) -> Option<(SharedCloud, UserId)> {
        let state = self.shared.state.lock();
        let session = state.sessions.get(&identity_key(imei, email))?;
        let entry = state.entry(session.instance)?;
        Some((entry.cloud.clone(), session.user))
    }

    /// The instance a device's session currently lives on — how harnesses
    /// pick a kill target that is guaranteed to displace someone.
    pub fn instance_of(&self, imei: &str, email: &str) -> Option<InstanceId> {
        self.shared
            .state
            .lock()
            .sessions
            .get(&identity_key(imei, email))
            .map(|session| session.instance)
    }

    /// WAL entries logged for a device (tests and capacity accounting).
    pub fn wal_len(&self, imei: &str, email: &str) -> usize {
        self.shared.wal.len_of(&identity_key(imei, email))
    }

    /// Injects an outage on `id` — the federation matrix's kill switch.
    /// The next [`TopologyRouter::heartbeat`] marks it unhealthy.
    pub fn kill_instance(&self, id: InstanceId) {
        if let Some(entry) = self.shared.state.lock().entry(id) {
            entry.cloud.set_outage(true);
        }
    }

    /// Lifts the outage on `id`; the next heartbeat readmits it.
    pub fn revive_instance(&self, id: InstanceId) {
        if let Some(entry) = self.shared.state.lock().entry(id) {
            entry.cloud.set_outage(false);
        }
    }

    /// The control plane's single wire entry point. Only the topology
    /// handshake lives here; everything else is answered 404 because
    /// steady-state traffic must not reach the router at all.
    pub fn control(&self, request: &Request, _now: SimTime) -> Response {
        self.shared.control_requests.fetch_add(1, Ordering::SeqCst);
        if request.method != Method::Post || request.path != TOPOLOGY_HANDSHAKE_PATH {
            return Response::not_found(format!(
                "the topology router only serves {TOPOLOGY_HANDSHAKE_PATH}"
            ));
        }
        with_body::<HandshakeBody>(request, |body| {
            if body.imei.is_empty() || body.email.is_empty() {
                return Response::bad_request("imei and email are required");
            }
            let mut state = self.shared.state.lock();
            let key = identity_key(&body.imei, &body.email);
            match state.place(&key) {
                Some(assigned) => {
                    let payload = state.topology_payload(assigned);
                    Response::ok(payload)
                }
                None => Response::error(503, "no healthy instance available"),
            }
        })
    }

    /// Probes every instance with `GET /api/v1/health` through its full
    /// layer stack (an injected outage answers 503 exactly like real
    /// client traffic would fail). Updates health flags, rebuilds the
    /// ring, and bumps the version when anything changed. The typed
    /// health body also carries each instance's queue depth and p99
    /// latency, which the probe folds into the load view that
    /// [`BalancePolicy::LeastConnections`] placement reads. Returns the
    /// post-probe `(instance, healthy)` snapshot.
    pub fn heartbeat(&self, now: SimTime) -> Vec<(InstanceId, bool)> {
        let probe = Request::get("/api/v1/health");
        let mut state = self.shared.state.lock();
        let mut changed = false;
        for i in 0..state.instances.len() {
            let response = state.instances[i].cloud.handle(&probe, now);
            let healthy = response.is_success();
            let (queue_depth, p99_us) = match response.body {
                Payload::Health {
                    queue_depth,
                    p99_us,
                    ..
                } => (queue_depth, p99_us),
                _ => (0, 0),
            };
            state.instances[i].queue_depth = queue_depth;
            state.instances[i].p99_us = p99_us;
            if healthy != state.instances[i].healthy {
                state.instances[i].healthy = healthy;
                changed = true;
            }
        }
        if changed {
            state.rebuild_ring();
            state.version += 1;
        }
        state.instances.iter().map(|e| (e.id, e.healthy)).collect()
    }

    /// `(instance, queue depth, p99 µs)` as of the last heartbeat, in id
    /// order — the load view placement decisions consult. All zeros until
    /// a heartbeat runs against latency-model-enabled instances.
    pub fn instance_load(&self) -> Vec<(InstanceId, u64, u64)> {
        self.shared
            .state
            .lock()
            .instances
            .iter()
            .map(|e| (e.id, e.queue_depth, e.p99_us))
            .collect()
    }

    /// Heartbeats, then migrates every user placed on a now-unhealthy
    /// instance: recompute placement, replay the user's WAL into the new
    /// instance, and transplant the live session token. Deterministic —
    /// displaced users are processed in identity-key order.
    pub fn fail_over(&self, now: SimTime) -> FailoverReport {
        self.heartbeat(now);
        self.migrate(now, None)
    }

    /// Gracefully drains a *healthy* instance: every user placed on it is
    /// migrated elsewhere and the drained instance marks them relocated,
    /// so a stale client that still sends there gets 421 and refreshes.
    pub fn drain_instance(&self, id: InstanceId, now: SimTime) -> FailoverReport {
        self.migrate(now, Some(id))
    }

    /// Shared failover/drain engine. `drain = Some(id)` treats `id` as a
    /// source to evacuate (and excludes it as a target); `None` evacuates
    /// every unhealthy instance.
    fn migrate(&self, now: SimTime, drain: Option<InstanceId>) -> FailoverReport {
        struct Job {
            key: String,
            old: SharedCloud,
            target_id: InstanceId,
            target: SharedCloud,
            session: Option<SessionRecord>,
        }

        // Pass 1 (locked): pick targets and record placements. BTreeMap
        // iteration makes the displaced order deterministic.
        let mut jobs: Vec<Job> = Vec::new();
        let displaced_total: usize;
        {
            let mut state = self.shared.state.lock();
            let displaced: Vec<(String, InstanceId)> = state
                .placements
                .iter()
                .filter(|(_, id)| match drain {
                    Some(source) => **id == source,
                    None => !state.is_healthy(**id),
                })
                .map(|(k, id)| (k.clone(), *id))
                .collect();
            displaced_total = displaced.len();
            for (key, old_id) in displaced {
                let Some(target_id) = state.compute_placement(&key, Some(old_id)) else {
                    // Nowhere to go: leave the placement pointing at the
                    // old instance so a later pass can retry.
                    state.placements.insert(key.clone(), old_id);
                    continue;
                };
                let old = state.entry(old_id).expect("placed instance exists");
                let target = state.entry(target_id).expect("computed target exists");
                jobs.push(Job {
                    key: key.clone(),
                    old: old.cloud.clone(),
                    target_id,
                    target: target.cloud.clone(),
                    session: state.sessions.get(&key).cloned(),
                });
            }
            if !jobs.is_empty() || displaced_total > 0 {
                state.version += 1;
            }
        }

        // Pass 2 (unlocked): replay each user's WAL into its target. The
        // first successful replayed registration yields the replay token;
        // later re-registrations in the log rotate it, mirroring what the
        // client's own retries did against the old instance.
        let mut replayed_total = 0usize;
        let mut adopted: Vec<(String, InstanceId, UserId)> = Vec::new();
        let sink = self.span_sink();
        for job in &jobs {
            let records = self.shared.wal.replay_of(&job.key);
            // The shared idempotent replay path (also the crash-recovery
            // engine). WAL entries keep the span context of the request
            // that first sent them, so replay work shows up as a child of
            // that original operation's trace. Failover runs from the
            // single driving thread, which keeps the extra span ids
            // deterministic.
            let summary = crate::storage::wal::replay_session(
                &records,
                |request| job.target.handle(request, now),
                0,
                |request, response| {
                    if request.ctx.is_active() {
                        if let Some(sink) = &sink {
                            let at_us = now.as_seconds().saturating_mul(1_000_000);
                            let id = sink.alloc(request.ctx.trace);
                            sink.record(
                                request.ctx.trace,
                                id,
                                request.ctx.parent,
                                "replay",
                                at_us,
                                at_us,
                                &[
                                    ("path", FieldValue::from(request.path.as_str())),
                                    ("status", FieldValue::from(u64::from(response.status))),
                                    ("target", FieldValue::from(u64::from(job.target_id.0))),
                                ],
                            );
                        }
                    }
                },
            );
            replayed_total += summary.replayed;
            if let Some(session) = &job.session {
                if let Some(user) =
                    job.target
                        .adopt_session(&session.identity, &session.token, session.expires_at)
                {
                    job.old.mark_relocated(session.user);
                    adopted.push((job.key.clone(), job.target_id, user));
                }
            }
        }

        // Pass 3 (locked): record adopted sessions.
        let version = {
            let mut state = self.shared.state.lock();
            for (key, instance, user) in adopted {
                if let Some(session) = state.sessions.get_mut(&key) {
                    session.instance = instance;
                    session.user = user;
                }
            }
            state.version
        };

        FailoverReport {
            displaced: displaced_total,
            replayed: replayed_total,
            migration_seconds: replayed_total as u64,
            version,
        }
    }

    /// Federated analytics fan-out: queries every live session's instance
    /// for its activity summary and aggregates across the federation —
    /// the one query class that *does* span instances. Uses the raw
    /// instance handles (not client endpoints), so chaos wrappers and the
    /// control-request pin are untouched.
    pub fn federated_activity(&self, now: SimTime) -> ActivityFanout {
        let sessions: Vec<(String, SessionRecord, SharedCloud)> = {
            let state = self.shared.state.lock();
            state
                .sessions
                .iter()
                .filter_map(|(key, session)| {
                    let entry = state.entry(session.instance)?;
                    Some((key.clone(), session.clone(), entry.cloud.clone()))
                })
                .collect()
        };
        let mut per_user = Vec::with_capacity(sessions.len());
        let mut loads: BTreeMap<InstanceId, usize> = BTreeMap::new();
        for (key, session, cloud) in sessions {
            *loads.entry(session.instance).or_default() += 1;
            let request = Request::post("/api/v1/analytics/activity", Payload::Empty)
                .with_token(session.token.clone());
            let response = cloud.handle(&request, now);
            if let Payload::Activity {
                mean_daily_moving_minutes,
            } = response.body
            {
                per_user.push((key, mean_daily_moving_minutes));
            }
        }
        let population_mean = if per_user.is_empty() {
            0.0
        } else {
            per_user.iter().map(|(_, m)| m).sum::<f64>() / per_user.len() as f64
        };
        ActivityFanout {
            population_mean,
            per_user,
            per_instance: loads.into_iter().collect(),
        }
    }

    // ---- hooks for the federated endpoint --------------------------------

    /// The client-facing endpoint of `id`, if registered.
    pub(crate) fn endpoint_of(&self, id: InstanceId) -> Option<CloudEndpoint> {
        self.shared
            .state
            .lock()
            .entry(id)
            .map(|e| e.endpoint.clone())
    }

    /// Records (or refreshes) a live session captured from a successful
    /// registration reply on `instance`.
    pub(crate) fn record_session(
        &self,
        identity: &DeviceIdentity,
        instance: InstanceId,
        user: UserId,
        token: &str,
        expires_at: SimTime,
    ) {
        let key = identity_key(&identity.imei, &identity.email);
        self.shared.state.lock().sessions.insert(
            key,
            SessionRecord {
                identity: identity.clone(),
                token: token.to_owned(),
                expires_at,
                user,
                instance,
            },
        );
    }

    /// Tracks a token rotation observed on the session's own instance.
    pub(crate) fn update_token(&self, identity: &DeviceIdentity, token: &str, expires_at: SimTime) {
        let key = identity_key(&identity.imei, &identity.email);
        if let Some(session) = self.shared.state.lock().sessions.get_mut(&key) {
            session.token = token.to_owned();
            session.expires_at = expires_at;
        }
    }

    /// Appends a replayable request to the device's migration log when it
    /// is a successful mutating call (registration or `Ingest` class).
    pub(crate) fn log_if_mutating(&self, identity: &DeviceIdentity, request: &Request) {
        let mutating = request.method == Method::Post
            && (request.path == crate::payload::REGISTRATION_PATH
                || matches!(
                    resolve(request.method, &request.path),
                    Resolution::Matched { route, .. } if route.rate_class == RateClass::Ingest
                ));
        if mutating {
            let key = identity_key(&identity.imei, &identity.email);
            self.shared.wal.append(&key, request.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use serde_json::json;

    use super::*;
    use crate::geolocate::CellDatabase;
    use crate::instance::CloudInstance;
    use crate::profile::ContactEntry;
    use crate::transport::STATUS_MISDIRECTED;

    fn router_with(n: usize, policy: BalancePolicy) -> TopologyRouter {
        let router = TopologyRouter::new(policy);
        for i in 0..n {
            router.add_instance(SharedCloud::new(CloudInstance::new(
                CellDatabase::new(),
                1000 + i as u64,
            )));
        }
        router
    }

    fn identity(n: u32) -> (String, String) {
        (format!("imei-{n}"), format!("u{n}@x.com"))
    }

    /// Registers device `n` through its own federated endpoint; returns
    /// the endpoint and the issued token.
    fn register(router: &TopologyRouter, n: u32, now: SimTime) -> (CloudEndpoint, String) {
        let endpoint = CloudEndpoint::new(router.endpoint());
        let (imei, email) = identity(n);
        let response = endpoint.send(
            &Request::post(
                crate::payload::REGISTRATION_PATH,
                json!({"imei": imei, "email": email}),
            ),
            now,
        );
        assert!(response.is_success(), "{response:?}");
        let token = response.json()["token"].as_str().unwrap().to_owned();
        (endpoint, token)
    }

    #[test]
    fn round_robin_cycles_instances() {
        let router = router_with(3, BalancePolicy::RoundRobin);
        let now = SimTime::EPOCH;
        for n in 0..6 {
            register(&router, n, now);
        }
        let hosts: Vec<u32> = (0..6)
            .map(|n| {
                let (imei, email) = identity(n);
                router.instance_of(&imei, &email).unwrap().0
            })
            .collect();
        assert_eq!(hosts, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_connections_balances_a_skewed_start() {
        let router = router_with(2, BalancePolicy::LeastConnections);
        let now = SimTime::EPOCH;
        // Pin the first two users onto instance 0 so it starts loaded.
        for n in 0..2 {
            let (imei, email) = identity(n);
            router.set_override(&imei, &email, InstanceId(0));
            register(&router, n, now);
        }
        // The next two land on the emptier instance 1.
        for n in 2..4 {
            register(&router, n, now);
            let (imei, email) = identity(n);
            assert_eq!(router.instance_of(&imei, &email), Some(InstanceId(1)));
        }
    }

    /// The heartbeat probe reads the typed health body (queue depth +
    /// p99), and least-connections placement steers new users away from
    /// the instance with the deeper queue.
    #[test]
    fn heartbeat_reads_load_and_least_connections_avoids_deep_queues() {
        let router = router_with(2, BalancePolicy::LeastConnections);
        let now = SimTime::EPOCH;
        // Back up instance 0: shared FIFO, 1 s service time, and three
        // authenticated requests all arriving at t=0.
        let zero = router.shared.state.lock().instances[0].cloud.clone();
        zero.set_latency(Some(
            crate::latency::LatencyProfile::uniform(1, 1_000_000, 0).with_queue(
                crate::latency::QueueConfig {
                    mode: crate::latency::QueueMode::Shared,
                    shed_depth: 0,
                },
            ),
        ));
        let reg = zero.handle(
            &Request::post(
                crate::payload::REGISTRATION_PATH,
                json!({"imei": "queued", "email": "q@x.com"}),
            ),
            now,
        );
        assert!(reg.is_success(), "{reg:?}");
        let token = reg.json()["token"].as_str().unwrap().to_owned();
        for _ in 0..3 {
            let response = zero.handle(&Request::get("/api/v1/places").with_token(&token), now);
            assert!(response.is_success(), "{response:?}");
        }
        router.heartbeat(now);
        let load = router.instance_load();
        assert_eq!(load[0].0, InstanceId(0));
        assert_eq!(load[0].1, 3, "three unfinished requests queue: {load:?}");
        assert!(load[0].2 >= 1_000_000, "p99 covers the 1 s service time");
        assert_eq!(load[1].1, 0, "instance 1 is idle");
        // Neither instance holds a routed session, so pure session
        // counting would tie (and pick instance 0). The queue depth
        // breaks the tie toward the idle instance.
        register(&router, 9, now);
        let (imei, email) = identity(9);
        assert_eq!(router.instance_of(&imei, &email), Some(InstanceId(1)));
    }

    #[test]
    fn consistent_hash_is_stable_across_registration_order() {
        let forward = router_with(4, BalancePolicy::ConsistentHash);
        let reverse = router_with(4, BalancePolicy::ConsistentHash);
        let now = SimTime::EPOCH;
        for n in 0..8 {
            register(&forward, n, now);
        }
        for n in (0..8).rev() {
            register(&reverse, n, now);
        }
        for n in 0..8 {
            let (imei, email) = identity(n);
            assert_eq!(
                forward.instance_of(&imei, &email),
                reverse.instance_of(&imei, &email),
                "placement of device {n} depends on arrival order"
            );
        }
    }

    #[test]
    fn steady_state_requests_never_touch_the_router() {
        let router = router_with(2, BalancePolicy::RoundRobin);
        let now = SimTime::EPOCH;
        let (endpoint, token) = register(&router, 0, now);
        assert_eq!(router.control_requests(), 1, "one handshake per client");
        for _ in 0..5 {
            let response = endpoint.send(&Request::get("/api/v1/places").with_token(&token), now);
            assert!(response.is_success());
        }
        assert_eq!(router.control_requests(), 1, "steady state is router-free");
    }

    #[test]
    fn failover_replays_the_wal_and_reroutes_the_client() {
        let router = router_with(2, BalancePolicy::RoundRobin);
        let now = SimTime::EPOCH;
        let (endpoint, token) = register(&router, 0, now);
        register(&router, 1, now);
        let (imei, email) = identity(0);
        let home = router.instance_of(&imei, &email).unwrap();

        let contacts = vec![ContactEntry {
            contact: "peer-1".into(),
            start: SimTime::from_seconds(0),
            end: SimTime::from_seconds(600),
            place: None,
        }];
        let response = endpoint.send(
            &Request::post("/api/v1/social/sync", json!({ "contacts": contacts }))
                .with_token(&token),
            now,
        );
        assert!(response.is_success(), "{response:?}");
        assert_eq!(
            router.wal_len(&imei, &email),
            2,
            "registration + sync logged"
        );

        router.kill_instance(home);
        let later = now + pmware_world::SimDuration::from_hours(1);
        let report = router.fail_over(later);
        assert_eq!(report.displaced, 1, "only the killed instance's user moves");
        assert_eq!(report.replayed, 2);

        let new_home = router.instance_of(&imei, &email).unwrap();
        assert_ne!(new_home, home);
        let (cloud, user) = router.locate(&imei, &email).unwrap();
        let stored = cloud.contacts_of(user);
        assert_eq!(stored.len(), 1);
        assert_eq!(stored[0].contact, "peer-1");

        // The client's cached target is stale; the endpoint refreshes the
        // topology transparently and the same token keeps working.
        let before = router.control_requests();
        let response = endpoint.send(&Request::get("/api/v1/places").with_token(&token), later);
        assert!(response.is_success(), "{response:?}");
        assert_eq!(router.control_requests(), before + 1);
        // …and only once: the refreshed target is cached again.
        let response = endpoint.send(&Request::get("/api/v1/places").with_token(&token), later);
        assert!(response.is_success());
        assert_eq!(router.control_requests(), before + 1);
    }

    #[test]
    fn drain_marks_old_instance_misdirected() {
        let router = router_with(2, BalancePolicy::RoundRobin);
        let now = SimTime::EPOCH;
        let (endpoint, token) = register(&router, 0, now);
        let (imei, email) = identity(0);
        let home = router.instance_of(&imei, &email).unwrap();

        let report = router.drain_instance(home, now);
        assert_eq!(report.displaced, 1);
        // A stale direct hit on the drained (still healthy) instance gets
        // the relocation layer's 421…
        let old = router.endpoint_of(home).unwrap();
        let stale = old.send(&Request::get("/api/v1/places").with_token(&token), now);
        assert_eq!(stale.status, STATUS_MISDIRECTED);
        // …which the federated endpoint absorbs by re-handshaking.
        let response = endpoint.send(&Request::get("/api/v1/places").with_token(&token), now);
        assert!(response.is_success(), "{response:?}");
        assert_ne!(router.instance_of(&imei, &email).unwrap(), home);
    }

    #[test]
    fn handshake_rejects_blank_identity_and_unroutable_state() {
        let router = router_with(1, BalancePolicy::ConsistentHash);
        let now = SimTime::EPOCH;
        let bad = router.control(
            &Request::post(
                crate::payload::TOPOLOGY_HANDSHAKE_PATH,
                json!({"imei": "", "email": ""}),
            ),
            now,
        );
        assert_eq!(bad.status, 400);

        router.kill_instance(InstanceId(0));
        router.heartbeat(now);
        let down = router.control(
            &Request::post(
                crate::payload::TOPOLOGY_HANDSHAKE_PATH,
                json!({"imei": "350", "email": "a@x"}),
            ),
            now,
        );
        assert_eq!(down.status, 503);
    }

    #[test]
    fn revived_instance_rejoins_the_ring() {
        let router = router_with(2, BalancePolicy::ConsistentHash);
        let now = SimTime::EPOCH;
        router.kill_instance(InstanceId(1));
        let health = router.heartbeat(now);
        assert_eq!(health, vec![(InstanceId(0), true), (InstanceId(1), false)]);
        let v1 = router.version();

        router.revive_instance(InstanceId(1));
        let health = router.heartbeat(now);
        assert_eq!(health, vec![(InstanceId(0), true), (InstanceId(1), true)]);
        assert!(
            router.version() > v1,
            "readmission bumps the topology version"
        );
    }
}
