//! The per-user migration write-ahead log.
//!
//! The federated endpoint appends every *successful mutating* request —
//! registration plus the `Ingest`-class offloads and syncs — keyed by the
//! device identity. A failover replays the log, in order, into the user's
//! new instance; the server-side sequence watermarks (`absorbed_upto`,
//! per-day profile sequences, places/routes sync sequences) make the
//! replay idempotent, so the rebuilt state is byte-identical to what the
//! dead instance held. Queries and token refreshes are never logged: they
//! do not shape user state, and the live token is transplanted separately
//! at adoption time.

use std::collections::BTreeMap;

use parking_lot::Mutex;

use crate::api::Request;

/// Append-only per-user request log, keyed by identity key.
#[derive(Debug, Default)]
pub(super) struct MigrationWal {
    entries: Mutex<BTreeMap<String, Vec<Request>>>,
}

impl MigrationWal {
    /// Appends one replayable request under `key`.
    pub(super) fn append(&self, key: &str, request: Request) {
        self.entries
            .lock()
            .entry(key.to_owned())
            .or_default()
            .push(request);
    }

    /// A clone of `key`'s log, in append order.
    pub(super) fn replay_of(&self, key: &str) -> Vec<Request> {
        self.entries.lock().get(key).cloned().unwrap_or_default()
    }

    /// Number of logged requests for `key`.
    pub(super) fn len_of(&self, key: &str) -> usize {
        self.entries.lock().get(key).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn append_preserves_order_per_key() {
        let wal = MigrationWal::default();
        wal.append(
            "a",
            Request::post("/api/v1/registration", json!({"imei": "1"})),
        );
        wal.append(
            "a",
            Request::post("/api/v1/places/sync", json!({"places": []})),
        );
        wal.append(
            "b",
            Request::post("/api/v1/registration", json!({"imei": "2"})),
        );
        let a = wal.replay_of("a");
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].path, "/api/v1/registration");
        assert_eq!(a[1].path, "/api/v1/places/sync");
        assert_eq!(wal.len_of("b"), 1);
        assert_eq!(wal.len_of("missing"), 0);
    }
}
