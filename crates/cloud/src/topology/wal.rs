//! The per-user migration write-ahead log.
//!
//! The federated endpoint appends every *successful mutating* request —
//! registration plus the `Ingest`-class offloads and syncs — keyed by the
//! device identity. A failover replays the log, in order, into the user's
//! new instance through [`crate::storage::wal::replay_session`] — the same
//! idempotent replay path crash recovery uses, over the same
//! [`WalRecord`] type. The server-side sequence watermarks
//! (`absorbed_upto`, per-day profile sequences, places/routes sync
//! sequences) make the replay idempotent, so the rebuilt state is
//! byte-identical to what the dead instance held. Queries and token
//! refreshes are never logged: they do not shape user state, and the live
//! token is transplanted separately at adoption time.

use parking_lot::Mutex;

use crate::api::Request;
use crate::storage::wal::{WalLog, WalOp, WalRecord};

/// Append-only per-user request log, keyed by identity key. A thin
/// thread-safe façade over the shared [`WalLog`] record store.
#[derive(Debug, Default)]
pub(super) struct MigrationWal {
    log: Mutex<WalLog>,
}

impl MigrationWal {
    /// Appends one replayable request under `key`.
    pub(super) fn append(&self, key: &str, request: Request) {
        self.log
            .lock()
            .append(key, WalOp::request(request).compacted());
    }

    /// A clone of `key`'s records, in sequence order.
    pub(super) fn replay_of(&self, key: &str) -> Vec<WalRecord> {
        self.log.lock().suffix(key, 0)
    }

    /// Number of logged records for `key`.
    pub(super) fn len_of(&self, key: &str) -> usize {
        self.log.lock().len_of(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn append_preserves_order_per_key() {
        let wal = MigrationWal::default();
        wal.append(
            "a",
            Request::post("/api/v1/registration", json!({"imei": "1"})),
        );
        wal.append(
            "a",
            Request::post("/api/v1/places/sync", json!({"places": []})),
        );
        wal.append(
            "b",
            Request::post("/api/v1/registration", json!({"imei": "2"})),
        );
        let a = wal.replay_of("a");
        assert_eq!(a.len(), 2);
        assert_eq!((a[0].seq, a[1].seq), (1, 2));
        assert!(matches!(&a[0].op, WalOp::Request(r) if r.path == "/api/v1/registration"));
        assert!(matches!(&a[1].op, WalOp::Request(r) if r.path == "/api/v1/places/sync"));
        assert_eq!(wal.len_of("b"), 1);
        assert_eq!(wal.len_of("missing"), 0);
    }
}
