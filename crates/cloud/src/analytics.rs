//! Analytics over stored mobility profiles (§2.3.2).
//!
//! *"Mobility profiles and history module stores the long-term human
//! mobility patterns of a given user. These patterns can be used for
//! predicting user's future mobility"* — the analytics engine answers
//! aggregate queries (visit counts, typical arrival times, weekday
//! patterns); [`crate::predict`] builds predictors on top.

use pmware_algorithms::signature::DiscoveredPlaceId;
use pmware_world::intern::Interner;
use pmware_world::time::DAY;
use pmware_world::{SimTime, Weekday};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::profile::MobilityProfile;

/// The per-user long-term profile history.
///
/// Besides the day-keyed profiles themselves, the history maintains a
/// **per-place arrival index** (place → profile day → arrivals, in entry
/// order) so that the query paths — visit counts, weekday histograms,
/// next-visit prediction — walk only the queried place's arrivals instead
/// of scanning (and re-collecting) every profile, and a **generation
/// counter** that [`upsert`](Self::upsert) bumps so derived caches (the
/// memoized Markov model) know when to invalidate.
#[derive(Debug, Clone, Default)]
pub struct ProfileHistory {
    profiles: BTreeMap<u64, MobilityProfile>,
    /// Place ↔ dense symbol table for the arrival index. Symbols are
    /// process-local derived state: they never serialize (the wire carries
    /// only the profiles) and never affect query results.
    place_ids: Interner<DiscoveredPlaceId>,
    /// Per-place arrivals, indexed by place symbol: profile day → arrivals
    /// in entry order. A slot left empty by an un-indexed day reads the
    /// same as an absent place.
    arrival_index: Vec<BTreeMap<u64, Vec<SimTime>>>,
    generation: u64,
}

impl ProfileHistory {
    /// An empty history.
    pub fn new() -> Self {
        ProfileHistory::default()
    }

    /// Stores a day's profile, replacing any previous sync of the same
    /// day, and bumps the [`generation`](Self::generation).
    pub fn upsert(&mut self, profile: MobilityProfile) {
        let day = profile.day;
        if let Some(old) = self.profiles.insert(day, profile) {
            // Un-index the replaced day's entries before re-indexing.
            for entry in &old.places {
                if let Some(sym) = self.place_ids.get(&entry.place) {
                    self.arrival_index[sym as usize].remove(&day);
                }
            }
        }
        for entry in &self.profiles[&day].places {
            let sym = self.place_ids.intern(&entry.place) as usize;
            if sym == self.arrival_index.len() {
                self.arrival_index.push(BTreeMap::new());
            }
            self.arrival_index[sym]
                .entry(day)
                .or_default()
                .push(entry.arrival);
        }
        self.generation += 1;
    }

    /// Monotone counter bumped on every [`upsert`](Self::upsert); equal
    /// generations guarantee an unchanged history, so models derived from
    /// it can be cached against this value.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The profile for a day, if synced.
    pub fn day(&self, day: u64) -> Option<&MobilityProfile> {
        self.profiles.get(&day)
    }

    /// Number of days stored.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Returns `true` when no profile is stored.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Iterates profiles in day order.
    pub fn iter(&self) -> impl Iterator<Item = &MobilityProfile> {
        self.profiles.values()
    }

    /// All arrival instants at a place, in stored order, without
    /// allocating — reads the arrival index (day ascending, entry order
    /// within a day: the same order a scan over the profiles would yield).
    pub fn arrivals_iter(&self, place: DiscoveredPlaceId) -> impl Iterator<Item = SimTime> + '_ {
        self.place_ids
            .get(&place)
            .into_iter()
            .flat_map(|sym| self.arrival_index[sym as usize].values())
            .flatten()
            .copied()
    }

    /// All arrival instants at a place, collected into a vector. Prefer
    /// [`arrivals_iter`](Self::arrivals_iter) on query paths.
    pub fn arrivals(&self, place: DiscoveredPlaceId) -> Vec<SimTime> {
        self.arrivals_iter(place).collect()
    }

    /// Total number of visits to a place (index lookup, no allocation).
    pub fn visit_count(&self, place: DiscoveredPlaceId) -> usize {
        self.place_ids.get(&place).map_or(0, |sym| {
            self.arrival_index[sym as usize]
                .values()
                .map(Vec::len)
                .sum()
        })
    }

    /// Average visits per week ("How frequently user visit shopping
    /// malls?" — §2.3.2 query 3, per place).
    pub fn visits_per_week(&self, place: DiscoveredPlaceId) -> f64 {
        if self.profiles.is_empty() {
            return 0.0;
        }
        let first = *self.profiles.keys().next().expect("non-empty");
        let last = *self.profiles.keys().last().expect("non-empty");
        let weeks = ((last - first + 1) as f64 / 7.0).max(1.0 / 7.0);
        self.visit_count(place) as f64 / weeks
    }

    /// Median arrival second-of-day at a place, optionally restricted to
    /// arrivals within `[after_hour, before_hour)` — e.g. `(15, 24)` for
    /// "the likely time at which the user typically reaches home in the
    /// evening" (§2.3.2 query 1). Returns `None` with no matching arrivals.
    pub fn typical_arrival_second_of_day(
        &self,
        place: DiscoveredPlaceId,
        window: Option<(u64, u64)>,
    ) -> Option<u64> {
        let mut seconds: Vec<u64> = self
            .arrivals_iter(place)
            .map(|t| t.seconds_of_day())
            .filter(|s| match window {
                Some((lo, hi)) => *s >= lo * 3_600 && *s < hi * 3_600,
                None => true,
            })
            .collect();
        if seconds.is_empty() {
            return None;
        }
        seconds.sort_unstable();
        Some(seconds[seconds.len() / 2])
    }

    /// Visit counts per weekday for a place (Monday first); streams the
    /// arrival index, no allocation.
    pub fn weekday_histogram(&self, place: DiscoveredPlaceId) -> [u32; 7] {
        let mut hist = [0u32; 7];
        for arrival in self.arrivals_iter(place) {
            let idx = (arrival.as_seconds() / DAY % 7) as usize;
            hist[idx] += 1;
        }
        hist
    }

    /// Weekdays on which the place was ever visited.
    pub fn visited_weekdays(&self, place: DiscoveredPlaceId) -> Vec<Weekday> {
        let hist = self.weekday_histogram(place);
        Weekday::ALL
            .iter()
            .copied()
            .zip(hist)
            .filter(|(_, n)| *n > 0)
            .map(|(w, _)| w)
            .collect()
    }

    /// Mean minutes per day classified as moving (§6 activity extension).
    pub fn mean_daily_moving_minutes(&self) -> f64 {
        if self.profiles.is_empty() {
            return 0.0;
        }
        let total: u64 = self.iter().map(|p| p.activity.moving_seconds).sum();
        total as f64 / 60.0 / self.len() as f64
    }

    /// Mean fraction of accounted time spent in places across stored days.
    pub fn mean_place_time_fraction(&self) -> f64 {
        if self.profiles.is_empty() {
            return 0.0;
        }
        self.iter().map(|p| p.place_time_fraction()).sum::<f64>() / self.len() as f64
    }
}

/// Two histories are equal when they store the same profiles: the arrival
/// index is derived data and the generation is a local mutation counter,
/// so neither participates in equality.
impl PartialEq for ProfileHistory {
    fn eq(&self, other: &Self) -> bool {
        self.profiles == other.profiles
    }
}

/// Wire form: only the profiles travel; the arrival index is rebuilt on
/// deserialization (same serialized shape as the pre-index struct).
#[derive(Serialize, Deserialize)]
struct ProfileHistoryWire {
    profiles: BTreeMap<u64, MobilityProfile>,
}

impl Serialize for ProfileHistory {
    fn to_json_value(&self) -> serde::Value {
        ProfileHistoryWire {
            profiles: self.profiles.clone(),
        }
        .to_json_value()
    }
}

impl<'de> Deserialize<'de> for ProfileHistory {
    fn from_json_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let wire = ProfileHistoryWire::from_json_value(value)?;
        let mut history = ProfileHistory::new();
        for (_, profile) in wire.profiles {
            history.upsert(profile);
        }
        Ok(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PlaceEntry;

    fn entry(place: u32, day: u64, hour: u64, stay_h: u64) -> PlaceEntry {
        PlaceEntry {
            place: DiscoveredPlaceId(place),
            arrival: SimTime::from_day_time(day, hour, 0, 0),
            departure: SimTime::from_day_time(day, hour + stay_h, 0, 0),
        }
    }

    /// Two weeks: home (place 0) arrival every evening ~18–19h, work
    /// (place 1) on weekdays at 9h, mall (place 2) on Saturdays at 11h.
    fn history() -> ProfileHistory {
        let mut h = ProfileHistory::new();
        for day in 0..14 {
            let weekday = SimTime::from_day_time(day, 0, 0, 0).weekday();
            let mut p = MobilityProfile::new(day);
            if !weekday.is_weekend() {
                p.places.push(entry(1, day, 9, 8));
                p.places
                    .push(entry(0, day, if day % 2 == 0 { 18 } else { 19 }, 4));
            } else {
                if weekday == Weekday::Saturday {
                    p.places.push(entry(2, day, 11, 2));
                }
                p.places.push(entry(0, day, 16, 6));
            }
            h.upsert(p);
        }
        h
    }

    #[test]
    fn upsert_replaces_same_day() {
        let mut h = ProfileHistory::new();
        h.upsert(MobilityProfile::new(3));
        let mut p = MobilityProfile::new(3);
        p.places.push(entry(0, 3, 10, 1));
        h.upsert(p);
        assert_eq!(h.len(), 1);
        assert_eq!(h.day(3).unwrap().places.len(), 1);
    }

    #[test]
    fn visit_counts() {
        let h = history();
        assert_eq!(h.visit_count(DiscoveredPlaceId(1)), 10); // 10 weekdays
        assert_eq!(h.visit_count(DiscoveredPlaceId(2)), 2); // 2 saturdays
        assert_eq!(h.visit_count(DiscoveredPlaceId(0)), 14);
        assert_eq!(h.visit_count(DiscoveredPlaceId(9)), 0);
    }

    #[test]
    fn visits_per_week() {
        let h = history();
        assert!((h.visits_per_week(DiscoveredPlaceId(1)) - 5.0).abs() < 1e-9);
        assert!((h.visits_per_week(DiscoveredPlaceId(2)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn typical_evening_home_arrival() {
        let h = history();
        let s = h
            .typical_arrival_second_of_day(DiscoveredPlaceId(0), Some((15, 24)))
            .unwrap();
        // Weekday arrivals at 18/19h, weekend at 16h: median is 18h.
        assert_eq!(s / 3_600, 18);
    }

    #[test]
    fn window_excludes_out_of_range_arrivals() {
        let h = history();
        // Work arrivals are at 9h; an evening window yields nothing.
        assert!(h
            .typical_arrival_second_of_day(DiscoveredPlaceId(1), Some((15, 24)))
            .is_none());
        // Unwindowed: 9h.
        let s = h
            .typical_arrival_second_of_day(DiscoveredPlaceId(1), None)
            .unwrap();
        assert_eq!(s / 3_600, 9);
    }

    #[test]
    fn weekday_histogram_and_visited_days() {
        let h = history();
        let hist = h.weekday_histogram(DiscoveredPlaceId(2));
        assert_eq!(hist[5], 2); // Saturday
        assert_eq!(hist.iter().sum::<u32>(), 2);
        assert_eq!(
            h.visited_weekdays(DiscoveredPlaceId(2)),
            vec![Weekday::Saturday]
        );
        let workdays = h.visited_weekdays(DiscoveredPlaceId(1));
        assert_eq!(workdays.len(), 5);
        assert!(workdays.iter().all(|w| !w.is_weekend()));
    }

    #[test]
    fn upsert_bumps_generation_and_reindexes_replaced_day() {
        let mut h = ProfileHistory::new();
        assert_eq!(h.generation(), 0);
        let mut p = MobilityProfile::new(3);
        p.places.push(entry(0, 3, 10, 1));
        p.places.push(entry(1, 3, 14, 1));
        h.upsert(p);
        assert_eq!(h.generation(), 1);
        assert_eq!(h.visit_count(DiscoveredPlaceId(0)), 1);
        // Replacing day 3 drops the old entries from the index: place 1
        // vanishes, place 0 moves to a new arrival hour.
        let mut p = MobilityProfile::new(3);
        p.places.push(entry(0, 3, 12, 1));
        h.upsert(p);
        assert_eq!(h.generation(), 2);
        assert_eq!(h.visit_count(DiscoveredPlaceId(1)), 0);
        assert_eq!(
            h.arrivals(DiscoveredPlaceId(0)),
            vec![SimTime::from_day_time(3, 12, 0, 0)]
        );
    }

    #[test]
    fn indexed_arrivals_match_a_profile_scan() {
        let h = history();
        for place in 0..4u32 {
            let id = DiscoveredPlaceId(place);
            let scanned: Vec<SimTime> = h
                .iter()
                .flat_map(|p| p.places.iter())
                .filter(|e| e.place == id)
                .map(|e| e.arrival)
                .collect();
            assert_eq!(h.arrivals(id), scanned, "place {place}");
            assert_eq!(h.visit_count(id), scanned.len());
        }
    }

    #[test]
    fn serde_roundtrip_rebuilds_the_index() {
        let h = history();
        let value = serde_json::to_value(&h).unwrap();
        // Only the profiles travel on the wire.
        assert!(value.get("profiles").is_some());
        assert!(value.get("arrival_index").is_none());
        let back: ProfileHistory = serde_json::from_value(value).unwrap();
        assert_eq!(back, h);
        for place in 0..4u32 {
            let id = DiscoveredPlaceId(place);
            assert_eq!(back.arrivals(id), h.arrivals(id));
            assert_eq!(back.weekday_histogram(id), h.weekday_histogram(id));
        }
    }

    #[test]
    fn empty_history_defaults() {
        let h = ProfileHistory::new();
        assert!(h.is_empty());
        assert_eq!(h.visits_per_week(DiscoveredPlaceId(0)), 0.0);
        assert_eq!(h.mean_place_time_fraction(), 0.0);
        assert!(h
            .typical_arrival_second_of_day(DiscoveredPlaceId(0), None)
            .is_none());
    }
}
