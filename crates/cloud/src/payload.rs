//! Typed wire payloads: the zero-copy body carried by [`Request`] and
//! [`Response`].
//!
//! Historically both carried a raw `serde_json::Value`, which taxed every
//! in-process request three times: the client built a JSON tree
//! (`json!`), the handler cloned and re-parsed it (`from_value`), and a
//! retry re-encoded the whole thing. [`Payload`] replaces that with one
//! enum variant per route-table entry (plus the response shapes the
//! handlers produce), so the common in-process path moves typed Rust
//! values end-to-end with **zero serde work**.
//!
//! JSON still exists, in exactly three places:
//!
//! * **the fault boundary** — `FaultyCloud` spells every request and
//!   response as wire bytes ([`Payload::to_json`]) and re-parses them
//!   ([`Payload::from_json`]), exercising the full marshalling path the
//!   Django service saw;
//! * **the escape hatch** — [`Payload::Json`] carries any body a typed
//!   variant does not model (arbitrary test requests, `CloudClient::call`
//!   callers), preserving old behaviour byte for byte;
//! * **exports and goldens** — traces, metric dumps, and golden tests
//!   render bodies via [`Response::json`](crate::Response::json).
//!
//! **Byte-identity contract**: `to_json` produces the exact `Value` the
//! old `json!` spellings produced (object keys are `BTreeMap`-sorted, so
//! build order is irrelevant), and `from_json` only commits to a typed
//! variant when re-rendering it reproduces the original value — anything
//! else stays [`Payload::Json`]. Wire bytes therefore never change, which
//! is what keeps the chaos matrix, obs-golden, and checkpoint suites
//! passing unmodified.

use std::collections::BTreeMap;

use pmware_algorithms::route::CanonicalRoute;
use pmware_algorithms::signature::{DiscoveredPlace, DiscoveredPlaceId};
use pmware_world::{CellGlobalId, GsmObservation, SimTime};
use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::api::Method;
use crate::auth::UserId;
use crate::profile::{ContactEntry, MobilityProfile};
use crate::router::{resolve, RateClass, Resolution};
use crate::wire::ObservationBatch;

/// `POST /api/v1/registration` body.
#[derive(Debug, Clone, Deserialize)]
pub struct RegistrationBody {
    /// Device IMEI (identity key, with `email`).
    pub imei: String,
    /// Account email (identity key, with `imei`).
    pub email: String,
}

/// `POST /api/v1/topology/handshake` body — the one control-plane
/// request of the federation layer. Served by the `TopologyRouter`
/// itself, never by an instance, so the path is **not** a route-table
/// row (see [`TOPOLOGY_HANDSHAKE_PATH`]).
#[derive(Debug, Clone, Deserialize)]
pub struct HandshakeBody {
    /// Device IMEI (identity key, with `email`).
    pub imei: String,
    /// Account email (identity key, with `imei`).
    pub email: String,
}

/// Path of the topology-handshake control-plane endpoint. Deliberately
/// absent from the instance route table: an instance answering it would
/// put the router back on the hot path.
pub const TOPOLOGY_HANDSHAKE_PATH: &str = "/api/v1/topology/handshake";

/// Path of the one public instance route. The federation layer treats a
/// successful POST here as the start of a user's migration log.
pub const REGISTRATION_PATH: &str = "/api/v1/registration";

/// `POST /api/v1/places/discover` body.
#[derive(Debug, Clone, Deserialize)]
pub struct DiscoverBody {
    /// Plain observation array (legacy and low-volume clients).
    #[serde(default)]
    pub observations: Vec<GsmObservation>,
    /// Delta-compressed, dictionary-coded alternative to `observations`
    /// (the batched offload protocol). When present it wins — both here
    /// and on the wire, where a batched body never spells the plain
    /// array.
    #[serde(default)]
    pub batch: Option<ObservationBatch>,
    /// Stream offset of the first observation in the client's full GSM
    /// log. When present the endpoint is idempotent: already-absorbed
    /// prefixes are skipped. Absent for legacy (unsequenced) clients.
    #[serde(default)]
    pub start: Option<u64>,
}

/// `POST /api/v1/places/sync` body.
#[derive(Debug, Clone, Deserialize)]
pub struct SyncPlacesBody {
    /// Full replacement place list.
    pub places: Vec<DiscoveredPlace>,
    /// Monotonic client sync sequence; a stale full replacement
    /// (reordered behind a newer one) is ignored.
    #[serde(default)]
    pub seq: Option<u64>,
}

/// `POST /api/v1/places/label` body.
#[derive(Debug, Clone, Deserialize)]
pub struct LabelBody {
    /// The place to label.
    pub place: DiscoveredPlaceId,
    /// The user's label.
    pub label: String,
}

/// `POST /api/v1/routes/sync` body.
#[derive(Debug, Clone, Deserialize)]
pub struct SyncRoutesBody {
    /// Full replacement canonical route list.
    pub routes: Vec<CanonicalRoute>,
    /// Monotonic client sync sequence (stale full replacements are
    /// ignored, mirroring the places sync).
    #[serde(default)]
    pub seq: Option<u64>,
}

/// `POST /api/v1/routes/query` body.
#[derive(Debug, Clone, Deserialize)]
pub struct RouteQueryBody {
    /// Origin place.
    pub from: DiscoveredPlaceId,
    /// Destination place.
    pub to: DiscoveredPlaceId,
}

/// `POST /api/v1/profiles/sync` body.
#[derive(Debug, Clone, Deserialize)]
pub struct SyncProfileBody {
    /// The day profile to upsert.
    pub profile: MobilityProfile,
    /// Monotonic client sync sequence; an older version of the same day
    /// arriving late (reorder) or twice (duplicate) is ignored.
    #[serde(default)]
    pub seq: Option<u64>,
}

/// `POST /api/v1/social/sync` body.
#[derive(Debug, Clone, Deserialize)]
pub struct SyncContactsBody {
    /// Encounter entries to append.
    pub contacts: Vec<ContactEntry>,
    /// Stream offset of `contacts[0]` in the client's encounter stream.
    /// When present the endpoint deduplicates re-sent prefixes and the
    /// response carries `acked_upto` so the client can drain its buffer.
    #[serde(default)]
    pub first_seq: Option<u64>,
}

/// `POST /api/v1/social/query` body.
#[derive(Debug, Clone, Deserialize)]
pub struct SocialQueryBody {
    /// Restrict to encounters at this place; `None` returns everything.
    /// The key is always spelled on the wire (`"place": null`), matching
    /// the historical senders.
    pub place: Option<DiscoveredPlaceId>,
}

/// `POST /api/v1/misc/geolocate` body.
#[derive(Debug, Clone, Deserialize)]
pub struct GeolocateBody {
    /// Mobile country code.
    pub mcc: u16,
    /// Mobile network code.
    pub mnc: u16,
    /// Location area code.
    pub lac: u16,
    /// Cell id.
    pub cid: u32,
}

/// `POST /api/v1/misc/geolocate_signature` body.
#[derive(Debug, Clone, Deserialize)]
pub struct GeolocateSignatureBody {
    /// The place signature's cell set.
    pub cells: Vec<CellGlobalId>,
}

/// `POST /api/v1/analytics/arrival` body.
#[derive(Debug, Clone, Deserialize)]
pub struct ArrivalBody {
    /// The place queried.
    pub place: DiscoveredPlaceId,
    /// Hour window `(from, to)`; defaults to the whole day.
    pub window: Option<(u64, u64)>,
}

/// `POST /api/v1/analytics/next_visit` body.
#[derive(Debug, Clone, Deserialize)]
pub struct NextVisitBody {
    /// The place queried.
    pub place: DiscoveredPlaceId,
    /// Predictions are strictly after this instant.
    pub now: SimTime,
}

/// Body of the analytics queries that take only a place
/// (`frequency`, `next_place`).
#[derive(Debug, Clone, Deserialize)]
pub struct PlaceOnlyBody {
    /// The place queried.
    pub place: DiscoveredPlaceId,
}

/// A typed request or response body.
///
/// One variant per route-table request shape, one per handler response
/// shape, plus the infrastructure variants ([`Payload::Empty`],
/// [`Payload::Json`], [`Payload::Error`], [`Payload::MethodNotAllowed`],
/// [`Payload::RateLimited`]). See the module docs for the byte-identity
/// contract tying every variant to its JSON wire spelling.
#[derive(Debug, Clone)]
pub enum Payload {
    // ---- infrastructure --------------------------------------------------
    /// No body (`null` on the wire): GET requests, the token refresh.
    Empty,
    /// The untyped escape hatch: any JSON body a typed variant does not
    /// model. Semantically identical to the pre-typed `Value` body.
    Json(Value),
    /// An error body: `{"error": message}`.
    Error {
        /// Human-readable error message.
        message: String,
    },
    /// The 405 body: `{"allow": [...], "error": "method not allowed"}`.
    MethodNotAllowed {
        /// Methods the path does accept (the HTTP `Allow` header,
        /// carried in the body here).
        allow: Vec<Method>,
    },
    /// The 429 admission-control body:
    /// `{"class": ..., "error": "rate limited", "retry_after_s": ...}`.
    RateLimited {
        /// The admission class whose bucket ran dry.
        class: RateClass,
        /// Seconds until the bucket refills — the client's retry hint.
        retry_after_s: u64,
    },

    // ---- request bodies (one per POST route) -----------------------------
    /// `POST /api/v1/registration`.
    Register(RegistrationBody),
    /// `POST /api/v1/places/discover`.
    Discover(DiscoverBody),
    /// `POST /api/v1/places/sync`.
    SyncPlaces(SyncPlacesBody),
    /// `POST /api/v1/places/label`.
    LabelPlace(LabelBody),
    /// `POST /api/v1/routes/sync`.
    SyncRoutes(SyncRoutesBody),
    /// `POST /api/v1/routes/query`.
    RouteQuery(RouteQueryBody),
    /// `POST /api/v1/profiles/sync`.
    SyncProfile(SyncProfileBody),
    /// `POST /api/v1/social/sync`.
    SyncContacts(SyncContactsBody),
    /// `POST /api/v1/social/query`.
    SocialQuery(SocialQueryBody),
    /// `POST /api/v1/misc/geolocate`.
    Geolocate(GeolocateBody),
    /// `POST /api/v1/misc/geolocate_signature`.
    GeolocateSignature(GeolocateSignatureBody),
    /// `POST /api/v1/analytics/arrival`.
    Arrival(ArrivalBody),
    /// `POST /api/v1/analytics/next_visit`.
    NextVisit(NextVisitBody),
    /// `POST /api/v1/analytics/{frequency,next_place}`.
    PlaceOnly(PlaceOnlyBody),
    /// `POST /api/v1/topology/handshake` (the federation control plane).
    Handshake(HandshakeBody),

    // ---- response bodies (one per handler success shape) -----------------
    /// Registration reply.
    Registered {
        /// The registered (or re-registered) user.
        user: UserId,
        /// Fresh bearer token.
        token: String,
        /// Token expiry instant.
        expires_at: SimTime,
    },
    /// Token refresh reply.
    TokenRefreshed {
        /// Rotated bearer token.
        token: String,
        /// New expiry instant.
        expires_at: SimTime,
    },
    /// Discover-offload reply.
    Discovered {
        /// The caller's places after absorbing the offload.
        places: Vec<DiscoveredPlace>,
        /// Server-side observation-stream watermark.
        absorbed_upto: u64,
    },
    /// Place-list reply.
    Places {
        /// The caller's stored places.
        places: Vec<DiscoveredPlace>,
    },
    /// Sync acknowledgement (places and routes).
    SyncAck {
        /// Entries stored after the sync.
        stored: usize,
        /// Whether the delivery was stale (duplicate/reordered) and
        /// therefore not applied.
        stale: bool,
    },
    /// Label reply.
    Labelled {
        /// The place that was labelled.
        labelled: DiscoveredPlaceId,
    },
    /// Route-list / route-query reply.
    Routes {
        /// Canonical routes.
        routes: Vec<CanonicalRoute>,
    },
    /// Profile-sync acknowledgement.
    ProfileSynced {
        /// The day that was upserted.
        synced_day: u64,
        /// Whether the delivery was stale and therefore not applied.
        stale: bool,
    },
    /// By-day profile fetch reply.
    ProfileDay {
        /// The stored profile.
        profile: MobilityProfile,
    },
    /// Contacts-sync acknowledgement.
    ContactsAck {
        /// Encounters stored after the sync.
        stored: usize,
        /// Acknowledged encounter-stream watermark.
        acked_upto: u64,
    },
    /// Social-query reply.
    Contacts {
        /// Matching encounters.
        contacts: Vec<ContactEntry>,
    },
    /// Geolocation reply.
    Position {
        /// Latitude in degrees.
        latitude: f64,
        /// Longitude in degrees.
        longitude: f64,
    },
    /// Arrival-analytics reply.
    ArrivalAt {
        /// Typical arrival second-of-day.
        second_of_day: u64,
    },
    /// Next-visit prediction reply.
    VisitAt {
        /// Predicted visit instant.
        time: SimTime,
    },
    /// Frequency-analytics reply.
    Frequency {
        /// Mean visits per week.
        visits_per_week: f64,
        /// Total visit count.
        visit_count: usize,
    },
    /// Activity-analytics reply.
    Activity {
        /// Mean daily minutes in motion.
        mean_daily_moving_minutes: f64,
    },
    /// Next-place prediction reply.
    Predictions {
        /// `(place, probability)` pairs, most likely first.
        predictions: Vec<(DiscoveredPlaceId, f64)>,
    },
    /// Health-probe reply (`GET /api/v1/health`): liveness plus the
    /// instance's load view — `{"p99_us": .., "queue_depth": ..,
    /// "resident_users": .., "status": "ok"}`. Queue depth and p99 are 0
    /// while the latency model is disabled, keeping the historical body
    /// shape's information content; `resident_users` counts in-memory
    /// user stores (equal to total users unless a residency cap is set).
    Health {
        /// Admitted, unfinished requests queued on the instance.
        queue_depth: u64,
        /// p99 request latency so far, microseconds (bucket bound).
        p99_us: u64,
        /// User stores currently resident in memory.
        resident_users: u64,
    },
    /// Topology-handshake reply: the versioned placement snapshot a
    /// client caches at session start.
    Topology {
        /// Snapshot version; bumped on every placement or health change.
        version: u64,
        /// The instance assigned to the caller.
        assigned: u32,
        /// `(instance id, healthy)` for every registered instance.
        instances: Vec<(u32, bool)>,
    },
}

/// Sorted-key JSON object builder (the `json!` spelling, minus the
/// macro): `BTreeMap` keeps keys sorted, so insertion order is free.
struct Obj(BTreeMap<String, Value>);

impl Obj {
    fn new() -> Obj {
        Obj(BTreeMap::new())
    }

    fn put(mut self, key: &str, value: &impl Serialize) -> Obj {
        self.0.insert(key.to_owned(), value.to_json_value());
        self
    }

    /// Inserts only when `Some` — the historical spelling omits optional
    /// idempotency keys rather than writing `null`.
    fn put_opt(mut self, key: &str, value: &Option<impl Serialize>) -> Obj {
        if let Some(value) = value {
            self.0.insert(key.to_owned(), value.to_json_value());
        }
        self
    }

    fn put_value(mut self, key: &str, value: Value) -> Obj {
        self.0.insert(key.to_owned(), value);
        self
    }

    fn build(self) -> Value {
        Value::Object(self.0)
    }
}

impl Payload {
    /// Renders the payload to its JSON wire spelling — byte-identical to
    /// the `json!` trees the pre-typed code built (see module docs).
    pub fn to_json(&self) -> Value {
        match self {
            Payload::Empty => Value::Null,
            Payload::Json(value) => value.clone(),
            Payload::Error { message } => Obj::new().put("error", message).build(),
            Payload::MethodNotAllowed { allow } => Obj::new()
                .put_value(
                    "allow",
                    Value::Array(
                        allow
                            .iter()
                            .map(|m| Value::String(m.as_str().to_owned()))
                            .collect(),
                    ),
                )
                .put_value("error", Value::String("method not allowed".to_owned()))
                .build(),
            Payload::RateLimited {
                class,
                retry_after_s,
            } => Obj::new()
                .put_value("class", Value::String(class.label().to_owned()))
                .put_value("error", Value::String("rate limited".to_owned()))
                .put("retry_after_s", retry_after_s)
                .build(),

            Payload::Register(b) => Obj::new()
                .put("email", &b.email)
                .put("imei", &b.imei)
                .build(),
            Payload::Discover(b) => {
                // A batched offload never also spells the plain array —
                // the batch is the observation sequence.
                let obj = match &b.batch {
                    Some(batch) => Obj::new().put("batch", batch),
                    None => Obj::new().put("observations", &b.observations),
                };
                obj.put_opt("start", &b.start).build()
            }
            Payload::SyncPlaces(b) => Obj::new()
                .put("places", &b.places)
                .put_opt("seq", &b.seq)
                .build(),
            Payload::LabelPlace(b) => Obj::new()
                .put("label", &b.label)
                .put("place", &b.place)
                .build(),
            Payload::SyncRoutes(b) => Obj::new()
                .put("routes", &b.routes)
                .put_opt("seq", &b.seq)
                .build(),
            Payload::RouteQuery(b) => Obj::new().put("from", &b.from).put("to", &b.to).build(),
            Payload::SyncProfile(b) => Obj::new()
                .put("profile", &b.profile)
                .put_opt("seq", &b.seq)
                .build(),
            Payload::SyncContacts(b) => Obj::new()
                .put("contacts", &b.contacts)
                .put_opt("first_seq", &b.first_seq)
                .build(),
            Payload::SocialQuery(b) => Obj::new().put("place", &b.place).build(),
            Payload::Geolocate(b) => Obj::new()
                .put("cid", &b.cid)
                .put("lac", &b.lac)
                .put("mcc", &b.mcc)
                .put("mnc", &b.mnc)
                .build(),
            Payload::GeolocateSignature(b) => Obj::new().put("cells", &b.cells).build(),
            Payload::Arrival(b) => Obj::new()
                .put("place", &b.place)
                .put_opt("window", &b.window)
                .build(),
            Payload::NextVisit(b) => Obj::new().put("now", &b.now).put("place", &b.place).build(),
            Payload::PlaceOnly(b) => Obj::new().put("place", &b.place).build(),
            Payload::Handshake(b) => Obj::new()
                .put("email", &b.email)
                .put("imei", &b.imei)
                .build(),

            Payload::Registered {
                user,
                token,
                expires_at,
            } => Obj::new()
                .put("expires_at", expires_at)
                .put("token", token)
                .put("user", user)
                .build(),
            Payload::TokenRefreshed { token, expires_at } => Obj::new()
                .put("expires_at", expires_at)
                .put("token", token)
                .build(),
            Payload::Discovered {
                places,
                absorbed_upto,
            } => Obj::new()
                .put("absorbed_upto", absorbed_upto)
                .put("places", places)
                .build(),
            Payload::Places { places } => Obj::new().put("places", places).build(),
            Payload::SyncAck { stored, stale } => {
                Obj::new().put("stale", stale).put("stored", stored).build()
            }
            Payload::Labelled { labelled } => Obj::new().put("labelled", labelled).build(),
            Payload::Routes { routes } => Obj::new().put("routes", routes).build(),
            Payload::ProfileSynced { synced_day, stale } => Obj::new()
                .put("stale", stale)
                .put("synced_day", synced_day)
                .build(),
            Payload::ProfileDay { profile } => Obj::new().put("profile", profile).build(),
            Payload::ContactsAck { stored, acked_upto } => Obj::new()
                .put("acked_upto", acked_upto)
                .put("stored", stored)
                .build(),
            Payload::Contacts { contacts } => Obj::new().put("contacts", contacts).build(),
            Payload::Position {
                latitude,
                longitude,
            } => Obj::new()
                .put("latitude", latitude)
                .put("longitude", longitude)
                .build(),
            Payload::ArrivalAt { second_of_day } => {
                Obj::new().put("second_of_day", second_of_day).build()
            }
            Payload::VisitAt { time } => Obj::new().put("time", time).build(),
            Payload::Frequency {
                visits_per_week,
                visit_count,
            } => Obj::new()
                .put("visit_count", visit_count)
                .put("visits_per_week", visits_per_week)
                .build(),
            Payload::Activity {
                mean_daily_moving_minutes,
            } => Obj::new()
                .put("mean_daily_moving_minutes", mean_daily_moving_minutes)
                .build(),
            Payload::Predictions { predictions } => {
                Obj::new().put("predictions", predictions).build()
            }
            Payload::Health {
                queue_depth,
                p99_us,
                resident_users,
            } => Obj::new()
                .put("p99_us", p99_us)
                .put("queue_depth", queue_depth)
                .put("resident_users", resident_users)
                .put_value("status", Value::String("ok".to_owned()))
                .build(),
            Payload::Topology {
                version,
                assigned,
                instances,
            } => Obj::new()
                .put("assigned", assigned)
                .put("instances", instances)
                .put("version", version)
                .build(),
        }
    }

    /// Like [`Payload::to_json`] but consumes the payload, so the
    /// untyped escape hatch hands its `Value` back without a clone.
    pub fn into_json(self) -> Value {
        match self {
            Payload::Json(value) => value,
            other => other.to_json(),
        }
    }

    /// Reconstructs the typed payload for a JSON body arriving at the
    /// wire boundary, resolving `(method, path)` against the route table.
    ///
    /// Commits to a typed variant **only** when re-rendering it
    /// reproduces `body` exactly (the byte-identity guard); any
    /// mismatch — unknown path, extra keys, `null`-spelled options —
    /// stays [`Payload::Json`], preserving old behaviour bit for bit.
    pub fn from_json(method: Method, path: &str, body: &Value) -> Payload {
        if body.is_null() {
            return Payload::Empty;
        }
        // The topology handshake is the one request shape served outside
        // the route table (the router's control plane), so it gets its
        // own decode attempt — under the same byte-identity guard.
        if method == Method::Post && path == TOPOLOGY_HANDSHAKE_PATH {
            if let Some(typed) = decode::<HandshakeBody>(body) {
                if typed.to_json() == *body {
                    return typed;
                }
            }
        }
        if let Resolution::Matched { route, .. } = resolve(method, path) {
            if let Some(typed) = (route.decode)(body) {
                if typed.to_json() == *body {
                    return typed;
                }
            }
        }
        Payload::Json(body.clone())
    }

    /// Deserialises the payload into a typed value.
    ///
    /// The untyped escape hatch parses **by reference** (no body clone —
    /// the old `from_value(body.clone())` tax is gone); typed variants
    /// render to JSON first, a cost only paid when a caller asks a typed
    /// body for a shape it is not (the wire boundary's job, not the hot
    /// path's).
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` when the body does not match `T`.
    pub fn parse<T: serde::de::DeserializeOwned>(&self) -> Result<T, serde_json::Error> {
        let rendered;
        let value = match self {
            Payload::Json(value) => value,
            other => {
                rendered = other.to_json();
                &rendered
            }
        };
        T::from_json_value(value).map_err(serde_json::Error::from)
    }

    /// The error message of an error-shaped body, if any.
    pub fn error_message(&self) -> Option<&str> {
        match self {
            Payload::Error { message } => Some(message),
            Payload::MethodNotAllowed { .. } => Some("method not allowed"),
            Payload::RateLimited { .. } => Some("rate limited"),
            Payload::Json(value) => value.get("error").and_then(Value::as_str),
            _ => None,
        }
    }

    /// The admission controller's `retry_after_s` hint, if present.
    pub fn retry_after_s(&self) -> Option<u64> {
        match self {
            Payload::RateLimited { retry_after_s, .. } => Some(*retry_after_s),
            Payload::Json(value) => value.get("retry_after_s").and_then(Value::as_u64),
            _ => None,
        }
    }
}

/// Payload equality is **wire equality**: a typed variant equals the
/// `Json` spelling of the same body, because both serialize to the same
/// bytes. Object keys are sorted, so the comparison is canonical.
impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        match (self, other) {
            (Payload::Empty, Payload::Empty) => true,
            (Payload::Json(a), Payload::Json(b)) => a == b,
            (a, b) => a.to_json() == b.to_json(),
        }
    }
}

impl From<Value> for Payload {
    fn from(value: Value) -> Payload {
        if value.is_null() {
            Payload::Empty
        } else {
            Payload::Json(value)
        }
    }
}

/// A typed request body: extractable by reference from the payload the
/// router hands a handler (the zero-copy path), and parseable from the
/// JSON escape hatch (the boundary path).
pub(crate) trait RequestBody: serde::de::DeserializeOwned {
    /// Borrows the body when the payload already carries this type.
    fn from_payload(payload: &Payload) -> Option<&Self>;
}

macro_rules! request_bodies {
    ($($body:ident => $variant:ident,)*) => {$(
        impl From<$body> for Payload {
            fn from(body: $body) -> Payload {
                Payload::$variant(body)
            }
        }

        impl RequestBody for $body {
            fn from_payload(payload: &Payload) -> Option<&$body> {
                match payload {
                    Payload::$variant(body) => Some(body),
                    _ => None,
                }
            }
        }
    )*};
}

request_bodies! {
    RegistrationBody => Register,
    DiscoverBody => Discover,
    SyncPlacesBody => SyncPlaces,
    LabelBody => LabelPlace,
    SyncRoutesBody => SyncRoutes,
    RouteQueryBody => RouteQuery,
    SyncProfileBody => SyncProfile,
    SyncContactsBody => SyncContacts,
    SocialQueryBody => SocialQuery,
    GeolocateBody => Geolocate,
    GeolocateSignatureBody => GeolocateSignature,
    ArrivalBody => Arrival,
    NextVisitBody => NextVisit,
    PlaceOnlyBody => PlaceOnly,
    HandshakeBody => Handshake,
}

/// A route's body decoder: tries the route's typed request shape.
/// Stored in the route table so dispatch stays single-source-of-truth.
pub(crate) type BodyDecoder = fn(&Value) -> Option<Payload>;

/// Decodes `value` as `B` (the route's typed body). The byte-identity
/// guard in [`Payload::from_json`] decides whether the result sticks.
pub(crate) fn decode<B: RequestBody + Into<Payload>>(value: &Value) -> Option<Payload> {
    B::from_json_value(value).ok().map(Into::into)
}

/// Decoder for routes without a typed request body (GETs, the token
/// refresh): any non-null body stays on the JSON escape hatch.
pub(crate) fn decode_none(_value: &Value) -> Option<Payload> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn option_keys_are_omitted_not_null() {
        let with = Payload::SyncPlaces(SyncPlacesBody {
            places: vec![],
            seq: Some(7),
        });
        assert_eq!(with.to_json(), json!({ "places": [], "seq": 7 }));
        let without = Payload::SyncPlaces(SyncPlacesBody {
            places: vec![],
            seq: None,
        });
        assert_eq!(without.to_json(), json!({ "places": [] }));
    }

    #[test]
    fn social_query_place_key_is_always_present() {
        let none = Payload::SocialQuery(SocialQueryBody { place: None });
        assert_eq!(none.to_json(), json!({ "place": null }));
    }

    #[test]
    fn from_json_reconstructs_route_bodies() {
        let body = json!({ "places": [], "seq": 3 });
        let payload = Payload::from_json(Method::Post, "/api/v1/places/sync", &body);
        match &payload {
            Payload::SyncPlaces(b) => {
                assert!(b.places.is_empty());
                assert_eq!(b.seq, Some(3));
            }
            other => panic!("expected typed reconstruction, got {other:?}"),
        }
        assert_eq!(payload.to_json(), body, "round-trip is byte-identical");
    }

    #[test]
    fn from_json_falls_back_on_unknown_paths_and_extra_keys() {
        let body = json!({ "places": [], "seq": 3, "junk": true });
        let payload = Payload::from_json(Method::Post, "/api/v1/places/sync", &body);
        assert!(
            matches!(payload, Payload::Json(_)),
            "extra keys must not survive a typed round-trip"
        );
        assert_eq!(payload.to_json(), body);

        let body = json!({ "anything": 1 });
        let payload = Payload::from_json(Method::Post, "/api/v1/nope", &body);
        assert!(matches!(payload, Payload::Json(_)));
    }

    #[test]
    fn null_spelled_options_stay_on_the_escape_hatch() {
        // `{"seq": null}` parses to `seq: None`, which re-renders with
        // the key omitted — not byte-identical, so the guard rejects it.
        let body = json!({ "places": [], "seq": null });
        let payload = Payload::from_json(Method::Post, "/api/v1/places/sync", &body);
        assert!(matches!(payload, Payload::Json(_)));
        assert_eq!(payload.to_json(), body);
    }

    #[test]
    fn typed_and_json_spellings_are_equal() {
        let typed = Payload::PlaceOnly(PlaceOnlyBody {
            place: DiscoveredPlaceId(4),
        });
        let json = Payload::Json(json!({ "place": 4 }));
        assert_eq!(typed, json);
        assert_eq!(json, typed);
        assert_ne!(typed, Payload::Empty);
    }

    #[test]
    fn error_shapes_match_the_historical_spelling() {
        let e = Payload::Error {
            message: "token expired".to_owned(),
        };
        assert_eq!(e.to_json(), json!({ "error": "token expired" }));
        assert_eq!(e.error_message(), Some("token expired"));

        let m = Payload::MethodNotAllowed {
            allow: vec![Method::Get, Method::Post],
        };
        assert_eq!(
            m.to_json(),
            json!({ "error": "method not allowed", "allow": ["GET", "POST"] })
        );

        let r = Payload::RateLimited {
            class: RateClass::Ingest,
            retry_after_s: 12,
        };
        assert_eq!(
            r.to_json(),
            json!({ "error": "rate limited", "class": "ingest", "retry_after_s": 12 })
        );
        assert_eq!(r.retry_after_s(), Some(12));
    }

    #[test]
    fn topology_payloads_pin_their_wire_spelling() {
        let handshake = Payload::Handshake(HandshakeBody {
            imei: "350".to_owned(),
            email: "a@x".to_owned(),
        });
        let wire = json!({ "email": "a@x", "imei": "350" });
        assert_eq!(handshake.to_json(), wire);
        // The handshake path is off the route table yet still
        // reconstructs typed at the wire boundary.
        let back = Payload::from_json(Method::Post, TOPOLOGY_HANDSHAKE_PATH, &wire);
        assert!(matches!(back, Payload::Handshake(_)), "{back:?}");
        assert_eq!(back.to_json(), wire);

        let health = Payload::Health {
            queue_depth: 4,
            p99_us: 2_500,
            resident_users: 7,
        };
        assert_eq!(
            health.to_json(),
            json!({ "p99_us": 2500, "queue_depth": 4, "resident_users": 7, "status": "ok" })
        );
        let topo = Payload::Topology {
            version: 3,
            assigned: 1,
            instances: vec![(0, true), (1, false)],
        };
        assert_eq!(
            topo.to_json(),
            json!({ "assigned": 1, "instances": [[0, true], [1, false]], "version": 3 })
        );
    }

    #[test]
    fn parse_is_by_reference_for_json_and_renders_for_typed() {
        #[derive(Deserialize)]
        struct P {
            place: u32,
        }
        let json = Payload::Json(json!({ "place": 9 }));
        assert_eq!(json.parse::<P>().unwrap().place, 9);
        let typed = Payload::PlaceOnly(PlaceOnlyBody {
            place: DiscoveredPlaceId(9),
        });
        assert_eq!(typed.parse::<P>().unwrap().place, 9);
        assert!(Payload::Empty.parse::<P>().is_err());
    }
}
