//! The PMWare mobility representation (§2.1.3).
//!
//! *"Mobility Profile is a spatio-temporal representation of user's
//! mobility \[…\] It consists of visited places information along with
//! their respective arrival and departure information, routes information
//! with their start and end time, and social contacts with the encounter
//! start and end time during place visits. In PMWare, a day-specific
//! mobility profile is stored."*
//!
//! `M_X = (P_1,a_1,d_1)… and (R_1,s_1,e_1)… and (H_1,s_1,e_1)…`

use pmware_algorithms::route::RouteId;
use pmware_algorithms::signature::DiscoveredPlaceId;
use pmware_world::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// `(P_i, a_i, d_i)`: a place visit in the profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlaceEntry {
    /// The discovered place.
    pub place: DiscoveredPlaceId,
    /// Arrival time.
    pub arrival: SimTime,
    /// Departure time.
    pub departure: SimTime,
}

/// `(R_i, s_i, e_i)`: a route traversal in the profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// The canonical route.
    pub route: RouteId,
    /// Traversal start.
    pub start: SimTime,
    /// Traversal end.
    pub end: SimTime,
}

/// `(H_i, s_i, e_i)`: a social encounter in the profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContactEntry {
    /// Opaque identifier of the encountered contact (e.g. a hashed
    /// Bluetooth address).
    pub contact: String,
    /// Encounter start.
    pub start: SimTime,
    /// Encounter end.
    pub end: SimTime,
    /// Place at which the encounter happened, when known.
    pub place: Option<DiscoveredPlaceId>,
}

/// Daily activity summary from the accelerometer-based detector — the
/// "activity tracking" contextual extension the paper's §6 plans
/// ("we intend to extend the capabilities of PMWare by integrating other
/// contextual information such as activity tracking").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ActivitySummary {
    /// Seconds classified as moving.
    pub moving_seconds: u64,
    /// Seconds classified as stationary.
    pub stationary_seconds: u64,
}

impl ActivitySummary {
    /// Fraction of classified time spent moving (0 with no data).
    pub fn moving_fraction(&self) -> f64 {
        let total = self.moving_seconds + self.stationary_seconds;
        if total == 0 {
            0.0
        } else {
            self.moving_seconds as f64 / total as f64
        }
    }
}

/// A day-specific mobility profile.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MobilityProfile {
    /// Day index since the simulation epoch.
    pub day: u64,
    /// Place visits, in time order.
    pub places: Vec<PlaceEntry>,
    /// Route traversals, in time order.
    pub routes: Vec<RouteEntry>,
    /// Social encounters, in time order.
    pub contacts: Vec<ContactEntry>,
    /// Daily activity summary (§6 extension).
    #[serde(default)]
    pub activity: ActivitySummary,
}

impl MobilityProfile {
    /// An empty profile for a day.
    pub fn new(day: u64) -> Self {
        MobilityProfile {
            day,
            ..Default::default()
        }
    }

    /// Total time spent at places this day.
    pub fn total_place_time(&self) -> SimDuration {
        self.places
            .iter()
            .map(|p| p.departure.since(p.arrival))
            .sum()
    }

    /// Total time spent travelling this day.
    pub fn total_route_time(&self) -> SimDuration {
        self.routes.iter().map(|r| r.end.since(r.start)).sum()
    }

    /// Distinct places visited this day.
    pub fn distinct_places(&self) -> Vec<DiscoveredPlaceId> {
        let mut out: Vec<DiscoveredPlaceId> = self.places.iter().map(|p| p.place).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The paper's motivating statistic: fraction of accounted time spent
    /// *in places* (mobile users spend 80–90 % of their time in places).
    pub fn place_time_fraction(&self) -> f64 {
        let place = self.total_place_time().as_seconds() as f64;
        let route = self.total_route_time().as_seconds() as f64;
        if place + route == 0.0 {
            0.0
        } else {
            place / (place + route)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(min: u64) -> SimTime {
        SimTime::from_seconds(min * 60)
    }

    fn profile() -> MobilityProfile {
        MobilityProfile {
            day: 0,
            places: vec![
                PlaceEntry {
                    place: DiscoveredPlaceId(0),
                    arrival: t(0),
                    departure: t(500),
                },
                PlaceEntry {
                    place: DiscoveredPlaceId(1),
                    arrival: t(540),
                    departure: t(1_000),
                },
                PlaceEntry {
                    place: DiscoveredPlaceId(0),
                    arrival: t(1_040),
                    departure: t(1_440),
                },
            ],
            routes: vec![
                RouteEntry {
                    route: RouteId(0),
                    start: t(500),
                    end: t(540),
                },
                RouteEntry {
                    route: RouteId(1),
                    start: t(1_000),
                    end: t(1_040),
                },
            ],
            contacts: vec![ContactEntry {
                contact: "peer-7".into(),
                start: t(600),
                end: t(700),
                place: Some(DiscoveredPlaceId(1)),
            }],
            activity: ActivitySummary {
                moving_seconds: 80 * 60,
                stationary_seconds: 1_360 * 60,
            },
        }
    }

    #[test]
    fn time_accounting() {
        let p = profile();
        assert_eq!(p.total_place_time(), SimDuration::from_minutes(1_360));
        assert_eq!(p.total_route_time(), SimDuration::from_minutes(80));
        // 1360/1440 ≈ 94% in places — consistent with the 80–90%+ claim.
        assert!((p.place_time_fraction() - 1_360.0 / 1_440.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_places_dedup() {
        let p = profile();
        assert_eq!(
            p.distinct_places(),
            vec![DiscoveredPlaceId(0), DiscoveredPlaceId(1)]
        );
    }

    #[test]
    fn empty_profile() {
        let p = MobilityProfile::new(3);
        assert_eq!(p.day, 3);
        assert_eq!(p.place_time_fraction(), 0.0);
        assert!(p.distinct_places().is_empty());
    }

    #[test]
    fn activity_moving_fraction() {
        let p = profile();
        assert!((p.activity.moving_fraction() - 80.0 / 1_440.0).abs() < 1e-12);
        assert_eq!(ActivitySummary::default().moving_fraction(), 0.0);
    }

    #[test]
    fn old_profiles_without_activity_deserialize() {
        // Profiles synced before the §6 extension lack the field.
        let json = r#"{"day":2,"places":[],"routes":[],"contacts":[]}"#;
        let p: MobilityProfile = serde_json::from_str(json).unwrap();
        assert_eq!(p.activity, ActivitySummary::default());
    }

    #[test]
    fn serde_round_trip() {
        let p = profile();
        let json = serde_json::to_string(&p).unwrap();
        let back: MobilityProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
