//! Deterministic per-user token-bucket admission control.
//!
//! The paper's Azure deployment served every request it received and
//! simply fell over under load; a production-scale service for millions
//! of users must be able to *shed* load instead. This module is the
//! server-side half of that: each (user, [`RateClass`]) pair owns a token
//! bucket with a per-class budget, refilled in **simulated time** — so an
//! admission decision is a pure function of the request stream and the
//! seed, and a run replays bit-identically (the same guarantee the fault
//! injector and the retry backoff already give).
//!
//! A denied request costs the server almost nothing: admission sits
//! *before* auth in the middleware stack, so a 429 is computed from one
//! token-map read and one bucket update — no token refresh work, no user
//! store locks, and no "your token expired" answers that would push an
//! over-budget client into an even more expensive re-registration storm.
//! The 429 body carries `retry_after_s`, the exact simulated delay until
//! the bucket next holds a token, which the client uses to schedule its
//! retry instead of guessing with blind exponential backoff.
//!
//! Buckets are integer-arithmetic only (a token every `refill` interval,
//! capacity `burst`), and each bucket's refill phase is staggered by a
//! seeded hash of the user and class so whole cohorts do not refill — and
//! then stampede — in lockstep. Disabled (the default) the controller is
//! one relaxed atomic load per request.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;
use pmware_world::{SimDuration, SimTime};

use crate::api::Response;
use crate::auth::UserId;
use crate::router::RateClass;

/// Synthetic status for an admission-control denial. Retryable — the
/// response body's `retry_after_s` says exactly when.
pub const STATUS_RATE_LIMITED: u16 = 429;

/// Budget of one rate class: a bucket holds at most `burst` tokens and
/// gains one every `refill`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateBudget {
    /// Maximum tokens a bucket can hold (burst capacity).
    pub burst: u32,
    /// Interval per regained token.
    pub refill: SimDuration,
}

impl RateBudget {
    /// A budget of `burst` tokens refilling one per `refill`.
    pub fn new(burst: u32, refill: SimDuration) -> RateBudget {
        assert!(burst > 0, "a rate budget needs at least one token of burst");
        assert!(
            refill.as_seconds() > 0,
            "a rate budget needs a non-zero refill interval"
        );
        RateBudget { burst, refill }
    }
}

/// Admission-control configuration: a seed (for refill-phase staggering)
/// plus an optional [`RateBudget`] per [`RateClass`]. `None` means the
/// class is not limited.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Seed for the deterministic per-bucket refill phase stagger.
    pub seed: u64,
    /// Budget for [`RateClass::Auth`] (registration, token refresh).
    pub auth: Option<RateBudget>,
    /// Budget for [`RateClass::Ingest`] (offloads, syncs).
    pub ingest: Option<RateBudget>,
    /// Budget for [`RateClass::Query`] (lists, fetches, geolocation).
    pub query: Option<RateBudget>,
    /// Budget for [`RateClass::Analytics`] (prediction queries).
    pub analytics: Option<RateBudget>,
}

impl AdmissionConfig {
    /// A config with no class limited (admission enabled but vacuous).
    pub fn unlimited(seed: u64) -> AdmissionConfig {
        AdmissionConfig {
            seed,
            auth: None,
            ingest: None,
            query: None,
            analytics: None,
        }
    }

    /// The same budget for every class.
    pub fn uniform(seed: u64, budget: RateBudget) -> AdmissionConfig {
        AdmissionConfig {
            seed,
            auth: Some(budget),
            ingest: Some(budget),
            query: Some(budget),
            analytics: Some(budget),
        }
    }

    /// Sets one class's budget.
    pub fn with_class(mut self, class: RateClass, budget: RateBudget) -> AdmissionConfig {
        *self.slot(class) = Some(budget);
        self
    }

    fn slot(&mut self, class: RateClass) -> &mut Option<RateBudget> {
        match class {
            RateClass::Auth => &mut self.auth,
            RateClass::Ingest => &mut self.ingest,
            RateClass::Query => &mut self.query,
            RateClass::Analytics => &mut self.analytics,
        }
    }

    /// The budget for a class, if limited.
    pub fn budget(&self, class: RateClass) -> Option<RateBudget> {
        match class {
            RateClass::Auth => self.auth,
            RateClass::Ingest => self.ingest,
            RateClass::Query => self.query,
            RateClass::Analytics => self.analytics,
        }
    }
}

/// One token bucket. `level` tokens are available now; when not full, the
/// next token lands at `refill_at`.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    level: u32,
    /// Instant the next token is added (meaningful only when
    /// `level < burst`).
    refill_at: SimTime,
}

/// The admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Request may proceed (or the controller is disabled / the class is
    /// unlimited).
    Admit,
    /// Request is shed; a token becomes available in `retry_after`.
    Deny {
        /// Simulated delay until the bucket next holds a token.
        retry_after: SimDuration,
    },
}

#[derive(Debug)]
struct AdmissionState {
    config: AdmissionConfig,
    buckets: HashMap<(UserId, RateClass), Bucket>,
}

/// Deterministic admission controller. Disabled by default; enabling it
/// installs an [`AdmissionConfig`] and resets all buckets.
#[derive(Debug)]
pub struct AdmissionControl {
    enabled: AtomicBool,
    state: Mutex<AdmissionState>,
}

impl Default for AdmissionControl {
    fn default() -> Self {
        AdmissionControl {
            enabled: AtomicBool::new(false),
            state: Mutex::new(AdmissionState {
                config: AdmissionConfig::unlimited(0),
                buckets: HashMap::new(),
            }),
        }
    }
}

/// FNV-flavored stagger hash: the initial refill phase of a bucket,
/// deterministic in (seed, user, class).
fn phase(seed: u64, user: UserId, class: RateClass) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    h = (h ^ u64::from(user.0)).wrapping_mul(0x0000_0100_0000_01b3);
    h = (h ^ class.label().len() as u64 ^ u64::from(class.label().as_bytes()[0]))
        .wrapping_mul(0x0000_0100_0000_01b3);
    h ^= h >> 33;
    h
}

impl AdmissionControl {
    /// Installs `config` and enables admission control. All buckets start
    /// full (a client's first burst is never shed).
    pub fn enable(&self, config: AdmissionConfig) {
        let mut state = self.state.lock();
        state.buckets.clear();
        state.config = config;
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Disables admission control (buckets are dropped).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::SeqCst);
        self.state.lock().buckets.clear();
    }

    /// Whether the controller is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Decides one request for `user` in `class` at simulated instant
    /// `now`, consuming a token when admitted.
    pub fn admit(&self, user: UserId, class: RateClass, now: SimTime) -> Admission {
        if !self.is_enabled() {
            return Admission::Admit;
        }
        let mut state = self.state.lock();
        let Some(budget) = state.config.budget(class) else {
            return Admission::Admit;
        };
        let seed = state.config.seed;
        let bucket = state.buckets.entry((user, class)).or_insert_with(|| {
            // Full bucket; the first refill after the burst drains is
            // staggered by the seeded phase so cohorts don't sync up.
            let stagger = phase(seed, user, class) % budget.refill.as_seconds();
            Bucket {
                level: budget.burst,
                refill_at: now + SimDuration::from_seconds(stagger),
            }
        });
        // Credit refills that have matured. Client retry clocks can run
        // ahead of the next tick's wall of simulated time, so `now` is
        // not guaranteed monotonic per bucket — earlier instants simply
        // earn no credit.
        if bucket.level < budget.burst && now >= bucket.refill_at {
            let elapsed = now.since(bucket.refill_at).as_seconds();
            let earned = 1 + elapsed / budget.refill.as_seconds();
            let earned = earned.min(u64::from(budget.burst - bucket.level)) as u32;
            bucket.level += earned;
            bucket.refill_at +=
                SimDuration::from_seconds(u64::from(earned) * budget.refill.as_seconds());
        }
        if bucket.level > 0 {
            if bucket.level == budget.burst {
                // Taking the first token from a full bucket starts the
                // refill clock fresh (plus the seeded stagger kept from
                // creation is only used for the very first drain).
                bucket.refill_at = now + budget.refill;
            }
            bucket.level -= 1;
            Admission::Admit
        } else {
            let retry_after = if bucket.refill_at > now {
                bucket.refill_at.since(now)
            } else {
                // Matured but capped by burst arithmetic above — a token
                // is due immediately; tell the client to come right back.
                SimDuration::from_seconds(1)
            };
            Admission::Deny { retry_after }
        }
    }

    /// The 429 response for a denial.
    pub(crate) fn deny_response(class: RateClass, retry_after: SimDuration) -> Response {
        Response::with_status(
            STATUS_RATE_LIMITED,
            crate::payload::Payload::RateLimited {
                class,
                retry_after_s: retry_after.as_seconds(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(burst: u32, refill_s: u64) -> RateBudget {
        RateBudget::new(burst, SimDuration::from_seconds(refill_s))
    }

    #[test]
    fn disabled_admits_everything() {
        let ac = AdmissionControl::default();
        for i in 0..100 {
            assert_eq!(
                ac.admit(UserId(0), RateClass::Ingest, SimTime::from_seconds(i)),
                Admission::Admit
            );
        }
    }

    #[test]
    fn burst_then_deny_then_refill() {
        let ac = AdmissionControl::default();
        ac.enable(AdmissionConfig::uniform(7, budget(2, 60)));
        let t0 = SimTime::from_seconds(0);
        assert_eq!(ac.admit(UserId(0), RateClass::Ingest, t0), Admission::Admit);
        assert_eq!(ac.admit(UserId(0), RateClass::Ingest, t0), Admission::Admit);
        let denied = ac.admit(UserId(0), RateClass::Ingest, t0);
        let Admission::Deny { retry_after } = denied else {
            panic!("burst exhausted must deny, got {denied:?}");
        };
        assert_eq!(
            retry_after.as_seconds(),
            60,
            "token due one refill after first take"
        );
        // Exactly at the hinted instant, the request is admitted.
        let t1 = t0 + retry_after;
        assert_eq!(ac.admit(UserId(0), RateClass::Ingest, t1), Admission::Admit);
        // ...and the bucket is empty again right after.
        assert!(matches!(
            ac.admit(UserId(0), RateClass::Ingest, t1),
            Admission::Deny { .. }
        ));
    }

    #[test]
    fn unlimited_class_is_never_denied() {
        let ac = AdmissionControl::default();
        ac.enable(AdmissionConfig::unlimited(1).with_class(RateClass::Ingest, budget(1, 60)));
        let t = SimTime::EPOCH;
        for _ in 0..10 {
            assert_eq!(ac.admit(UserId(0), RateClass::Query, t), Admission::Admit);
        }
        assert_eq!(ac.admit(UserId(0), RateClass::Ingest, t), Admission::Admit);
        assert!(matches!(
            ac.admit(UserId(0), RateClass::Ingest, t),
            Admission::Deny { .. }
        ));
    }

    #[test]
    fn users_and_classes_have_independent_buckets() {
        let ac = AdmissionControl::default();
        ac.enable(AdmissionConfig::uniform(3, budget(1, 60)));
        let t = SimTime::EPOCH;
        assert_eq!(ac.admit(UserId(0), RateClass::Ingest, t), Admission::Admit);
        assert!(matches!(
            ac.admit(UserId(0), RateClass::Ingest, t),
            Admission::Deny { .. }
        ));
        // Another user and another class are untouched.
        assert_eq!(ac.admit(UserId(1), RateClass::Ingest, t), Admission::Admit);
        assert_eq!(ac.admit(UserId(0), RateClass::Query, t), Admission::Admit);
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed: u64| -> Vec<bool> {
            let ac = AdmissionControl::default();
            ac.enable(AdmissionConfig::uniform(seed, budget(2, 45)));
            (0..60)
                .map(|i| {
                    let t = SimTime::from_seconds(i * 10);
                    ac.admit(UserId(i as u32 % 3), RateClass::Ingest, t) == Admission::Admit
                })
                .collect()
        };
        assert_eq!(run(5), run(5), "same seed must replay identically");
    }

    #[test]
    fn non_monotonic_time_earns_no_credit() {
        let ac = AdmissionControl::default();
        ac.enable(AdmissionConfig::uniform(2, budget(1, 60)));
        let t = SimTime::from_seconds(1_000);
        assert_eq!(ac.admit(UserId(0), RateClass::Ingest, t), Admission::Admit);
        // An earlier instant (a stale retry clock) must not mint tokens
        // or panic on negative elapsed time.
        let earlier = SimTime::from_seconds(10);
        assert!(matches!(
            ac.admit(UserId(0), RateClass::Ingest, earlier),
            Admission::Deny { .. }
        ));
    }

    /// Sweeps a jittery, partially reordered request schedule over two
    /// users and asserts no denial ever hints `retry_after_s == 0` — a
    /// zero hint would tell the client to retry at the same instant and
    /// busy-spin, so the boundary must always resolve to admit-now or a
    /// hint of at least one second.
    #[test]
    fn hints_are_never_zero_under_any_schedule() {
        let ac = AdmissionControl::default();
        ac.enable(AdmissionConfig::uniform(11, budget(3, 17)));
        let mut denies = 0;
        for i in 0..500u64 {
            // Every fifth step replays a stale clock 40 steps behind.
            let step = if i % 5 == 3 { i.saturating_sub(40) } else { i };
            let t = SimTime::from_seconds(step * 3);
            if let Admission::Deny { retry_after } =
                ac.admit(UserId((i % 2) as u32), RateClass::Query, t)
            {
                denies += 1;
                assert!(retry_after.as_seconds() >= 1, "zero hint at step {i}");
            }
        }
        assert!(denies > 0, "schedule never outpaced the budget");
    }

    #[test]
    fn disable_resets_buckets() {
        let ac = AdmissionControl::default();
        ac.enable(AdmissionConfig::uniform(1, budget(1, 60)));
        let t = SimTime::EPOCH;
        assert_eq!(ac.admit(UserId(0), RateClass::Ingest, t), Admission::Admit);
        assert!(matches!(
            ac.admit(UserId(0), RateClass::Ingest, t),
            Admission::Deny { .. }
        ));
        ac.disable();
        assert_eq!(ac.admit(UserId(0), RateClass::Ingest, t), Admission::Admit);
        ac.enable(AdmissionConfig::uniform(1, budget(1, 60)));
        assert_eq!(
            ac.admit(UserId(0), RateClass::Ingest, t),
            Admission::Admit,
            "fresh bucket"
        );
    }
}
