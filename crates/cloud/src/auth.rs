//! Registration and token authentication (§2.2.1 / §2.3.3).
//!
//! *"The device is uniquely identified jointly by its IMEI number and phone
//! email account. It sends a one time registration request to the cloud
//! instance to retrieve an authentication token, which is used for further
//! communication. The authentication token is refreshed periodically based
//! on its expiry time."*

use std::collections::HashMap;

use pmware_world::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A registered user/device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct UserId(pub u32);

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "user:{}", self.0)
    }
}

/// The joint device identity used at registration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceIdentity {
    /// Phone IMEI.
    pub imei: String,
    /// Account email.
    pub email: String,
}

/// An issued bearer token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuthToken {
    /// The opaque token string.
    pub token: String,
    /// Expiry instant.
    pub expires_at: SimTime,
}

/// Server-side token registry.
#[derive(Debug, Clone, Default)]
pub struct TokenStore {
    by_identity: HashMap<DeviceIdentity, UserId>,
    tokens: HashMap<String, (UserId, SimTime)>,
    next_user: u32,
    ttl: SimDuration,
}

impl TokenStore {
    /// Creates a store with the given token time-to-live.
    pub fn new(ttl: SimDuration) -> Self {
        TokenStore {
            by_identity: HashMap::new(),
            tokens: HashMap::new(),
            next_user: 0,
            ttl,
        }
    }

    /// Token time-to-live.
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.by_identity.len()
    }

    /// Registers a device (idempotent per identity) and issues a fresh
    /// token valid for the TTL.
    pub fn register<R: Rng + ?Sized>(
        &mut self,
        identity: DeviceIdentity,
        now: SimTime,
        rng: &mut R,
    ) -> (UserId, AuthToken) {
        let user = *self.by_identity.entry(identity).or_insert_with(|| {
            let id = UserId(self.next_user);
            self.next_user += 1;
            id
        });
        let token = self.issue(user, now, rng);
        (user, token)
    }

    /// Issues a new token for an already-registered user.
    pub fn issue<R: Rng + ?Sized>(&mut self, user: UserId, now: SimTime, rng: &mut R) -> AuthToken {
        let token = format!("tok-{:016x}{:016x}", rng.gen::<u64>(), rng.gen::<u64>());
        let expires_at = now + self.ttl;
        self.tokens.insert(token.clone(), (user, expires_at));
        AuthToken { token, expires_at }
    }

    /// Validates a bearer token at `now`, returning the user it belongs to.
    /// Expired and unknown tokens are rejected.
    pub fn validate(&self, token: &str, now: SimTime) -> Option<UserId> {
        let (user, expires_at) = self.tokens.get(token)?;
        (now < *expires_at).then_some(*user)
    }

    /// Exchanges a still-valid token for a fresh one (the periodic refresh
    /// of §2.2.1). Returns `None` if the old token is invalid or expired.
    pub fn refresh<R: Rng + ?Sized>(
        &mut self,
        token: &str,
        now: SimTime,
        rng: &mut R,
    ) -> Option<AuthToken> {
        let user = self.validate(token, now)?;
        self.tokens.remove(token);
        Some(self.issue(user, now, rng))
    }

    /// Drops expired tokens (housekeeping).
    pub fn purge_expired(&mut self, now: SimTime) {
        self.tokens.retain(|_, (_, exp)| now < *exp);
    }

    /// The user registered under `identity`, if any. Federation migration
    /// uses this to find the user a replayed WAL registered on the target
    /// instance before transplanting the client's live session onto it.
    pub fn user_of(&self, identity: &DeviceIdentity) -> Option<UserId> {
        self.by_identity.get(identity).copied()
    }

    /// Grafts an externally-issued token string onto `user`. Federation
    /// session adoption: after a failover migrates a user's state here,
    /// the token the client is *already holding* must keep validating on
    /// this instance — the client never learns its instance changed.
    pub fn adopt(&mut self, user: UserId, token: &str, expires_at: SimTime) {
        self.tokens.insert(token.to_owned(), (user, expires_at));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn store() -> (TokenStore, StdRng) {
        (
            TokenStore::new(SimDuration::from_hours(24)),
            StdRng::seed_from_u64(1),
        )
    }

    fn identity(n: u32) -> DeviceIdentity {
        DeviceIdentity {
            imei: format!("imei-{n}"),
            email: format!("u{n}@example.com"),
        }
    }

    #[test]
    fn register_issues_valid_token() {
        let (mut s, mut rng) = store();
        let now = SimTime::EPOCH;
        let (user, token) = s.register(identity(0), now, &mut rng);
        assert_eq!(s.validate(&token.token, now), Some(user));
        assert_eq!(s.user_count(), 1);
    }

    #[test]
    fn registration_is_idempotent_per_identity() {
        let (mut s, mut rng) = store();
        let now = SimTime::EPOCH;
        let (u1, _) = s.register(identity(0), now, &mut rng);
        let (u2, _) = s.register(identity(0), now, &mut rng);
        assert_eq!(u1, u2);
        assert_eq!(s.user_count(), 1);
        let (u3, _) = s.register(identity(1), now, &mut rng);
        assert_ne!(u1, u3);
    }

    #[test]
    fn token_expires() {
        let (mut s, mut rng) = store();
        let now = SimTime::EPOCH;
        let (user, token) = s.register(identity(0), now, &mut rng);
        let before = now + SimDuration::from_hours(23);
        let after = now + SimDuration::from_hours(25);
        assert_eq!(s.validate(&token.token, before), Some(user));
        assert_eq!(s.validate(&token.token, after), None);
    }

    #[test]
    fn unknown_token_rejected() {
        let (s, _) = store();
        assert_eq!(s.validate("tok-bogus", SimTime::EPOCH), None);
    }

    #[test]
    fn refresh_rotates_token() {
        let (mut s, mut rng) = store();
        let now = SimTime::EPOCH;
        let (user, old) = s.register(identity(0), now, &mut rng);
        let later = now + SimDuration::from_hours(20);
        let new = s.refresh(&old.token, later, &mut rng).expect("still valid");
        assert_ne!(new.token, old.token);
        // Old token is dead, new one is valid past the old expiry.
        assert_eq!(s.validate(&old.token, later), None);
        let past_old_expiry = now + SimDuration::from_hours(30);
        assert_eq!(s.validate(&new.token, past_old_expiry), Some(user));
    }

    #[test]
    fn refresh_of_expired_token_fails() {
        let (mut s, mut rng) = store();
        let now = SimTime::EPOCH;
        let (_, old) = s.register(identity(0), now, &mut rng);
        let after = now + SimDuration::from_hours(25);
        assert!(s.refresh(&old.token, after, &mut rng).is_none());
    }

    #[test]
    fn purge_drops_only_expired() {
        let (mut s, mut rng) = store();
        let now = SimTime::EPOCH;
        let (_, t0) = s.register(identity(0), now, &mut rng);
        let later = now + SimDuration::from_hours(20);
        let (_, t1) = s.register(identity(1), later, &mut rng);
        s.purge_expired(now + SimDuration::from_hours(25));
        assert_eq!(
            s.validate(&t0.token, now + SimDuration::from_hours(23)),
            None
        );
        assert!(s
            .validate(&t1.token, later + SimDuration::from_hours(3))
            .is_some());
    }

    #[test]
    fn tokens_are_unique() {
        let (mut s, mut rng) = store();
        let mut seen = std::collections::HashSet::new();
        let (user, _) = s.register(identity(0), SimTime::EPOCH, &mut rng);
        for _ in 0..100 {
            let t = s.issue(user, SimTime::EPOCH, &mut rng);
            assert!(seen.insert(t.token));
        }
    }
}
