//! `pmware` — command-line front end for the PMWare reproduction.
//!
//! ```text
//! pmware world    [--region india|europe] [--seed N]
//! pmware simulate [--region ...] [--seed N] [--days N] [--granularity area|building|room]
//!                 [--metrics-out F] [--trace-out F]
//! pmware study    [--participants N] [--days N] [--seed N]
//!                 [--admission-burst N] [--admission-refill-s N]
//!                 [--latency-profile off|calibrated|uniform] [--slo-p99-ms N]
//!                 [--store-dir DIR] [--resident-cap N] [--snapshot-every-days N]
//!                 [--metrics-out F] [--trace-out F] [--spans-out F]
//! pmware query    [--seed N] [--days N]
//! pmware help
//! ```

mod args;

use std::process::ExitCode;

use args::Args;
use pmware_apps::{AdInventory, PlaceAdsApp, UserTasteModel};
use pmware_bench::deployment::{run_study_with_options, StudyConfig};
use pmware_cloud::{
    AdmissionConfig, CellDatabase, CloudInstance, LatencyProfile, RateBudget, SharedCloud,
    StorageConfig,
};
use pmware_core::intents::IntentFilter;
use pmware_core::pms::{PmsConfig, PmwareMobileService};
use pmware_core::requirements::{AppRequirement, Granularity};
use pmware_device::{Device, EnergyModel};
use pmware_geo::Meters;
use pmware_mobility::Population;
use pmware_obs::Obs;
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::radio::{RadioConfig, RadioEnvironment};
use pmware_world::{SimTime, World};

const HELP: &str = "\
pmware — PMWare middleware reproduction (ACM Middleware 2014)

USAGE:
    pmware <command> [flags]

COMMANDS:
    world       Build a synthetic city and describe it
    simulate    Run one participant's phone through PMWare
    study       Run the §4 deployment study
    query       Run the §2.3.2 analytics queries on a simulated history
    help        Show this message

COMMON FLAGS:
    --region india|europe   World profile        (default india)
    --seed N                Master seed          (default 2014)
    --days N                Simulated days       (default 7; study: 14)
    --participants N        Study cohort size    (default 16)
    --granularity g         area|building|room   (default building)

OFFLOAD (study):
    --offload-batch-days N  Days of GSM suffix per offload request; 0
                            coalesces the whole unacknowledged suffix
                            into one batched delta-compressed request
                            per maintenance pass (default 0). Discovery
                            outcomes are identical at any value — only
                            the wire-request count changes.

RATE LIMITING (study):
    --admission-burst N     Per-user token-bucket burst; 0 = off (default 0)
    --admission-refill-s N  Seconds per refilled token     (default 60)
The budget applies uniformly to every rate class. Admission decisions are
deterministic (seeded, sim-time driven); clients honor the 429
`retry_after_s` hint, so a throttled study still converges to the same
final state, just with fewer wasted wire requests.

LATENCY MODEL (study):
    --latency-profile p     off|calibrated|uniform  (default off)
    --slo-p99-ms N          p99 target for the slo_report (default 100;
                            needs --latency-profile)
`calibrated` draws per-endpoint service times shaped like the paper's
deployment; `uniform` draws 1±1 ms everywhere. Either adds a shared
sim-time FIFO ahead of the handlers and prints an SLO report after the
study. With no shedding threshold the model never changes study
outcomes — it only annotates them.

STORAGE ENGINE (study):
    --resident-cap N        Max user stores resident in RAM; cold users
                            park in compacted snapshots and hydrate on
                            demand (default: unlimited)
    --store-dir DIR         Durable mode: per-shard WAL + snapshots under
                            DIR; a crashed instance recovers bit-identical
                            state from it
    --snapshot-every-days N Compaction cadence in sim-days (default 7;
                            needs --store-dir)
The engine never changes study outcomes — eviction is deterministic
sim-time LRU, and replay rebuilds byte-identical stores.

OBSERVABILITY (simulate, study):
    --metrics-out FILE      Write the final metrics snapshot as JSON
    --trace-out FILE        Write the sim-time trace as JSONL
    --spans-out FILE        Write causal request spans as JSONL
Collecting any of these never changes simulation results: metrics,
traces, and spans are keyed by simulated time, and the same seed
produces byte-identical output at any thread count.
";

/// The observability output paths requested on the command line.
struct ObsOutputs {
    metrics_out: Option<String>,
    trace_out: Option<String>,
    spans_out: Option<String>,
}

/// Builds the observability sink the `--metrics-out` / `--trace-out` /
/// `--spans-out` flags ask for ([`Obs::disabled`] when none is given and
/// nothing else needs metrics), plus the output paths. `force_metrics`
/// keeps the registry live even without `--metrics-out` — the latency
/// model's SLO report reads from it.
fn obs_from_args(args: &Args, force_metrics: bool) -> (Obs, ObsOutputs) {
    let outputs = ObsOutputs {
        metrics_out: args.flag("metrics-out").map(str::to_owned),
        trace_out: args.flag("trace-out").map(str::to_owned),
        spans_out: args.flag("spans-out").map(str::to_owned),
    };
    let mut obs = if outputs.trace_out.is_some() {
        Obs::with_trace(65_536)
    } else if outputs.metrics_out.is_some() || force_metrics {
        Obs::new()
    } else {
        Obs::disabled()
    };
    if outputs.spans_out.is_some() {
        obs = obs.with_spans();
    }
    (obs, outputs)
}

/// Writes the collected snapshot/trace/spans to the requested files.
fn write_obs_outputs(obs: &Obs, outputs: &ObsOutputs) -> Result<(), String> {
    if let (Some(path), Some(json)) = (outputs.metrics_out.as_deref(), obs.metrics_json()) {
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("metrics snapshot written to {path}");
    }
    if let (Some(path), Some(jsonl)) = (outputs.trace_out.as_deref(), obs.trace_jsonl()) {
        std::fs::write(path, jsonl).map_err(|e| format!("writing {path}: {e}"))?;
        println!("trace written to {path}");
    }
    if let (Some(path), Some(jsonl)) = (outputs.spans_out.as_deref(), obs.spans_jsonl()) {
        std::fs::write(path, jsonl).map_err(|e| format!("writing {path}: {e}"))?;
        println!("request spans written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let command = args.positional(0).unwrap_or("help").to_owned();
    let result = match command.as_str() {
        "world" => cmd_world(&args),
        "simulate" => cmd_simulate(&args),
        "study" => cmd_study(&args),
        "query" => cmd_query(&args),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `pmware help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn region(args: &Args) -> Result<RegionProfile, String> {
    match args.flag("region").unwrap_or("india") {
        "india" => Ok(RegionProfile::urban_india()),
        "europe" => Ok(RegionProfile::urban_europe()),
        other => Err(format!("unknown region {other:?} (india|europe)")),
    }
}

fn granularity(args: &Args) -> Result<Granularity, String> {
    match args.flag("granularity").unwrap_or("building") {
        "area" => Ok(Granularity::Area),
        "building" => Ok(Granularity::Building),
        "room" => Ok(Granularity::Room),
        other => Err(format!(
            "unknown granularity {other:?} (area|building|room)"
        )),
    }
}

/// Parses the `--admission-burst` / `--admission-refill-s` pair into an
/// [`AdmissionConfig`]. Burst 0 (the default) leaves admission control
/// off entirely.
fn admission(args: &Args, seed: u64) -> Result<Option<AdmissionConfig>, String> {
    let burst = args
        .get("admission-burst", 0u32)
        .map_err(|e| e.to_string())?;
    if burst == 0 {
        if args.has("admission-refill-s") {
            return Err("--admission-refill-s needs --admission-burst > 0".into());
        }
        return Ok(None);
    }
    let refill = args
        .get("admission-refill-s", 60u64)
        .map_err(|e| e.to_string())?;
    if refill == 0 {
        return Err("--admission-refill-s must be positive".into());
    }
    Ok(Some(AdmissionConfig::uniform(
        seed,
        RateBudget::new(burst, pmware_world::SimDuration::from_seconds(refill)),
    )))
}

/// Parses the `--store-dir` / `--resident-cap` / `--snapshot-every-days`
/// trio into a [`StorageConfig`]. All absent (the default) leaves the
/// storage engine off — the plain all-resident in-memory cloud.
fn storage(args: &Args) -> Result<Option<StorageConfig>, String> {
    let cap = args
        .get("resident-cap", 0usize)
        .map_err(|e| e.to_string())?;
    if args.has("resident-cap") && cap == 0 {
        return Err("--resident-cap must be positive".into());
    }
    let store_dir = args.flag("store-dir").map(std::path::PathBuf::from);
    if store_dir.is_none() {
        if args.has("snapshot-every-days") {
            return Err("--snapshot-every-days needs --store-dir".into());
        }
        if cap == 0 {
            return Ok(None);
        }
    }
    let every = args
        .get("snapshot-every-days", 7u64)
        .map_err(|e| e.to_string())?;
    if every == 0 {
        return Err("--snapshot-every-days must be positive".into());
    }
    Ok(Some(StorageConfig {
        resident_cap: (cap > 0).then_some(cap),
        store_dir,
        snapshot_every_days: every,
    }))
}

/// Parses `--latency-profile` into a [`LatencyProfile`] (`None` when
/// `off`, the default). `--slo-p99-ms` without a profile is a user
/// error — there would be no latency data to report against it.
fn latency(args: &Args, seed: u64) -> Result<Option<LatencyProfile>, String> {
    let profile = match args.flag("latency-profile").unwrap_or("off") {
        "off" => None,
        "calibrated" => Some(LatencyProfile::calibrated(seed)),
        "uniform" => Some(LatencyProfile::uniform(seed, 1_000, 1_000)),
        other => {
            return Err(format!(
                "unknown latency profile {other:?} (off|calibrated|uniform)"
            ))
        }
    };
    if profile.is_none() && args.has("slo-p99-ms") {
        return Err("--slo-p99-ms needs --latency-profile calibrated|uniform".into());
    }
    Ok(profile)
}

fn build_world(args: &Args) -> Result<(World, u64), String> {
    let seed = args.get("seed", 2014u64).map_err(|e| e.to_string())?;
    let world = WorldBuilder::new(region(args)?).seed(seed).build();
    Ok((world, seed))
}

fn cmd_world(args: &Args) -> Result<(), String> {
    let (world, seed) = build_world(args)?;
    println!("world seed {seed}");
    println!(
        "  extent       : {:.1} x {:.1} km",
        world.bounds().width().to_kilometers().value(),
        world.bounds().height().to_kilometers().value()
    );
    println!("  cell towers  : {}", world.towers().len());
    println!("  access points: {}", world.access_points().len());
    println!("  places       : {}", world.places().len());
    println!("  road nodes   : {}", world.roads().node_count());

    // Per-category place counts.
    let mut counts = std::collections::BTreeMap::new();
    for place in world.places() {
        *counts.entry(place.category().label()).or_insert(0u32) += 1;
    }
    println!("  by category  :");
    for (label, n) in counts {
        println!("    {label:<14} {n}");
    }

    // WiFi coverage of places.
    let covered = world
        .places()
        .iter()
        .filter(|p| {
            let mut any = false;
            world.for_each_ap_near(p.position(), p.radius(), |_, _| any = true);
            any
        })
        .count();
    println!(
        "  wifi at places: {covered}/{} ({:.0}%)",
        world.places().len(),
        covered as f64 / world.places().len() as f64 * 100.0
    );
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let (world, seed) = build_world(args)?;
    let days = args.get("days", 7u64).map_err(|e| e.to_string())?;
    let granularity = granularity(args)?;
    let (obs, outputs) = obs_from_args(args, false);
    let population = Population::generate(&world, 1, seed + 1);
    let agent = &population.agents()[0];
    let itinerary = population.itinerary(&world, agent.id(), days);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let device = Device::new(env, &itinerary, EnergyModel::htc_explorer(), seed + 2);
    let cloud = SharedCloud::new(
        CloudInstance::new(CellDatabase::from_world(&world), seed + 3).with_obs(&obs),
    );
    let mut pms =
        PmwareMobileService::new(device, cloud, PmsConfig::for_participant(0), SimTime::EPOCH)
            .map_err(|e| e.to_string())?;
    pms.set_obs(&obs.for_actor("p0000"));
    let _rx = pms.register_app(
        "cli",
        AppRequirement::places(granularity),
        IntentFilter::all(),
    );
    pms.run(SimTime::from_day_time(days, 0, 0, 0))
        .map_err(|e| e.to_string())?;

    println!(
        "simulated {days} days at {} granularity",
        granularity.label()
    );
    println!("places discovered: {}", pms.places().len());
    for place in pms.places() {
        println!(
            "  {:<14} {:>2} cells {:>2} APs {:>3} visits{}{}",
            place.id.to_string(),
            place.cells.len(),
            place.wifi_aps.len(),
            place.visit_count,
            place
                .position
                .map(|p| format!("  est {p}"))
                .unwrap_or_default(),
            place
                .label
                .as_deref()
                .map(|l| format!("  [{l}]"))
                .unwrap_or_default(),
        );
    }
    println!("routes: {}", pms.routes().routes().len());
    let c = pms.counters();
    println!(
        "events: {} arrivals / {} departures / {} routes / {} offloads",
        c.arrivals, c.departures, c.routes, c.gca_offloads
    );
    let report = pms.finish(SimTime::from_day_time(days, 0, 0, 0));
    println!("energy: {:.1} kJ", report.energy_joules / 1_000.0);
    for (interface, joules) in &report.energy_by_interface {
        println!("  {:>14}: {joules:>9.1} J", interface.label());
    }
    write_obs_outputs(&obs, &outputs)?;
    Ok(())
}

fn cmd_study(args: &Args) -> Result<(), String> {
    let seed = args.get("seed", 2014u64).map_err(|e| e.to_string())?;
    let latency = latency(args, seed)?;
    let (obs, outputs) = obs_from_args(args, latency.is_some());
    let config = StudyConfig {
        participants: args
            .get("participants", 16usize)
            .map_err(|e| e.to_string())?,
        days: args.get("days", 14u64).map_err(|e| e.to_string())?,
        seed,
        region: region(args)?,
        threads: args.get("threads", 1usize).map_err(|e| e.to_string())?,
        obs: obs.clone(),
        offload_batch_days: args
            .get("offload-batch-days", 0u32)
            .map_err(|e| e.to_string())?,
        storage: storage(args)?,
    };
    let admission = admission(args, config.seed)?;
    if !args.has("quiet") {
        println!(
            "running {} participants x {} days (seed {})...",
            config.participants, config.days, config.seed
        );
        if admission.is_some() {
            println!("admission control: on (per-user token buckets)");
        }
        if latency.is_some() {
            println!("latency model: on (sim-time service draws + FIFO queues)");
        }
        if let Some(storage) = &config.storage {
            println!(
                "storage engine: on (resident cap {}, {})",
                storage
                    .resident_cap
                    .map_or_else(|| "unlimited".to_owned(), |cap| cap.to_string()),
                match &storage.store_dir {
                    Some(dir) => format!("durable in {}", dir.display()),
                    None => "in-memory snapshots".to_owned(),
                }
            );
        }
    }
    let latency_on = latency.is_some();
    let results = run_study_with_options(&config, admission, latency);
    println!(
        "places discovered : {:>4}  (paper: 123)",
        results.total_discovered()
    );
    println!(
        "places tagged     : {:>4}  (paper: 85)",
        results.total_tagged()
    );
    println!(
        "tagged fraction   : {:>4.1}% (paper: ~70%)",
        results.tagged_fraction() * 100.0
    );
    println!(
        "correct / merged / divided: {:.1}% / {:.1}% / {:.1}%  (paper: 79.0 / 14.5 / 6.5)",
        results.correct_fraction() * 100.0,
        results.merged_fraction() * 100.0,
        results.divided_fraction() * 100.0
    );
    println!(
        "ad likes : dislikes = {} : {} ({:.1}%; paper 17:3 = 85%)",
        results.likes(),
        results.dislikes(),
        results.like_fraction() * 100.0
    );
    if latency_on {
        let target_us = args.get("slo-p99-ms", 100u64).map_err(|e| e.to_string())? * 1_000;
        let report = obs
            .metrics()
            .expect("latency model forces a live registry")
            .snapshot()
            .merged_histogram("cloud_request_latency_us{")
            .map(|h| h.slo_report(target_us));
        match report {
            Some(report) => println!(
                "slo_report: p50 {} µs, p99 {} µs, p999 {} µs over {} requests; \
                 target p99 ≤ {} µs: {} ({:.1}% certifiably within)",
                report.p50_us,
                report.p99_us,
                report.p999_us,
                report.count,
                report.target_us,
                if report.attained {
                    "attained"
                } else {
                    "MISSED"
                },
                report.attainment() * 100.0
            ),
            None => println!("slo_report: no latency observations recorded"),
        }
    }
    write_obs_outputs(&obs, &outputs)?;
    Ok(())
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let (world, seed) = build_world(args)?;
    let days = args.get("days", 14u64).map_err(|e| e.to_string())?;
    let population = Population::generate(&world, 1, seed + 1);
    let agent = &population.agents()[0];
    let itinerary = population.itinerary(&world, agent.id(), days);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let device = Device::new(env, &itinerary, EnergyModel::htc_explorer(), seed + 2);
    let cloud = SharedCloud::new(CloudInstance::new(
        CellDatabase::from_world(&world),
        seed + 3,
    ));
    let mut pms =
        PmwareMobileService::new(device, cloud, PmsConfig::for_participant(0), SimTime::EPOCH)
            .map_err(|e| e.to_string())?;
    // PlaceADs doubles as a demand source so the history is rich.
    let _rx = pms.register_app(
        "placeads",
        PlaceAdsApp::requirement(),
        PlaceAdsApp::filter(),
    );
    let _inventory = AdInventory::from_world(&world);
    let _taste = UserTasteModel::from_agent(agent, seed + 4);
    pms.run(SimTime::from_day_time(days, 0, 0, 0))
        .map_err(|e| e.to_string())?;
    let end = SimTime::from_day_time(days, 0, 0, 0);

    let home = pms
        .places()
        .iter()
        .max_by_key(|p| {
            p.gca_visits
                .iter()
                .filter(|v| v.arrival.hour_of_day() >= 17 || v.arrival.hour_of_day() <= 5)
                .count()
        })
        .ok_or("no places discovered")?
        .id;
    println!("analytics over {days} simulated days (home = {home}):");

    let resp = pms
        .cloud_client_mut()
        .call(
            "/api/v1/analytics/arrival",
            serde_json::json!({"place": home.0, "window": [15, 24]}),
            end,
        )
        .map_err(|e| e.to_string())?;
    let s = resp.body["second_of_day"].as_u64().unwrap_or(0);
    println!(
        "  evening home arrival : {:02}:{:02}",
        s / 3600,
        (s % 3600) / 60
    );

    let resp = pms
        .cloud_client_mut()
        .call(
            "/api/v1/analytics/next_visit",
            serde_json::json!({"place": home.0, "now": end}),
            end,
        )
        .map_err(|e| e.to_string())?;
    let next: SimTime =
        serde_json::from_value(resp.body["time"].clone()).map_err(|e| e.to_string())?;
    println!("  next home visit      : {next}");

    let resp = pms
        .cloud_client_mut()
        .call(
            "/api/v1/analytics/frequency",
            serde_json::json!({"place": home.0}),
            end,
        )
        .map_err(|e| e.to_string())?;
    println!(
        "  home visit frequency : {:.1}/week",
        resp.body["visits_per_week"].as_f64().unwrap_or(0.0)
    );

    let resp = pms
        .cloud_client_mut()
        .call("/api/v1/analytics/activity", serde_json::json!({}), end)
        .map_err(|e| e.to_string())?;
    println!(
        "  daily movement       : {:.0} min/day",
        resp.body["mean_daily_moving_minutes"]
            .as_f64()
            .unwrap_or(0.0)
    );
    let _ = Meters::ZERO;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_flag_mapping() {
        // Absent or zero burst: controller stays off.
        assert!(admission(&Args::parse(Vec::<String>::new()), 1)
            .unwrap()
            .is_none());
        assert!(admission(&Args::parse(["--admission-burst", "0"]), 1)
            .unwrap()
            .is_none());
        // A positive burst turns it on (refill defaults to 60s).
        assert!(admission(&Args::parse(["--admission-burst", "5"]), 1)
            .unwrap()
            .is_some());
        // A refill without a burst is a user error, not a silent no-op.
        assert!(admission(&Args::parse(["--admission-refill-s", "10"]), 1).is_err());
        assert!(admission(
            &Args::parse(["--admission-burst", "5", "--admission-refill-s", "0"]),
            1
        )
        .is_err());
    }

    #[test]
    fn latency_flag_mapping() {
        // Absent or off: model stays disabled.
        assert!(latency(&Args::parse(Vec::<String>::new()), 1)
            .unwrap()
            .is_none());
        assert!(latency(&Args::parse(["--latency-profile", "off"]), 1)
            .unwrap()
            .is_none());
        assert!(
            latency(&Args::parse(["--latency-profile", "calibrated"]), 1)
                .unwrap()
                .is_some()
        );
        assert!(latency(&Args::parse(["--latency-profile", "uniform"]), 1)
            .unwrap()
            .is_some());
        assert!(latency(&Args::parse(["--latency-profile", "gaussian"]), 1).is_err());
        // An SLO target with no latency data is a user error.
        assert!(latency(&Args::parse(["--slo-p99-ms", "50"]), 1).is_err());
    }

    #[test]
    fn storage_flag_mapping() {
        // Absent: the engine stays off.
        assert!(storage(&Args::parse(Vec::<String>::new()))
            .unwrap()
            .is_none());
        // A cap alone: in-memory snapshots, bounded residency.
        let config = storage(&Args::parse(["--resident-cap", "8"]))
            .unwrap()
            .unwrap();
        assert_eq!(config.resident_cap, Some(8));
        assert!(config.store_dir.is_none());
        // A store dir alone: durable, unlimited residency, default cadence.
        let config = storage(&Args::parse(["--store-dir", "/tmp/pmware-store"]))
            .unwrap()
            .unwrap();
        assert!(config.resident_cap.is_none());
        assert_eq!(
            config.store_dir.as_deref(),
            Some(std::path::Path::new("/tmp/pmware-store"))
        );
        assert_eq!(config.snapshot_every_days, 7);
        // Explicit zeros and a cadence with nowhere to snapshot are user
        // errors, not silent no-ops.
        assert!(storage(&Args::parse(["--resident-cap", "0"])).is_err());
        assert!(storage(&Args::parse(["--snapshot-every-days", "3"])).is_err());
        assert!(storage(&Args::parse([
            "--store-dir",
            "/tmp/pmware-store",
            "--snapshot-every-days",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn spans_flag_enables_span_collection() {
        let (obs, outputs) = obs_from_args(&Args::parse(["--spans-out", "/tmp/s.jsonl"]), false);
        assert!(obs.spans().is_some());
        assert_eq!(outputs.spans_out.as_deref(), Some("/tmp/s.jsonl"));
        // Without the flag (and nothing forcing metrics) obs stays off.
        let (obs, _) = obs_from_args(&Args::parse(Vec::<String>::new()), false);
        assert!(!obs.is_enabled());
        // The latency model forces a live registry for the SLO report.
        let (obs, _) = obs_from_args(&Args::parse(Vec::<String>::new()), true);
        assert!(obs.metrics().is_some());
    }

    #[test]
    fn region_mapping() {
        assert_eq!(
            region(&Args::parse(["--region", "india"])).unwrap().name,
            "urban-india"
        );
        assert_eq!(
            region(&Args::parse(["--region", "europe"])).unwrap().name,
            "urban-europe"
        );
        assert_eq!(
            region(&Args::parse(Vec::<String>::new())).unwrap().name,
            "urban-india"
        );
        assert!(region(&Args::parse(["--region", "mars"])).is_err());
    }

    #[test]
    fn granularity_mapping() {
        assert_eq!(
            granularity(&Args::parse(["--granularity", "room"])).unwrap(),
            Granularity::Room
        );
        assert_eq!(
            granularity(&Args::parse(Vec::<String>::new())).unwrap(),
            Granularity::Building
        );
        assert!(granularity(&Args::parse(["--granularity", "galaxy"])).is_err());
    }

    #[test]
    fn world_builds_from_flags() {
        let (world, seed) = build_world(&Args::parse(["--seed", "5"])).unwrap();
        assert_eq!(seed, 5);
        assert!(!world.places().is_empty());
    }
}
