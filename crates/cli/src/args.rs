//! A small flag parser — enough for this CLI without an extra dependency.
//!
//! Supports `--flag value` and `--flag=value`; everything else positional.

use std::collections::HashMap;
use std::fmt;

/// Parsed command line: positionals in order, flags by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

/// A flag whose value failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError {
    /// Flag name (without dashes).
    pub flag: String,
    /// The offending value.
    pub value: String,
    /// What was expected.
    pub expected: &'static str,
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid value {:?} for --{} (expected {})",
            self.value, self.flag, self.expected
        )
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name).
    pub fn parse<I, S>(raw: I) -> Args
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some((key, value)) = name.split_once('=') {
                    flags.insert(key.to_owned(), value.to_owned());
                } else if iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false)
                {
                    let value = iter.next().expect("peeked");
                    flags.insert(name.to_owned(), value);
                } else {
                    // Bare flag: boolean true.
                    flags.insert(name.to_owned(), "true".to_owned());
                }
            } else {
                positional.push(arg);
            }
        }
        Args { positional, flags }
    }

    /// Positional argument by index.
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positional.get(index).map(String::as_str)
    }

    /// Raw flag value.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Whether a boolean flag is set.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Typed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the value does not parse as `T`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError {
                flag: name.to_owned(),
                value: raw.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_positionals_and_flags() {
        let args = Args::parse(["study", "--seed", "42", "--days=7", "--verbose"]);
        assert_eq!(args.positional(0), Some("study"));
        assert_eq!(args.flag("seed"), Some("42"));
        assert_eq!(args.flag("days"), Some("7"));
        assert!(args.has("verbose"));
        assert!(!args.has("quiet"));
    }

    #[test]
    fn typed_access_with_defaults() {
        let args = Args::parse(["--seed", "42"]);
        assert_eq!(args.get("seed", 0u64).unwrap(), 42);
        assert_eq!(args.get("days", 14u64).unwrap(), 14);
        let err = Args::parse(["--seed", "forty"])
            .get("seed", 0u64)
            .unwrap_err();
        assert_eq!(err.flag, "seed");
        assert!(err.to_string().contains("forty"));
    }

    #[test]
    fn bare_flag_before_positional() {
        // A bare flag followed by a positional consumes it as a value; the
        // `=` form avoids the ambiguity.
        let args = Args::parse(["--verbose=true", "study"]);
        assert!(args.has("verbose"));
        assert_eq!(args.positional(0), Some("study"));
    }

    #[test]
    fn empty_input() {
        let args = Args::parse(Vec::<String>::new());
        assert_eq!(args.positional(0), None);
        assert_eq!(args.get("x", 3u32).unwrap(), 3);
    }
}
