//! Distance newtypes.
//!
//! Raw `f64` values carrying physical quantities are easy to mix up; the
//! [`Meters`] and [`Kilometers`] newtypes keep metre- and kilometre-valued
//! quantities statically distinct while staying `Copy` and cheap.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A distance in metres.
///
/// # Examples
///
/// ```
/// use pmware_geo::Meters;
///
/// let total = Meters::new(120.0) + Meters::new(80.0);
/// assert_eq!(total, Meters::new(200.0));
/// assert_eq!(total.to_kilometers().value(), 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Meters(f64);

/// A distance in kilometres.
///
/// # Examples
///
/// ```
/// use pmware_geo::{Kilometers, Meters};
///
/// let km = Kilometers::new(1.5);
/// assert_eq!(km.to_meters(), Meters::new(1500.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Kilometers(f64);

impl Meters {
    /// Zero metres.
    pub const ZERO: Meters = Meters(0.0);

    /// Creates a distance in metres.
    pub const fn new(value: f64) -> Self {
        Meters(value)
    }

    /// Returns the raw metre value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to kilometres.
    pub fn to_kilometers(self) -> Kilometers {
        Kilometers(self.0 / 1000.0)
    }

    /// Returns the smaller of two distances.
    pub fn min(self, other: Meters) -> Meters {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two distances.
    pub fn max(self, other: Meters) -> Meters {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the absolute value of the distance.
    pub fn abs(self) -> Meters {
        Meters(self.0.abs())
    }

    /// Returns `true` if the value is finite and non-negative — i.e. a
    /// physically meaningful distance rather than a displacement.
    pub fn is_valid_distance(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl Kilometers {
    /// Creates a distance in kilometres.
    pub const fn new(value: f64) -> Self {
        Kilometers(value)
    }

    /// Returns the raw kilometre value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to metres.
    pub fn to_meters(self) -> Meters {
        Meters(self.0 * 1000.0)
    }
}

impl From<Kilometers> for Meters {
    fn from(km: Kilometers) -> Self {
        km.to_meters()
    }
}

impl From<Meters> for Kilometers {
    fn from(m: Meters) -> Self {
        m.to_kilometers()
    }
}

impl Add for Meters {
    type Output = Meters;
    fn add(self, rhs: Meters) -> Meters {
        Meters(self.0 + rhs.0)
    }
}

impl AddAssign for Meters {
    fn add_assign(&mut self, rhs: Meters) {
        self.0 += rhs.0;
    }
}

impl Sub for Meters {
    type Output = Meters;
    fn sub(self, rhs: Meters) -> Meters {
        Meters(self.0 - rhs.0)
    }
}

impl Mul<f64> for Meters {
    type Output = Meters;
    fn mul(self, rhs: f64) -> Meters {
        Meters(self.0 * rhs)
    }
}

impl Div<f64> for Meters {
    type Output = Meters;
    fn div(self, rhs: f64) -> Meters {
        Meters(self.0 / rhs)
    }
}

impl Sum for Meters {
    fn sum<I: Iterator<Item = Meters>>(iter: I) -> Meters {
        Meters(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for Meters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} m", self.0)
    }
}

impl fmt::Display for Kilometers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} km", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meters_arithmetic() {
        let a = Meters::new(100.0);
        let b = Meters::new(50.0);
        assert_eq!(a + b, Meters::new(150.0));
        assert_eq!(a - b, Meters::new(50.0));
        assert_eq!(a * 2.0, Meters::new(200.0));
        assert_eq!(a / 4.0, Meters::new(25.0));
    }

    #[test]
    fn meters_sum_over_iterator() {
        let total: Meters = [1.0, 2.0, 3.5].iter().map(|&v| Meters::new(v)).sum();
        assert_eq!(total, Meters::new(6.5));
    }

    #[test]
    fn conversion_round_trips() {
        let m = Meters::new(1234.5);
        let km: Kilometers = m.into();
        let back: Meters = km.into();
        assert!((back.value() - m.value()).abs() < 1e-9);
    }

    #[test]
    fn min_max_abs() {
        let a = Meters::new(-3.0);
        let b = Meters::new(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.abs(), Meters::new(3.0));
    }

    #[test]
    fn validity_checks() {
        assert!(Meters::new(0.0).is_valid_distance());
        assert!(!Meters::new(-1.0).is_valid_distance());
        assert!(!Meters::new(f64::NAN).is_valid_distance());
        assert!(!Meters::new(f64::INFINITY).is_valid_distance());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Meters::new(12.34).to_string(), "12.3 m");
        assert_eq!(Kilometers::new(1.2345).to_string(), "1.234 km");
    }

    #[test]
    fn serde_is_transparent() {
        let m = Meters::new(42.0);
        let json = serde_json::to_string(&m).unwrap();
        assert_eq!(json, "42.0");
        let back: Meters = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
