//! Geographic points and great-circle math.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{GeoError, Meters, EARTH_RADIUS_M};

/// A point on the Earth's surface in WGS-84 degrees.
///
/// Construction validates ranges, so a `GeoPoint` always holds a latitude in
/// `[-90, 90]` and a longitude in `[-180, 180]`.
///
/// # Examples
///
/// ```
/// use pmware_geo::GeoPoint;
///
/// let p = GeoPoint::new(12.9716, 77.5946)?; // Bangalore
/// assert_eq!(p.latitude(), 12.9716);
/// # Ok::<(), pmware_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    lat: f64,
    lng: f64,
}

impl GeoPoint {
    /// Creates a point from latitude and longitude in degrees.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidLatitude`] or [`GeoError::InvalidLongitude`]
    /// if either coordinate is out of range or not finite.
    pub fn new(lat: f64, lng: f64) -> Result<Self, GeoError> {
        if !lat.is_finite() || !(-90.0..=90.0).contains(&lat) {
            return Err(GeoError::InvalidLatitude(lat));
        }
        if !lng.is_finite() || !(-180.0..=180.0).contains(&lng) {
            return Err(GeoError::InvalidLongitude(lng));
        }
        Ok(GeoPoint { lat, lng })
    }

    /// Latitude in degrees.
    pub fn latitude(self) -> f64 {
        self.lat
    }

    /// Longitude in degrees.
    pub fn longitude(self) -> f64 {
        self.lng
    }

    /// Great-circle distance to `other` using the haversine formula.
    ///
    /// Accurate for all separations; prefer
    /// [`equirectangular_distance`](Self::equirectangular_distance) in hot
    /// loops over sub-kilometre separations.
    pub fn haversine_distance(self, other: GeoPoint) -> Meters {
        let phi1 = self.lat.to_radians();
        let phi2 = other.lat.to_radians();
        let dphi = (other.lat - self.lat).to_radians();
        let dlambda = (other.lng - self.lng).to_radians();

        let a =
            (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().atan2((1.0 - a).sqrt());
        Meters::new(EARTH_RADIUS_M * c)
    }

    /// Fast approximate distance using the equirectangular projection.
    ///
    /// Within ~0.1 % of haversine for separations under a few kilometres,
    /// which covers every intra-city query the simulators make.
    pub fn equirectangular_distance(self, other: GeoPoint) -> Meters {
        let mean_lat = ((self.lat + other.lat) / 2.0).to_radians();
        let x = (other.lng - self.lng).to_radians() * mean_lat.cos();
        let y = (other.lat - self.lat).to_radians();
        Meters::new(EARTH_RADIUS_M * (x * x + y * y).sqrt())
    }

    /// Initial bearing from `self` to `other` in degrees clockwise from north,
    /// normalised to `[0, 360)`.
    pub fn bearing_to(self, other: GeoPoint) -> f64 {
        let phi1 = self.lat.to_radians();
        let phi2 = other.lat.to_radians();
        let dlambda = (other.lng - self.lng).to_radians();
        let y = dlambda.sin() * phi2.cos();
        let x = phi1.cos() * phi2.sin() - phi1.sin() * phi2.cos() * dlambda.cos();
        (y.atan2(x).to_degrees() + 360.0) % 360.0
    }

    /// Destination point after travelling `distance` on the great circle with
    /// the given initial `bearing_deg` (degrees clockwise from north).
    ///
    /// The result is clamped back into valid coordinate ranges, so the method
    /// cannot fail even at the poles or the antimeridian.
    pub fn destination(self, bearing_deg: f64, distance: Meters) -> GeoPoint {
        let delta = distance.value() / EARTH_RADIUS_M;
        let theta = bearing_deg.to_radians();
        let phi1 = self.lat.to_radians();
        let lambda1 = self.lng.to_radians();

        let phi2 = (phi1.sin() * delta.cos() + phi1.cos() * delta.sin() * theta.cos()).asin();
        let lambda2 = lambda1
            + (theta.sin() * delta.sin() * phi1.cos()).atan2(delta.cos() - phi1.sin() * phi2.sin());

        let lat = phi2.to_degrees().clamp(-90.0, 90.0);
        let mut lng = lambda2.to_degrees();
        // Normalise longitude into [-180, 180].
        lng = (lng + 540.0) % 360.0 - 180.0;
        GeoPoint { lat, lng }
    }

    /// Linear interpolation between `self` and `other`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`. Performed on raw
    /// coordinates, which is adequate for the intra-city distances the
    /// simulation uses. `t` is clamped to `[0, 1]`.
    pub fn lerp(self, other: GeoPoint, t: f64) -> GeoPoint {
        let t = t.clamp(0.0, 1.0);
        GeoPoint {
            lat: self.lat + (other.lat - self.lat) * t,
            lng: self.lng + (other.lng - self.lng) * t,
        }
    }

    /// Centroid of a non-empty set of points.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::TooFewPoints`] if `points` is empty.
    pub fn centroid(points: &[GeoPoint]) -> Result<GeoPoint, GeoError> {
        if points.is_empty() {
            return Err(GeoError::TooFewPoints {
                required: 1,
                actual: 0,
            });
        }
        let n = points.len() as f64;
        let lat = points.iter().map(|p| p.lat).sum::<f64>() / n;
        let lng = points.iter().map(|p| p.lng).sum::<f64>() / n;
        Ok(GeoPoint { lat, lng })
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lat, self.lng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lng: f64) -> GeoPoint {
        GeoPoint::new(lat, lng).unwrap()
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            GeoPoint::new(91.0, 0.0),
            Err(GeoError::InvalidLatitude(_))
        ));
        assert!(matches!(
            GeoPoint::new(-91.0, 0.0),
            Err(GeoError::InvalidLatitude(_))
        ));
        assert!(matches!(
            GeoPoint::new(0.0, 181.0),
            Err(GeoError::InvalidLongitude(_))
        ));
        assert!(matches!(
            GeoPoint::new(0.0, f64::NAN),
            Err(GeoError::InvalidLongitude(_))
        ));
        assert!(matches!(
            GeoPoint::new(f64::INFINITY, 0.0),
            Err(GeoError::InvalidLatitude(_))
        ));
    }

    #[test]
    fn haversine_known_distance() {
        // Delhi to Bangalore is about 1740 km.
        let delhi = p(28.6139, 77.2090);
        let blr = p(12.9716, 77.5946);
        let d = delhi.haversine_distance(blr);
        assert!((d.value() - 1_740_000.0).abs() < 15_000.0, "got {d}");
    }

    #[test]
    fn haversine_zero_for_same_point() {
        let a = p(10.0, 20.0);
        assert_eq!(a.haversine_distance(a), Meters::new(0.0));
    }

    #[test]
    fn equirectangular_close_to_haversine_at_city_scale() {
        let a = p(12.9716, 77.5946);
        let b = p(12.9816, 77.6046);
        let h = a.haversine_distance(b).value();
        let e = a.equirectangular_distance(b).value();
        assert!((h - e).abs() / h < 1e-3, "h={h} e={e}");
    }

    #[test]
    fn bearing_cardinal_directions() {
        let origin = p(0.0, 0.0);
        assert!((origin.bearing_to(p(1.0, 0.0)) - 0.0).abs() < 1e-6); // north
        assert!((origin.bearing_to(p(0.0, 1.0)) - 90.0).abs() < 1e-6); // east
        assert!((origin.bearing_to(p(-1.0, 0.0)) - 180.0).abs() < 1e-6); // south
        assert!((origin.bearing_to(p(0.0, -1.0)) - 270.0).abs() < 1e-6); // west
    }

    #[test]
    fn destination_round_trip() {
        let start = p(12.9716, 77.5946);
        let dest = start.destination(45.0, Meters::new(5_000.0));
        let d = start.haversine_distance(dest);
        assert!((d.value() - 5_000.0).abs() < 1.0, "got {d}");
        let bearing = start.bearing_to(dest);
        assert!((bearing - 45.0).abs() < 0.1, "got {bearing}");
    }

    #[test]
    fn destination_normalises_longitude_across_antimeridian() {
        let near_edge = p(0.0, 179.9);
        let dest = near_edge.destination(90.0, Meters::new(50_000.0));
        assert!(dest.longitude() <= 180.0 && dest.longitude() >= -180.0);
        assert!(
            dest.longitude() < 0.0,
            "should wrap to negative, got {}",
            dest.longitude()
        );
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = p(10.0, 20.0);
        let b = p(12.0, 24.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert!((mid.latitude() - 11.0).abs() < 1e-12);
        assert!((mid.longitude() - 22.0).abs() < 1e-12);
        // Out-of-range t is clamped.
        assert_eq!(a.lerp(b, -1.0), a);
        assert_eq!(a.lerp(b, 2.0), b);
    }

    #[test]
    fn centroid_of_points() {
        let pts = [p(0.0, 0.0), p(2.0, 0.0), p(0.0, 2.0), p(2.0, 2.0)];
        let c = GeoPoint::centroid(&pts).unwrap();
        assert!((c.latitude() - 1.0).abs() < 1e-12);
        assert!((c.longitude() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_empty_errors() {
        assert!(matches!(
            GeoPoint::centroid(&[]),
            Err(GeoError::TooFewPoints {
                required: 1,
                actual: 0
            })
        ));
    }

    #[test]
    fn serde_round_trip() {
        let a = p(12.34, 56.78);
        let json = serde_json::to_string(&a).unwrap();
        let back: GeoPoint = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
