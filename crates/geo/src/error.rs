use std::fmt;

/// Error returned when constructing geographic values from invalid input.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// Latitude outside the `[-90, +90]` degree range, or not finite.
    InvalidLatitude(f64),
    /// Longitude outside the `[-180, +180]` degree range, or not finite.
    InvalidLongitude(f64),
    /// A distance or length that must be non-negative and finite was not.
    InvalidDistance(f64),
    /// An operation that needs at least `required` points received `actual`.
    TooFewPoints {
        /// Minimum number of points the operation needs.
        required: usize,
        /// Number of points actually supplied.
        actual: usize,
    },
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidLatitude(v) => {
                write!(f, "latitude {v} is outside [-90, 90] or not finite")
            }
            GeoError::InvalidLongitude(v) => {
                write!(f, "longitude {v} is outside [-180, 180] or not finite")
            }
            GeoError::InvalidDistance(v) => {
                write!(f, "distance {v} is negative or not finite")
            }
            GeoError::TooFewPoints { required, actual } => {
                write!(
                    f,
                    "operation requires at least {required} points, got {actual}"
                )
            }
        }
    }
}

impl std::error::Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GeoError::InvalidLatitude(123.0);
        assert!(e.to_string().contains("123"));
        let e = GeoError::TooFewPoints {
            required: 2,
            actual: 0,
        };
        assert!(e.to_string().contains("at least 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeoError>();
    }
}
