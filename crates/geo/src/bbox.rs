//! Axis-aligned geographic bounding boxes.

use serde::{Deserialize, Serialize};

use crate::{GeoError, GeoPoint, Meters};

/// An axis-aligned bounding box in latitude/longitude space.
///
/// Does not handle antimeridian wrap-around; the simulated worlds are
/// city-scale regions far from ±180°.
///
/// # Examples
///
/// ```
/// use pmware_geo::{BoundingBox, GeoPoint};
///
/// let sw = GeoPoint::new(12.90, 77.50)?;
/// let ne = GeoPoint::new(13.05, 77.70)?;
/// let bbox = BoundingBox::new(sw, ne)?;
/// assert!(bbox.contains(GeoPoint::new(12.97, 77.59)?));
/// # Ok::<(), pmware_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    south_west: GeoPoint,
    north_east: GeoPoint,
}

impl BoundingBox {
    /// Creates a bounding box from its south-west and north-east corners.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::TooFewPoints`] if the corners are reversed (the
    /// south-west corner must not be north of or east of the north-east one).
    pub fn new(south_west: GeoPoint, north_east: GeoPoint) -> Result<Self, GeoError> {
        if south_west.latitude() > north_east.latitude()
            || south_west.longitude() > north_east.longitude()
        {
            // Reuse TooFewPoints? No — misuse of corners deserves a clearer
            // signal. Latitude inversion is reported as an invalid latitude.
            return Err(GeoError::InvalidLatitude(south_west.latitude()));
        }
        Ok(BoundingBox {
            south_west,
            north_east,
        })
    }

    /// Smallest box containing all `points`.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::TooFewPoints`] if `points` is empty.
    pub fn enclosing(points: &[GeoPoint]) -> Result<Self, GeoError> {
        if points.is_empty() {
            return Err(GeoError::TooFewPoints {
                required: 1,
                actual: 0,
            });
        }
        let mut min_lat = f64::MAX;
        let mut max_lat = f64::MIN;
        let mut min_lng = f64::MAX;
        let mut max_lng = f64::MIN;
        for p in points {
            min_lat = min_lat.min(p.latitude());
            max_lat = max_lat.max(p.latitude());
            min_lng = min_lng.min(p.longitude());
            max_lng = max_lng.max(p.longitude());
        }
        Ok(BoundingBox {
            south_west: GeoPoint::new(min_lat, min_lng).expect("derived from valid points"),
            north_east: GeoPoint::new(max_lat, max_lng).expect("derived from valid points"),
        })
    }

    /// South-west corner.
    pub fn south_west(&self) -> GeoPoint {
        self.south_west
    }

    /// North-east corner.
    pub fn north_east(&self) -> GeoPoint {
        self.north_east
    }

    /// Geometric centre of the box.
    pub fn center(&self) -> GeoPoint {
        self.south_west.lerp(self.north_east, 0.5)
    }

    /// Returns `true` if `point` lies inside or on the edge of the box.
    pub fn contains(&self, point: GeoPoint) -> bool {
        point.latitude() >= self.south_west.latitude()
            && point.latitude() <= self.north_east.latitude()
            && point.longitude() >= self.south_west.longitude()
            && point.longitude() <= self.north_east.longitude()
    }

    /// Returns `true` if the two boxes share any area (or touch).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.south_west.latitude() <= other.north_east.latitude()
            && self.north_east.latitude() >= other.south_west.latitude()
            && self.south_west.longitude() <= other.north_east.longitude()
            && self.north_east.longitude() >= other.south_west.longitude()
    }

    /// Approximate width (east–west extent) at the box's mid-latitude.
    pub fn width(&self) -> Meters {
        let mid = self.center().latitude();
        let w = GeoPoint::new(mid, self.south_west.longitude()).expect("valid");
        let e = GeoPoint::new(mid, self.north_east.longitude()).expect("valid");
        w.haversine_distance(e)
    }

    /// Approximate height (north–south extent).
    pub fn height(&self) -> Meters {
        let s =
            GeoPoint::new(self.south_west.latitude(), self.center().longitude()).expect("valid");
        let n =
            GeoPoint::new(self.north_east.latitude(), self.center().longitude()).expect("valid");
        s.haversine_distance(n)
    }

    /// Returns a new box expanded by `margin` on every side, clamped to valid
    /// coordinate ranges.
    pub fn expanded(&self, margin: Meters) -> BoundingBox {
        let sw = self.south_west.destination(
            225.0,
            Meters::new(margin.value() * std::f64::consts::SQRT_2),
        );
        let ne = self
            .north_east
            .destination(45.0, Meters::new(margin.value() * std::f64::consts::SQRT_2));
        BoundingBox {
            south_west: sw,
            north_east: ne,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lng: f64) -> GeoPoint {
        GeoPoint::new(lat, lng).unwrap()
    }

    fn bbox() -> BoundingBox {
        BoundingBox::new(p(10.0, 20.0), p(11.0, 21.0)).unwrap()
    }

    #[test]
    fn reversed_corners_rejected() {
        assert!(BoundingBox::new(p(11.0, 20.0), p(10.0, 21.0)).is_err());
        assert!(BoundingBox::new(p(10.0, 22.0), p(11.0, 21.0)).is_err());
    }

    #[test]
    fn contains_interior_edges_and_exterior() {
        let b = bbox();
        assert!(b.contains(p(10.5, 20.5)));
        assert!(b.contains(p(10.0, 20.0))); // corner counts
        assert!(b.contains(p(11.0, 21.0)));
        assert!(!b.contains(p(9.99, 20.5)));
        assert!(!b.contains(p(10.5, 21.01)));
    }

    #[test]
    fn enclosing_covers_all_points() {
        let pts = [p(1.0, 2.0), p(3.0, -1.0), p(2.0, 4.0)];
        let b = BoundingBox::enclosing(&pts).unwrap();
        for q in pts {
            assert!(b.contains(q));
        }
        assert_eq!(b.south_west(), p(1.0, -1.0));
        assert_eq!(b.north_east(), p(3.0, 4.0));
    }

    #[test]
    fn enclosing_empty_errors() {
        assert!(BoundingBox::enclosing(&[]).is_err());
    }

    #[test]
    fn intersects_cases() {
        let a = bbox();
        let overlapping = BoundingBox::new(p(10.5, 20.5), p(12.0, 22.0)).unwrap();
        let disjoint = BoundingBox::new(p(12.0, 22.0), p(13.0, 23.0)).unwrap();
        let touching = BoundingBox::new(p(11.0, 21.0), p(12.0, 22.0)).unwrap();
        assert!(a.intersects(&overlapping));
        assert!(overlapping.intersects(&a));
        assert!(!a.intersects(&disjoint));
        assert!(a.intersects(&touching));
    }

    #[test]
    fn center_is_midpoint() {
        let c = bbox().center();
        assert!((c.latitude() - 10.5).abs() < 1e-12);
        assert!((c.longitude() - 20.5).abs() < 1e-12);
    }

    #[test]
    fn width_and_height_are_positive_and_sane() {
        // A 1-degree box near the equator is ~111 km on each side.
        let b = BoundingBox::new(p(0.0, 0.0), p(1.0, 1.0)).unwrap();
        assert!((b.height().value() - 111_195.0).abs() < 1_000.0);
        assert!((b.width().value() - 111_178.0).abs() < 1_500.0);
    }

    #[test]
    fn expanded_contains_original() {
        let b = bbox();
        let bigger = b.expanded(Meters::new(1_000.0));
        assert!(bigger.contains(b.south_west()));
        assert!(bigger.contains(b.north_east()));
        assert!(bigger.width() > b.width());
    }
}
