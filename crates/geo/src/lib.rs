//! Geographic primitives for the PMWare reproduction.
//!
//! This crate provides the small, dependency-light geometric vocabulary shared
//! by every other crate in the workspace: [`GeoPoint`] coordinates with
//! great-circle math, [`BoundingBox`] regions, a [`grid::SpatialGrid`] index
//! for nearest-neighbour queries over many points, and [`polyline`] utilities
//! used by route tracking.
//!
//! Distances are represented with the [`Meters`] newtype so that a raw `f64`
//! carrying metres can never be confused with one carrying kilometres or
//! degrees ([`units`]).
//!
//! # Examples
//!
//! ```
//! use pmware_geo::{GeoPoint, Meters};
//!
//! // IIIT-Delhi to Connaught Place, New Delhi.
//! let a = GeoPoint::new(28.5456, 77.2732).unwrap();
//! let b = GeoPoint::new(28.6315, 77.2167).unwrap();
//! let d = a.haversine_distance(b);
//! assert!(d > Meters::new(10_000.0) && d < Meters::new(12_500.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbox;
pub mod grid;
pub mod point;
pub mod polyline;
pub mod units;

mod error;

pub use bbox::BoundingBox;
pub use error::GeoError;
pub use point::GeoPoint;
pub use polyline::Polyline;
pub use units::{Kilometers, Meters};

/// Mean Earth radius in metres (IUGG value), used by all great-circle math.
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;
