//! A fixed-cell spatial hash index for point sets.
//!
//! The radio model asks "which towers / access points are within `r` metres
//! of this position" thousands of times per simulated minute; a flat scan
//! over every antenna would dominate runtime. [`SpatialGrid`] buckets items
//! into cells of a configurable size and answers radius queries by scanning
//! only the overlapping cells.

use std::collections::HashMap;

use crate::{GeoError, GeoPoint, Meters};

/// Approximate metres per degree of latitude.
const METERS_PER_DEG_LAT: f64 = 111_320.0;

/// A spatial hash over items with a geographic position.
///
/// # Examples
///
/// ```
/// use pmware_geo::{grid::SpatialGrid, GeoPoint, Meters};
///
/// let mut grid = SpatialGrid::new(Meters::new(500.0))?;
/// grid.insert(GeoPoint::new(12.970, 77.590)?, "tower-a");
/// grid.insert(GeoPoint::new(12.980, 77.610)?, "tower-b");
///
/// let near = grid.within(GeoPoint::new(12.9705, 77.5905)?, Meters::new(200.0));
/// assert_eq!(near.len(), 1);
/// assert_eq!(*near[0].1, "tower-a");
/// # Ok::<(), pmware_geo::GeoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid<T> {
    cell_size: Meters,
    cells: HashMap<(i64, i64), Vec<(GeoPoint, T)>>,
    len: usize,
}

impl<T> SpatialGrid<T> {
    /// Creates an empty grid with the given cell edge length.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidDistance`] if `cell_size` is not a positive
    /// finite distance.
    pub fn new(cell_size: Meters) -> Result<Self, GeoError> {
        if !cell_size.is_valid_distance() || cell_size.value() == 0.0 {
            return Err(GeoError::InvalidDistance(cell_size.value()));
        }
        Ok(SpatialGrid {
            cell_size,
            cells: HashMap::new(),
            len: 0,
        })
    }

    /// Number of items stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cell edge length this grid was created with.
    pub fn cell_size(&self) -> Meters {
        self.cell_size
    }

    fn row_of(&self, lat: f64) -> i64 {
        (lat * METERS_PER_DEG_LAT / self.cell_size.value()).floor() as i64
    }

    /// Longitude scale factor for a latitude row. All points in one row share
    /// the same factor so that column indices are consistent within the row.
    fn row_cos(&self, row: i64) -> f64 {
        let lat_center = (row as f64 + 0.5) * self.cell_size.value() / METERS_PER_DEG_LAT;
        lat_center.to_radians().cos().max(0.01)
    }

    fn col_of(&self, row: i64, lng: f64) -> i64 {
        (lng * METERS_PER_DEG_LAT * self.row_cos(row) / self.cell_size.value()).floor() as i64
    }

    fn key(&self, p: GeoPoint) -> (i64, i64) {
        let row = self.row_of(p.latitude());
        (row, self.col_of(row, p.longitude()))
    }

    /// Inserts an item at `position`.
    pub fn insert(&mut self, position: GeoPoint, item: T) {
        let key = self.key(position);
        self.cells.entry(key).or_default().push((position, item));
        self.len += 1;
    }

    /// All items within `radius` of `center`, with their exact positions.
    ///
    /// Results are unordered; use [`nearest`](Self::nearest) when only the
    /// closest item matters.
    pub fn within(&self, center: GeoPoint, radius: Meters) -> Vec<(GeoPoint, &T)> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, |pos, item, _d| out.push((pos, item)));
        out
    }

    /// Calls `f(position, item, distance)` for every item within `radius`.
    pub fn for_each_within<'a, F>(&'a self, center: GeoPoint, radius: Meters, mut f: F)
    where
        F: FnMut(GeoPoint, &'a T, Meters),
    {
        let dlat_deg = radius.value() / METERS_PER_DEG_LAT;
        let row_min = self.row_of(center.latitude() - dlat_deg) - 1;
        let row_max = self.row_of(center.latitude() + dlat_deg) + 1;
        for row in row_min..=row_max {
            // Longitude span of the radius at this row's scale, widened by a
            // one-cell margin against rounding at row boundaries.
            let dlng_deg = radius.value() / (METERS_PER_DEG_LAT * self.row_cos(row));
            let col_min = self.col_of(row, center.longitude() - dlng_deg) - 1;
            let col_max = self.col_of(row, center.longitude() + dlng_deg) + 1;
            for col in col_min..=col_max {
                if let Some(bucket) = self.cells.get(&(row, col)) {
                    for (pos, item) in bucket {
                        let d = center.equirectangular_distance(*pos);
                        if d <= radius {
                            f(*pos, item, d);
                        }
                    }
                }
            }
        }
    }

    /// The item nearest to `center` within `max_radius`, if any.
    pub fn nearest(&self, center: GeoPoint, max_radius: Meters) -> Option<(GeoPoint, &T, Meters)> {
        let mut best: Option<(GeoPoint, &T, Meters)> = None;
        self.for_each_within(center, max_radius, |pos, item, d| {
            if best.as_ref().is_none_or(|(_, _, bd)| d < *bd) {
                best = Some((pos, item, d));
            }
        });
        best
    }

    /// Iterates over all stored items in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (GeoPoint, &T)> {
        self.cells.values().flatten().map(|(p, t)| (*p, t))
    }
}

impl<T> Extend<(GeoPoint, T)> for SpatialGrid<T> {
    fn extend<I: IntoIterator<Item = (GeoPoint, T)>>(&mut self, iter: I) {
        for (p, t) in iter {
            self.insert(p, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lng: f64) -> GeoPoint {
        GeoPoint::new(lat, lng).unwrap()
    }

    fn grid_with_ring() -> SpatialGrid<usize> {
        // Ten items on a ~1 km ring around a centre, plus one at the centre.
        let mut g = SpatialGrid::new(Meters::new(300.0)).unwrap();
        let c = p(12.97, 77.59);
        g.insert(c, 0);
        for i in 0..10 {
            let q = c.destination(36.0 * i as f64, Meters::new(1_000.0));
            g.insert(q, i + 1);
        }
        g
    }

    #[test]
    fn rejects_degenerate_cell_size() {
        assert!(SpatialGrid::<u8>::new(Meters::new(0.0)).is_err());
        assert!(SpatialGrid::<u8>::new(Meters::new(-5.0)).is_err());
        assert!(SpatialGrid::<u8>::new(Meters::new(f64::NAN)).is_err());
    }

    #[test]
    fn within_small_radius_finds_only_center() {
        let g = grid_with_ring();
        let c = p(12.97, 77.59);
        let near = g.within(c, Meters::new(500.0));
        assert_eq!(near.len(), 1);
        assert_eq!(*near[0].1, 0);
    }

    #[test]
    fn within_large_radius_finds_everything() {
        let g = grid_with_ring();
        let c = p(12.97, 77.59);
        let near = g.within(c, Meters::new(1_500.0));
        assert_eq!(near.len(), 11);
    }

    #[test]
    fn radius_boundary_is_inclusive_enough() {
        // Ring items sit at ~1000 m; a 1005 m radius must include them all
        // despite equirectangular approximation error.
        let g = grid_with_ring();
        let c = p(12.97, 77.59);
        let near = g.within(c, Meters::new(1_005.0));
        assert_eq!(near.len(), 11);
    }

    #[test]
    fn nearest_picks_closest() {
        let g = grid_with_ring();
        let c = p(12.97, 77.59);
        // Query slightly off-centre: the centre item is still nearest.
        let q = c.destination(90.0, Meters::new(100.0));
        let (_, item, d) = g.nearest(q, Meters::new(2_000.0)).unwrap();
        assert_eq!(*item, 0);
        assert!((d.value() - 100.0).abs() < 2.0);
    }

    #[test]
    fn nearest_none_when_out_of_radius() {
        let g = grid_with_ring();
        let far = p(13.5, 78.2);
        assert!(g.nearest(far, Meters::new(1_000.0)).is_none());
    }

    #[test]
    fn len_and_iter_agree() {
        let g = grid_with_ring();
        assert_eq!(g.len(), 11);
        assert!(!g.is_empty());
        assert_eq!(g.iter().count(), 11);
    }

    #[test]
    fn extend_inserts_all() {
        let mut g = SpatialGrid::new(Meters::new(100.0)).unwrap();
        g.extend((0..5).map(|i| (p(10.0 + i as f64 * 0.001, 20.0), i)));
        assert_eq!(g.len(), 5);
    }
}
