//! Timestamped-free geometric polylines used by route tracking.
//!
//! Routes in PMWare are series of coordinates (§2.1.2 of the paper); this
//! module provides the purely geometric operations on such series — length,
//! resampling at a fixed spacing, Douglas–Peucker simplification, and
//! point-to-path distance — leaving timestamps to the higher layers.

use serde::{Deserialize, Serialize};

use crate::{GeoError, GeoPoint, Meters};

/// A sequence of at least two geographic points forming a path.
///
/// # Examples
///
/// ```
/// use pmware_geo::{GeoPoint, Polyline, Meters};
///
/// let line = Polyline::new(vec![
///     GeoPoint::new(0.0, 0.0)?,
///     GeoPoint::new(0.0, 0.01)?,
///     GeoPoint::new(0.01, 0.01)?,
/// ])?;
/// assert!(line.length() > Meters::new(2_000.0));
/// # Ok::<(), pmware_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    points: Vec<GeoPoint>,
}

impl Polyline {
    /// Creates a polyline from its vertices.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::TooFewPoints`] if fewer than two points are given.
    pub fn new(points: Vec<GeoPoint>) -> Result<Self, GeoError> {
        if points.len() < 2 {
            return Err(GeoError::TooFewPoints {
                required: 2,
                actual: points.len(),
            });
        }
        Ok(Polyline { points })
    }

    /// The vertices of the path.
    pub fn points(&self) -> &[GeoPoint] {
        &self.points
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false`: a polyline holds at least two points.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First vertex.
    pub fn start(&self) -> GeoPoint {
        self.points[0]
    }

    /// Last vertex.
    pub fn end(&self) -> GeoPoint {
        *self.points.last().expect("polyline has >= 2 points")
    }

    /// Total path length (sum of segment great-circle lengths).
    pub fn length(&self) -> Meters {
        self.points
            .windows(2)
            .map(|w| w[0].haversine_distance(w[1]))
            .sum()
    }

    /// Resamples the path at an approximately fixed `spacing`, always keeping
    /// the original endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidDistance`] if `spacing` is not positive.
    pub fn resample(&self, spacing: Meters) -> Result<Polyline, GeoError> {
        if !spacing.is_valid_distance() || spacing.value() == 0.0 {
            return Err(GeoError::InvalidDistance(spacing.value()));
        }
        let mut out = vec![self.start()];
        let mut carry = 0.0_f64;
        for w in self.points.windows(2) {
            let seg_len = w[0].haversine_distance(w[1]).value();
            if seg_len == 0.0 {
                continue;
            }
            let mut offset = spacing.value() - carry;
            while offset < seg_len {
                out.push(w[0].lerp(w[1], offset / seg_len));
                offset += spacing.value();
            }
            carry = (carry + seg_len) % spacing.value();
        }
        if out.last() != Some(&self.end()) {
            out.push(self.end());
        }
        Polyline::new(out)
    }

    /// Simplifies the path with the Douglas–Peucker algorithm, dropping
    /// vertices that deviate less than `tolerance` from the simplified shape.
    pub fn simplify(&self, tolerance: Meters) -> Polyline {
        let mut keep = vec![false; self.points.len()];
        keep[0] = true;
        *keep.last_mut().expect("non-empty") = true;
        douglas_peucker(&self.points, 0, self.points.len() - 1, tolerance, &mut keep);
        let pts: Vec<GeoPoint> = self
            .points
            .iter()
            .zip(&keep)
            .filter_map(|(p, k)| k.then_some(*p))
            .collect();
        Polyline::new(pts).expect("endpoints always kept")
    }

    /// The point a fraction `t` of the way along the path by arc length.
    ///
    /// `t = 0` is the start, `t = 1` the end; `t` is clamped to `[0, 1]`.
    /// Degenerate zero-length paths return the start point.
    pub fn point_at_fraction(&self, t: f64) -> GeoPoint {
        let t = t.clamp(0.0, 1.0);
        let total = self.length().value();
        if total == 0.0 {
            return self.start();
        }
        let target = total * t;
        let mut walked = 0.0;
        for w in self.points.windows(2) {
            let seg = w[0].haversine_distance(w[1]).value();
            if walked + seg >= target {
                if seg == 0.0 {
                    return w[0];
                }
                return w[0].lerp(w[1], (target - walked) / seg);
            }
            walked += seg;
        }
        self.end()
    }

    /// Minimum distance from `point` to any segment of the path.
    pub fn distance_to(&self, point: GeoPoint) -> Meters {
        self.points
            .windows(2)
            .map(|w| point_segment_distance(point, w[0], w[1]))
            .fold(Meters::new(f64::MAX), Meters::min)
    }
}

/// Perpendicular (local planar) distance from `p` to segment `a`–`b`.
fn point_segment_distance(p: GeoPoint, a: GeoPoint, b: GeoPoint) -> Meters {
    // Project into a local equirectangular plane anchored at `a`.
    let cos_lat = a.latitude().to_radians().cos();
    let to_xy = |q: GeoPoint| -> (f64, f64) {
        (
            (q.longitude() - a.longitude()) * cos_lat,
            q.latitude() - a.latitude(),
        )
    };
    let (px, py) = to_xy(p);
    let (bx, by) = to_xy(b);
    let seg_sq = bx * bx + by * by;
    let t = if seg_sq == 0.0 {
        0.0
    } else {
        ((px * bx + py * by) / seg_sq).clamp(0.0, 1.0)
    };
    let closest = a.lerp(b, t);
    p.equirectangular_distance(closest)
}

fn douglas_peucker(
    pts: &[GeoPoint],
    first: usize,
    last: usize,
    tolerance: Meters,
    keep: &mut [bool],
) {
    if last <= first + 1 {
        return;
    }
    let mut max_d = Meters::new(0.0);
    let mut max_i = first;
    for i in first + 1..last {
        let d = point_segment_distance(pts[i], pts[first], pts[last]);
        if d > max_d {
            max_d = d;
            max_i = i;
        }
    }
    if max_d > tolerance {
        keep[max_i] = true;
        douglas_peucker(pts, first, max_i, tolerance, keep);
        douglas_peucker(pts, max_i, last, tolerance, keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lng: f64) -> GeoPoint {
        GeoPoint::new(lat, lng).unwrap()
    }

    fn straightish() -> Polyline {
        Polyline::new(vec![
            p(0.0, 0.0),
            p(0.0, 0.005),
            p(0.0001, 0.01),
            p(0.0, 0.02),
        ])
        .unwrap()
    }

    #[test]
    fn requires_two_points() {
        assert!(Polyline::new(vec![]).is_err());
        assert!(Polyline::new(vec![p(0.0, 0.0)]).is_err());
        assert!(Polyline::new(vec![p(0.0, 0.0), p(0.0, 0.0)]).is_ok());
    }

    #[test]
    fn length_of_one_degree_of_longitude_at_equator() {
        let line = Polyline::new(vec![p(0.0, 0.0), p(0.0, 1.0)]).unwrap();
        assert!((line.length().value() - 111_195.0).abs() < 200.0);
    }

    #[test]
    fn resample_spacing_is_respected() {
        let line = Polyline::new(vec![p(0.0, 0.0), p(0.0, 0.01)]).unwrap(); // ~1112 m
        let resampled = line.resample(Meters::new(100.0)).unwrap();
        // Expect ~12 points: start + 10 interior + end.
        assert!(
            resampled.len() >= 11 && resampled.len() <= 13,
            "got {}",
            resampled.len()
        );
        assert_eq!(resampled.start(), line.start());
        assert_eq!(resampled.end(), line.end());
        for w in resampled.points().windows(2) {
            let d = w[0].haversine_distance(w[1]).value();
            assert!(d <= 101.0, "segment too long: {d}");
        }
    }

    #[test]
    fn resample_rejects_bad_spacing() {
        assert!(straightish().resample(Meters::new(0.0)).is_err());
        assert!(straightish().resample(Meters::new(-1.0)).is_err());
    }

    #[test]
    fn resample_handles_duplicate_vertices() {
        let line = Polyline::new(vec![p(0.0, 0.0), p(0.0, 0.0), p(0.0, 0.002)]).unwrap();
        let resampled = line.resample(Meters::new(50.0)).unwrap();
        assert!(resampled.len() >= 2);
    }

    #[test]
    fn simplify_drops_collinear_noise() {
        let line = straightish();
        let simplified = line.simplify(Meters::new(50.0));
        assert!(simplified.len() < line.len());
        assert_eq!(simplified.start(), line.start());
        assert_eq!(simplified.end(), line.end());
    }

    #[test]
    fn simplify_keeps_real_corners() {
        let corner = Polyline::new(vec![p(0.0, 0.0), p(0.0, 0.01), p(0.01, 0.01)]).unwrap();
        let simplified = corner.simplify(Meters::new(10.0));
        assert_eq!(simplified.len(), 3, "a genuine corner must survive");
    }

    #[test]
    fn point_at_fraction_endpoints_and_middle() {
        let line = Polyline::new(vec![p(0.0, 0.0), p(0.0, 0.01), p(0.0, 0.02)]).unwrap();
        assert_eq!(line.point_at_fraction(0.0), line.start());
        assert_eq!(line.point_at_fraction(1.0), line.end());
        let mid = line.point_at_fraction(0.5);
        let d = mid.haversine_distance(p(0.0, 0.01)).value();
        assert!(d < 1.0, "midpoint off by {d} m");
        // Clamping out-of-range t.
        assert_eq!(line.point_at_fraction(-0.5), line.start());
        assert_eq!(line.point_at_fraction(2.0), line.end());
    }

    #[test]
    fn point_at_fraction_zero_length_path() {
        let line = Polyline::new(vec![p(1.0, 1.0), p(1.0, 1.0)]).unwrap();
        assert_eq!(line.point_at_fraction(0.7), p(1.0, 1.0));
    }

    #[test]
    fn distance_to_on_path_is_zero() {
        let line = Polyline::new(vec![p(0.0, 0.0), p(0.0, 0.01)]).unwrap();
        let mid = p(0.0, 0.005);
        assert!(line.distance_to(mid).value() < 1.0);
    }

    #[test]
    fn distance_to_off_path_point() {
        let line = Polyline::new(vec![p(0.0, 0.0), p(0.0, 0.01)]).unwrap();
        let off = p(0.001, 0.005); // ~111 m north of the midpoint
        let d = line.distance_to(off).value();
        assert!((d - 111.3).abs() < 2.0, "got {d}");
    }

    #[test]
    fn distance_beyond_endpoint_measured_to_endpoint() {
        let line = Polyline::new(vec![p(0.0, 0.0), p(0.0, 0.01)]).unwrap();
        let beyond = p(0.0, 0.02);
        let d = line.distance_to(beyond).value();
        let expected = p(0.0, 0.02).haversine_distance(p(0.0, 0.01)).value();
        assert!((d - expected).abs() < 2.0);
    }
}
