//! Property-based tests for the geographic primitives.

use pmware_geo::{grid::SpatialGrid, BoundingBox, GeoPoint, Meters, Polyline};
use proptest::prelude::*;

/// Strategy producing valid city-scale coordinates (away from poles and the
/// antimeridian, like every simulated world in this workspace).
fn city_point() -> impl Strategy<Value = GeoPoint> {
    (-60.0..60.0f64, -170.0..170.0f64)
        .prop_map(|(lat, lng)| GeoPoint::new(lat, lng).expect("in range"))
}

fn local_pair() -> impl Strategy<Value = (GeoPoint, GeoPoint)> {
    (city_point(), 0.0..360.0f64, 0.0..5_000.0f64).prop_map(|(a, bearing, dist)| {
        let b = a.destination(bearing, Meters::new(dist));
        (a, b)
    })
}

proptest! {
    #[test]
    fn haversine_is_symmetric((a, b) in local_pair()) {
        let ab = a.haversine_distance(b).value();
        let ba = b.haversine_distance(a).value();
        prop_assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn haversine_is_nonnegative(a in city_point(), b in city_point()) {
        prop_assert!(a.haversine_distance(b).value() >= 0.0);
    }

    #[test]
    fn triangle_inequality(a in city_point(), b in city_point(), c in city_point()) {
        let ab = a.haversine_distance(b).value();
        let bc = b.haversine_distance(c).value();
        let ac = a.haversine_distance(c).value();
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn destination_travels_requested_distance(
        a in city_point(),
        bearing in 0.0..360.0f64,
        dist in 1.0..50_000.0f64,
    ) {
        let b = a.destination(bearing, Meters::new(dist));
        let measured = a.haversine_distance(b).value();
        prop_assert!((measured - dist).abs() < dist * 0.001 + 0.5,
            "asked {dist}, got {measured}");
    }

    #[test]
    fn equirectangular_matches_haversine_locally((a, b) in local_pair()) {
        let h = a.haversine_distance(b).value();
        let e = a.equirectangular_distance(b).value();
        prop_assert!((h - e).abs() <= h * 0.01 + 0.5, "h={h} e={e}");
    }

    #[test]
    fn lerp_stays_in_enclosing_bbox((a, b) in local_pair(), t in 0.0..1.0f64) {
        let bbox = BoundingBox::enclosing(&[a, b]).unwrap();
        prop_assert!(bbox.contains(a.lerp(b, t)));
    }

    #[test]
    fn enclosing_bbox_contains_all(points in prop::collection::vec(city_point(), 1..20)) {
        let bbox = BoundingBox::enclosing(&points).unwrap();
        for p in &points {
            prop_assert!(bbox.contains(*p));
        }
    }

    #[test]
    fn grid_within_agrees_with_brute_force(
        center in city_point(),
        offsets in prop::collection::vec((0.0..360.0f64, 0.0..3_000.0f64), 1..40),
        radius in 100.0..2_000.0f64,
    ) {
        let mut grid = SpatialGrid::new(Meters::new(400.0)).unwrap();
        let mut all = Vec::new();
        for (i, (bearing, dist)) in offsets.iter().enumerate() {
            let p = center.destination(*bearing, Meters::new(*dist));
            grid.insert(p, i);
            all.push(p);
        }
        let mut found: Vec<usize> = grid
            .within(center, Meters::new(radius))
            .into_iter()
            .map(|(_, i)| *i)
            .collect();
        found.sort_unstable();
        let mut expected: Vec<usize> = all
            .iter()
            .enumerate()
            .filter(|(_, p)| center.equirectangular_distance(**p).value() <= radius)
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(found, expected);
    }

    #[test]
    fn polyline_simplify_never_longer(
        (a, b) in local_pair(),
        jitter in prop::collection::vec((0.0..360.0f64, 0.0..100.0f64), 2..15),
        tol in 1.0..500.0f64,
    ) {
        // Build a noisy path from a to b.
        let mut pts = vec![a];
        let n = jitter.len();
        for (i, (bearing, dist)) in jitter.iter().enumerate() {
            let base = a.lerp(b, (i + 1) as f64 / (n + 1) as f64);
            pts.push(base.destination(*bearing, Meters::new(*dist)));
        }
        pts.push(b);
        let line = Polyline::new(pts).unwrap();
        let simplified = line.simplify(Meters::new(tol));
        prop_assert!(simplified.len() <= line.len());
        prop_assert_eq!(simplified.start(), line.start());
        prop_assert_eq!(simplified.end(), line.end());
        prop_assert!(simplified.length() <= line.length() + Meters::new(1e-6));
    }

    #[test]
    fn resample_preserves_endpoints_and_bounds_segment_length(
        (a, b) in local_pair(),
        spacing in 20.0..500.0f64,
    ) {
        prop_assume!(a.haversine_distance(b).value() > 1.0);
        let line = Polyline::new(vec![a, b]).unwrap();
        let r = line.resample(Meters::new(spacing)).unwrap();
        prop_assert_eq!(r.start(), a);
        prop_assert_eq!(r.end(), b);
        for w in r.points().windows(2) {
            prop_assert!(w[0].haversine_distance(w[1]).value() <= spacing * 1.02 + 0.5);
        }
    }
}
