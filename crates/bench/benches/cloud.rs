//! Criterion micro-benchmarks for the cloud instance (CRIT): request
//! routing, auth validation, profile sync, analytics queries, and the
//! GCA discovery offload — per-request server-side costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmware_algorithms::signature::DiscoveredPlaceId;
use pmware_cloud::{CellDatabase, CloudInstance, MobilityProfile, Request};
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::tower::NetworkLayer;
use pmware_world::{CellGlobalId, CellId, GsmObservation, Lac, Plmn, SimTime};
use serde_json::json;
use std::hint::black_box;

fn registered_cloud() -> (CloudInstance, String) {
    let world = WorldBuilder::new(RegionProfile::test_tiny())
        .seed(30)
        .build();
    let cloud = CloudInstance::new(CellDatabase::from_world(&world), 31);
    let resp = cloud.handle(
        &Request::post(
            "/api/v1/registration",
            json!({"imei": "350400", "email": "bench@pmware.study"}),
        ),
        SimTime::EPOCH,
    );
    let token = resp.json()["token"].as_str().unwrap().to_owned();
    (cloud, token)
}

fn profile_for_day(day: u64) -> MobilityProfile {
    let mut p = MobilityProfile::new(day);
    for (i, hour) in [(0u32, 0u64), (1, 9), (0, 18)].iter().enumerate() {
        let _ = i;
        p.places.push(pmware_cloud::PlaceEntry {
            place: DiscoveredPlaceId(hour.0),
            arrival: SimTime::from_day_time(day, hour.1, 0, 0),
            departure: SimTime::from_day_time(day, (hour.1 + 5).min(23), 0, 0),
        });
    }
    p
}

fn bench_auth_and_routing(c: &mut Criterion) {
    let (cloud, token) = registered_cloud();
    let mut group = c.benchmark_group("cloud");
    group.bench_function("registration", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            cloud.handle(
                &Request::post(
                    "/api/v1/registration",
                    json!({"imei": format!("imei-{i}"), "email": format!("u{i}@x.com")}),
                ),
                SimTime::EPOCH,
            )
        });
    });
    let get_places = Request::get("/api/v1/places").with_token(&token);
    group.bench_function("authed-get-places", |b| {
        b.iter(|| cloud.handle(black_box(&get_places), SimTime::EPOCH));
    });
    let bad = Request::get("/api/v1/places").with_token("tok-bogus");
    group.bench_function("rejected-token", |b| {
        b.iter(|| cloud.handle(black_box(&bad), SimTime::EPOCH));
    });
    group.finish();
}

fn bench_profile_sync_and_analytics(c: &mut Criterion) {
    let (cloud, token) = registered_cloud();
    // Preload a month of history.
    for day in 0..28 {
        let req = Request::post(
            "/api/v1/profiles/sync",
            json!({"profile": profile_for_day(day)}),
        )
        .with_token(&token);
        assert!(cloud.handle(&req, SimTime::EPOCH).is_success());
    }
    let mut group = c.benchmark_group("cloud-data");
    let sync = Request::post(
        "/api/v1/profiles/sync",
        json!({"profile": profile_for_day(29)}),
    )
    .with_token(&token);
    group.bench_function("profile-sync", |b| {
        b.iter(|| cloud.handle(black_box(&sync), SimTime::EPOCH));
    });
    let arrival = Request::post(
        "/api/v1/analytics/arrival",
        json!({"place": 0, "window": [15, 24]}),
    )
    .with_token(&token);
    group.bench_function("analytics-arrival", |b| {
        b.iter(|| cloud.handle(black_box(&arrival), SimTime::EPOCH));
    });
    let next =
        Request::post("/api/v1/analytics/next_place", json!({"place": 1})).with_token(&token);
    group.bench_function("analytics-markov", |b| {
        b.iter(|| cloud.handle(black_box(&next), SimTime::EPOCH));
    });
    group.finish();
}

fn bench_discovery_offload(c: &mut Criterion) {
    let (cloud, token) = registered_cloud();
    let cell = |id: u32| CellGlobalId {
        plmn: Plmn { mcc: 404, mnc: 45 },
        lac: Lac(1),
        cell: CellId(id),
    };
    let mut group = c.benchmark_group("cloud-offload");
    group.sample_size(20);
    for minutes in [1_440u64, 10_080] {
        let observations: Vec<GsmObservation> = (0..minutes)
            .map(|m| GsmObservation {
                time: SimTime::from_seconds(m * 60),
                cell: cell(((m / 480) * 2 + m % 2) as u32),
                layer: NetworkLayer::G2,
                rssi_dbm: -70.0,
            })
            .collect();
        let req = Request::post(
            "/api/v1/places/discover",
            json!({"observations": observations}),
        )
        .with_token(&token);
        group.bench_with_input(BenchmarkId::new("gca-discover", minutes), &req, |b, req| {
            b.iter(|| cloud.handle(black_box(req), SimTime::EPOCH));
        });
    }
    group.finish();
}

fn bench_geolocate(c: &mut Criterion) {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(33)
        .build();
    let cloud = CloudInstance::new(CellDatabase::from_world(&world), 34);
    let resp = cloud.handle(
        &Request::post(
            "/api/v1/registration",
            json!({"imei": "350401", "email": "geo@pmware.study"}),
        ),
        SimTime::EPOCH,
    );
    let token = resp.json()["token"].as_str().unwrap().to_owned();
    let tower = world.towers()[0].cell();
    let req = Request::post(
        "/api/v1/misc/geolocate",
        json!({
            "mcc": tower.plmn.mcc,
            "mnc": tower.plmn.mnc,
            "lac": tower.lac.0,
            "cid": tower.cell.0,
        }),
    )
    .with_token(&token);
    let mut group = c.benchmark_group("cloud-misc");
    group.bench_function("geolocate", |b| {
        b.iter(|| cloud.handle(black_box(&req), SimTime::EPOCH));
    });
    group.finish();
}

/// Keep the full suite's wall-clock reasonable: per-benchmark sampling is
/// trimmed (the workloads here are deterministic simulations, not noisy
/// syscalls, so 20 samples resolve them fine).
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_auth_and_routing,
    bench_profile_sync_and_analytics,
    bench_discovery_offload,
    bench_geolocate

}
criterion_main!(benches);
