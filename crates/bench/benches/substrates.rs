//! Criterion micro-benchmarks for the simulation substrates (CRIT):
//! world construction, radio propagation, spatial indexing, and
//! trajectory evaluation — the per-tick costs behind every experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmware_geo::{grid::SpatialGrid, GeoPoint, Meters};
use pmware_mobility::Population;
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::radio::{RadioConfig, RadioEnvironment};
use pmware_world::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_world_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("world");
    group.sample_size(20);
    group.bench_function("build-urban-india", |b| {
        b.iter(|| {
            WorldBuilder::new(RegionProfile::urban_india())
                .seed(black_box(5))
                .build()
        });
    });
    group.bench_function("build-test-tiny", |b| {
        b.iter(|| {
            WorldBuilder::new(RegionProfile::test_tiny())
                .seed(black_box(5))
                .build()
        });
    });
    group.finish();
}

fn bench_radio(c: &mut Criterion) {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(6)
        .build();
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let pos = world.places()[0].position();
    let mut group = c.benchmark_group("radio");
    group.bench_function("observe-gsm", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        let mut serving = None;
        b.iter(|| {
            let out = env.observe_gsm(black_box(pos), SimTime::EPOCH, serving, &mut rng);
            if let Some((_, s)) = out {
                serving = Some(s);
            }
            out
        });
    });
    group.bench_function("scan-wifi", |b| {
        let mut rng = StdRng::seed_from_u64(8);
        b.iter(|| env.scan_wifi(black_box(pos), SimTime::EPOCH, &mut rng));
    });
    group.bench_function("fix-gps", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| env.fix_gps(black_box(pos), SimTime::EPOCH, &mut rng));
    });
    group.finish();
}

fn bench_spatial_grid(c: &mut Criterion) {
    let center = GeoPoint::new(12.97, 77.59).unwrap();
    let mut group = c.benchmark_group("spatial-grid");
    for n in [100usize, 1_000, 10_000] {
        let mut grid = SpatialGrid::new(Meters::new(250.0)).unwrap();
        for i in 0..n {
            let bearing = (i * 37 % 360) as f64;
            let dist = (i * 13 % 3_000) as f64;
            grid.insert(center.destination(bearing, Meters::new(dist)), i);
        }
        group.bench_with_input(BenchmarkId::new("within-500m", n), &grid, |b, g| {
            b.iter(|| g.within(black_box(center), Meters::new(500.0)).len());
        });
        group.bench_with_input(BenchmarkId::new("nearest", n), &grid, |b, g| {
            b.iter(|| g.nearest(black_box(center), Meters::new(2_000.0)));
        });
    }
    group.finish();
}

fn bench_itinerary(c: &mut Criterion) {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(10)
        .build();
    let pop = Population::generate(&world, 1, 11);
    let agent = pop.agents()[0].clone();
    let mut group = c.benchmark_group("mobility");
    group.sample_size(30);
    group.bench_function("build-itinerary-14d", |b| {
        b.iter(|| pop.itinerary(&world, agent.id(), black_box(14)));
    });
    let it = pop.itinerary(&world, agent.id(), 14);
    group.bench_function("position-at", |b| {
        let mut minute = 0u64;
        b.iter(|| {
            minute = (minute + 61) % (14 * 24 * 60);
            it.position_at(SimTime::from_seconds(black_box(minute * 60)))
        });
    });
    group.bench_function("visits", |b| {
        b.iter(|| it.visits().len());
    });
    group.finish();
}

fn bench_geo(c: &mut Criterion) {
    let a = GeoPoint::new(12.9716, 77.5946).unwrap();
    let b2 = GeoPoint::new(12.9816, 77.6046).unwrap();
    let mut group = c.benchmark_group("geo");
    group.bench_function("haversine", |b| {
        b.iter(|| black_box(a).haversine_distance(black_box(b2)));
    });
    group.bench_function("equirectangular", |b| {
        b.iter(|| black_box(a).equirectangular_distance(black_box(b2)));
    });
    group.bench_function("destination", |b| {
        b.iter(|| black_box(a).destination(black_box(47.0), Meters::new(1_234.0)));
    });
    group.finish();
}

/// Keep the full suite's wall-clock reasonable: per-benchmark sampling is
/// trimmed (the workloads here are deterministic simulations, not noisy
/// syscalls, so 20 samples resolve them fine).
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_world_build,
    bench_radio,
    bench_spatial_grid,
    bench_itinerary,
    bench_geo

}
criterion_main!(benches);
