//! Criterion micro-benchmarks for the middleware layer (CRIT): scheduler
//! decisions, intent-bus broadcasts, privacy coarsening, and a full PMS
//! simulated day — the overhead PMWare itself adds on the phone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmware_cloud::{CellDatabase, CloudInstance, SharedCloud};
use pmware_core::apps::Demand;
use pmware_core::intents::{actions, Intent, IntentBus, IntentFilter};
use pmware_core::pms::{PmsConfig, PmwareMobileService};
use pmware_core::preferences::coarsen_position;
use pmware_core::requirements::{AppRequirement, Granularity};
use pmware_core::sensing::{SensingConfig, SensingScheduler};
use pmware_device::{Device, EnergyModel};
use pmware_geo::GeoPoint;
use pmware_mobility::Population;
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::radio::{RadioConfig, RadioEnvironment};
use pmware_world::{MotionState, SimTime};
use serde_json::json;
use std::hint::black_box;

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    let demand = Demand {
        granularity: Some(Granularity::Room),
        route: None,
        social: true,
    };
    group.bench_function("decide", |b| {
        let mut s = SensingScheduler::new(SensingConfig::default());
        let mut minute = 0u64;
        b.iter(|| {
            minute += 1;
            let motion = if minute % 90 < 10 {
                MotionState::Moving
            } else {
                MotionState::Stationary
            };
            s.decide(
                SimTime::from_seconds(black_box(minute * 60)),
                demand,
                motion,
            )
        });
    });
    group.finish();
}

fn bench_intent_bus(c: &mut Criterion) {
    let mut group = c.benchmark_group("intent-bus");
    for receivers in [1usize, 8, 64] {
        group.bench_with_input(
            BenchmarkId::new("broadcast", receivers),
            &receivers,
            |b, &n| {
                let mut bus = IntentBus::new();
                let rxs: Vec<_> = (0..n)
                    .map(|i| bus.register(format!("app-{i}"), IntentFilter::all()))
                    .collect();
                let intent = Intent::new(
                    actions::PLACE_ARRIVAL,
                    SimTime::EPOCH,
                    json!({"place": 1, "latitude": 12.9, "longitude": 77.5}),
                );
                b.iter(|| {
                    bus.broadcast(black_box(&intent));
                    // Drain so queues stay bounded.
                    for rx in &rxs {
                        while rx.try_recv().is_ok() {}
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_coarsening(c: &mut Criterion) {
    let pos = GeoPoint::new(12.971234, 77.594567).unwrap();
    let mut group = c.benchmark_group("privacy");
    for g in [Granularity::Room, Granularity::Building, Granularity::Area] {
        group.bench_with_input(BenchmarkId::new("coarsen", g.label()), &g, |b, &g| {
            b.iter(|| coarsen_position(black_box(pos), g));
        });
    }
    group.finish();
}

fn bench_full_pms_day(c: &mut Criterion) {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(20)
        .build();
    let pop = Population::generate(&world, 1, 21);
    let it = pop.itinerary(&world, pop.agents()[0].id(), 14);

    let mut group = c.benchmark_group("pms");
    group.sample_size(10);
    group.bench_function("one-simulated-day", |b| {
        b.iter(|| {
            let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 22));
            let env = RadioEnvironment::new(&world, RadioConfig::default());
            let device = Device::new(env, &it, EnergyModel::htc_explorer(), 23);
            let mut pms = PmwareMobileService::new(
                device,
                cloud,
                PmsConfig::for_participant(99),
                SimTime::EPOCH,
            )
            .expect("register");
            let _rx = pms.register_app(
                "bench-app",
                AppRequirement::places(Granularity::Building),
                IntentFilter::all(),
            );
            pms.run(SimTime::from_day_time(1, 0, 0, 0)).expect("run");
            pms.counters().arrivals
        });
    });
    group.finish();
}

/// Keep the full suite's wall-clock reasonable: per-benchmark sampling is
/// trimmed (the workloads here are deterministic simulations, not noisy
/// syscalls, so 20 samples resolve them fine).
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_scheduler,
    bench_intent_bus,
    bench_coarsening,
    bench_full_pms_day

}
criterion_main!(benches);
