//! Criterion micro-benchmarks for the discovery algorithms (CRIT):
//! GCA, SensLoc, Kang clustering, route similarity, and the matching
//! metric, on realistic simulated observation streams.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmware_algorithms::gca::{self, CellPlaceTracker, GcaConfig, MovementGraph};
use pmware_algorithms::gps_cluster::{self, KangConfig};
use pmware_algorithms::matching::{classify_places, GroundTruthVisit};
use pmware_algorithms::route::{route_similarity, RouteGeometry};
use pmware_algorithms::sensloc::{self, SensLocConfig};
use pmware_device::{Device, EnergyModel};
use pmware_mobility::Population;
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::radio::{RadioConfig, RadioEnvironment};
use pmware_world::{GpsFix, GsmObservation, SimTime, WifiScan};
use std::hint::black_box;

struct Streams {
    gsm: Vec<GsmObservation>,
    wifi: Vec<WifiScan>,
    gps: Vec<GpsFix>,
    truth: Vec<GroundTruthVisit>,
}

/// One simulated week of a participant's sensor data, computed once per
/// process (five benchmark functions share it).
fn week() -> &'static Streams {
    static WEEK: std::sync::OnceLock<Streams> = std::sync::OnceLock::new();
    WEEK.get_or_init(|| simulate_week(7))
}

fn simulate_week(days: u64) -> Streams {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(77)
        .build();
    let pop = Population::generate(&world, 1, 78);
    let it = pop.itinerary(&world, pop.agents()[0].id(), days);
    let truth = it
        .visits()
        .iter()
        .map(|v| GroundTruthVisit {
            place: v.place,
            arrival: v.arrival,
            departure: v.departure,
        })
        .collect();
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let mut phone = Device::new(env, &it, EnergyModel::htc_explorer(), 79);
    let mut gsm = Vec::new();
    let mut wifi = Vec::new();
    let mut gps = Vec::new();
    for minute in 0..days * 24 * 60 {
        let t = SimTime::from_seconds(minute * 60);
        if let Some(obs) = phone.sample_gsm(t) {
            gsm.push(obs);
        }
        if minute % 5 == 0 {
            wifi.push(phone.scan_wifi(t).clone());
        }
        if minute % 2 == 0 {
            if let Some(fix) = phone.fix_gps(t) {
                gps.push(fix);
            }
        }
    }
    Streams {
        gsm,
        wifi,
        gps,
        truth,
    }
}

fn bench_gca(c: &mut Criterion) {
    let week = week();
    let config = GcaConfig::default();
    let mut group = c.benchmark_group("gca");
    for days in [1u64, 3, 7] {
        let n = (days * 24 * 60) as usize;
        let slice = &week.gsm[..n.min(week.gsm.len())];
        group.bench_with_input(BenchmarkId::new("discover", days), &slice, |b, s| {
            b.iter(|| gca::discover_places(black_box(s), &config));
        });
        group.bench_with_input(BenchmarkId::new("graph-build", days), &slice, |b, s| {
            b.iter(|| MovementGraph::build(black_box(s), &config));
        });
    }
    // Online tracking over one day, places known.
    let out = gca::discover_places(&week.gsm, &config);
    group.bench_function("tracker-update-day", |b| {
        b.iter(|| {
            let mut tracker = CellPlaceTracker::new(&out.places, 2, 4);
            let mut events = 0;
            for obs in &week.gsm[..1440.min(week.gsm.len())] {
                events += tracker.update(black_box(obs)).len();
            }
            events
        });
    });
    group.finish();
}

fn bench_sensloc(c: &mut Criterion) {
    let week = week();
    let config = SensLocConfig::default();
    let mut group = c.benchmark_group("sensloc");
    for scans in [288usize, 1_000, 2_016] {
        let slice = &week.wifi[..scans.min(week.wifi.len())];
        group.bench_with_input(BenchmarkId::new("discover", slice.len()), &slice, |b, s| {
            b.iter(|| sensloc::discover_places(black_box(s), &config));
        });
    }
    group.finish();
}

fn bench_kang(c: &mut Criterion) {
    let week = week();
    let config = KangConfig::default();
    let mut group = c.benchmark_group("kang");
    group.bench_function("discover-week", |b| {
        b.iter(|| gps_cluster::discover_places(black_box(&week.gps), &config));
    });
    group.finish();
}

fn bench_routes(c: &mut Criterion) {
    use pmware_world::{CellGlobalId, CellId, Lac, Plmn};
    let cell = |id: u32| CellGlobalId {
        plmn: Plmn { mcc: 404, mnc: 45 },
        lac: Lac(1),
        cell: CellId(id),
    };
    let a = RouteGeometry::CellSequence((0..30).map(cell).collect());
    let b = RouteGeometry::CellSequence((0..30).map(|i| cell(i + i % 3)).collect());
    let mut group = c.benchmark_group("routes");
    group.bench_function("cell-similarity-30", |bch| {
        bch.iter(|| route_similarity(black_box(&a), black_box(&b)));
    });
    let week = week();
    let line1 = pmware_algorithms::route::gps_route(
        &week.gps,
        SimTime::from_seconds(8 * 3_600),
        SimTime::from_seconds(10 * 3_600),
    );
    let line2 = pmware_algorithms::route::gps_route(
        &week.gps,
        SimTime::from_seconds(32 * 3_600),
        SimTime::from_seconds(34 * 3_600),
    );
    if let (Some(l1), Some(l2)) = (line1, line2) {
        group.bench_function("gps-similarity", |bch| {
            bch.iter(|| route_similarity(black_box(&l1), black_box(&l2)));
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let week = week();
    let out = gca::discover_places(&week.gsm, &GcaConfig::default());
    let mut group = c.benchmark_group("matching");
    group.bench_function("classify-week", |b| {
        b.iter(|| classify_places(black_box(&out.places), black_box(&week.truth), 0.2));
    });
    group.finish();
}

/// Keep the full suite's wall-clock reasonable: per-benchmark sampling is
/// trimmed (the workloads here are deterministic simulations, not noisy
/// syscalls, so 20 samples resolve them fine).
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_gca,
    bench_sensloc,
    bench_kang,
    bench_routes,
    bench_matching

}
criterion_main!(benches);
