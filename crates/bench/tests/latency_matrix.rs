//! The latency-model determinism golden tests.
//!
//! The service-time model is an *annotation* layer: with no shedding
//! threshold it may never change a study outcome — discovery, tagging,
//! energy, and the cloud's request count must be bit-identical to a run
//! without the model. And the artefacts it adds on top — latency
//! histograms, request-span JSONL, and the Chrome trace — must be
//! byte-reproducible: same seed, same bytes, at any worker thread count.
//!
//! Span determinism leans on one structural fact: every span id of a
//! trace is allocated by the single thread driving that client (root →
//! attempt → server-side children during the synchronous send → backoff),
//! so the tree never depends on cross-participant scheduling.

use pmware_bench::deployment::{run_study, run_study_with_options, StudyConfig, StudyResults};
use pmware_cloud::LatencyProfile;
use pmware_obs::Obs;
use pmware_world::builder::RegionProfile;

fn config(threads: usize, obs: Obs) -> StudyConfig {
    StudyConfig {
        participants: 5,
        days: 3,
        seed: 4242,
        region: RegionProfile::urban_india(),
        threads,
        obs,
        offload_batch_days: 0,
        storage: None,
    }
}

/// Runs one latency-enabled, span-collecting study and returns
/// (results, metrics JSON, span JSONL, Chrome trace).
fn modeled(threads: usize) -> (StudyResults, String, String, String) {
    let obs = Obs::with_trace(65_536).with_spans();
    let results = run_study_with_options(
        &config(threads, obs.clone()),
        None,
        Some(LatencyProfile::calibrated(7)),
    );
    (
        results,
        obs.metrics_json().expect("metrics enabled"),
        obs.spans_jsonl().expect("spans enabled"),
        obs.spans_chrome().expect("spans enabled"),
    )
}

#[test]
fn latency_model_never_perturbs_study_outcomes() {
    let plain = run_study(&config(1, Obs::disabled()));
    let (timed, metrics, spans, _) = modeled(1);
    assert_eq!(
        plain, timed,
        "an unshedded latency profile changed study outcomes"
    );
    assert!(
        metrics.contains("cloud_request_latency_us"),
        "latency histograms missing from the metrics export"
    );
    assert!(
        spans.contains("\"name\":\"op:/api/v1/places/sync\""),
        "no sync operation spans were recorded:\n{}",
        spans.lines().take(5).collect::<Vec<_>>().join("\n")
    );
    assert!(
        spans.contains("\"name\":\"attempt\""),
        "operation spans have no attempt children"
    );
}

#[test]
fn latency_artifacts_are_thread_and_run_deterministic() {
    let (sequential, metrics_1, spans_1, chrome_1) = modeled(1);
    let (fanned, metrics_8, spans_8, chrome_8) = modeled(8);
    assert_eq!(sequential, fanned, "thread count changed study outcomes");
    assert_eq!(
        metrics_1, metrics_8,
        "metrics JSON differs across thread counts"
    );
    assert_eq!(spans_1, spans_8, "span JSONL differs across thread counts");
    assert_eq!(
        chrome_1, chrome_8,
        "Chrome trace differs across thread counts"
    );
    assert!(!spans_1.is_empty(), "span export is empty");

    let (rerun, metrics_again, spans_again, chrome_again) = modeled(8);
    assert_eq!(fanned, rerun, "same-seed rerun changed study outcomes");
    assert_eq!(metrics_8, metrics_again, "same-seed metrics bytes differ");
    assert_eq!(spans_8, spans_again, "same-seed span bytes differ");
    assert_eq!(
        chrome_8, chrome_again,
        "same-seed Chrome trace bytes differ"
    );
}
