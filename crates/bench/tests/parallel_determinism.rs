//! The core guarantee of the parallel cohort engine: fanning participants
//! out over worker threads changes wall-clock time and *nothing else*.
//!
//! Every per-participant quantity is derived from per-participant seeds
//! before the fan-out, and the shared cloud isolates users from each other
//! (order-dependent server-side artefacts — token strings, user-id
//! assignment — never feed back into a participant's results). This test
//! pins that down: a 4-thread run must equal a sequential run field by
//! field, including the floating-point energy totals.

use pmware_bench::deployment::{run_study, StudyConfig};
use pmware_world::builder::RegionProfile;

fn config(threads: usize) -> StudyConfig {
    StudyConfig {
        participants: 6,
        days: 3,
        seed: 7001,
        region: RegionProfile::urban_india(),
        threads,
        obs: pmware_obs::Obs::disabled(),
    }
}

#[test]
fn parallel_study_is_bit_identical_to_sequential() {
    let sequential = run_study(&config(1));
    let parallel = run_study(&config(4));

    assert_eq!(sequential.participants.len(), parallel.participants.len());
    for (i, (s, p)) in sequential
        .participants
        .iter()
        .zip(&parallel.participants)
        .enumerate()
    {
        // Exact comparison on purpose: energy_joules is an f64 and must
        // match to the last bit, not approximately.
        assert_eq!(s, p, "participant {i} diverged between 1 and 4 threads");
        assert_eq!(
            s.energy_joules.to_bits(),
            p.energy_joules.to_bits(),
            "participant {i} energy not bit-identical"
        );
    }
    assert_eq!(sequential, parallel);
}

#[test]
fn oversubscribed_pool_is_still_identical() {
    // More workers than participants: some threads exit without ever
    // pulling a job; order reassembly must still hold.
    let sequential = run_study(&config(1));
    let oversubscribed = run_study(&config(16));
    assert_eq!(sequential, oversubscribed);
}

/// The thread-count guarantee survives live instrumentation: with a
/// metrics registry and trace bus attached, a parallel run still equals
/// the sequential *uninstrumented* run field by field (the byte-level
/// equality of the exported artefacts themselves is pinned in
/// `obs_golden.rs`).
#[test]
fn parallel_run_is_identical_with_observability_attached() {
    let plain = run_study(&config(1));
    let obs = pmware_obs::Obs::with_trace(4_096);
    let observed = run_study(&StudyConfig { obs, ..config(4) });
    assert_eq!(plain, observed);
}
