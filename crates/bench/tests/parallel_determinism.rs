//! The core guarantee of the parallel cohort engine: fanning participants
//! out over worker threads changes wall-clock time and *nothing else*.
//!
//! Every per-participant quantity is derived from per-participant seeds
//! before the fan-out, and the shared cloud isolates users from each other
//! (order-dependent server-side artefacts — token strings, user-id
//! assignment — never feed back into a participant's results). This test
//! pins that down: a 4-thread run must equal a sequential run field by
//! field, including the floating-point energy totals.

use pmware_bench::deployment::{run_study, StudyConfig};
use pmware_cloud::{CellDatabase, CloudInstance, SharedCloud};
use pmware_core::CloudClient;
use pmware_world::builder::RegionProfile;
use pmware_world::tower::NetworkLayer;
use pmware_world::{CellGlobalId, CellId, GsmObservation, Lac, Plmn, SimTime};

fn config(threads: usize) -> StudyConfig {
    StudyConfig {
        participants: 6,
        days: 3,
        seed: 7001,
        region: RegionProfile::urban_india(),
        threads,
        obs: pmware_obs::Obs::disabled(),
        offload_batch_days: 0,
        storage: None,
    }
}

#[test]
fn parallel_study_is_bit_identical_to_sequential() {
    let sequential = run_study(&config(1));
    let parallel = run_study(&config(4));

    assert_eq!(sequential.participants.len(), parallel.participants.len());
    for (i, (s, p)) in sequential
        .participants
        .iter()
        .zip(&parallel.participants)
        .enumerate()
    {
        // Exact comparison on purpose: energy_joules is an f64 and must
        // match to the last bit, not approximately.
        assert_eq!(s, p, "participant {i} diverged between 1 and 4 threads");
        assert_eq!(
            s.energy_joules.to_bits(),
            p.energy_joules.to_bits(),
            "participant {i} energy not bit-identical"
        );
    }
    assert_eq!(sequential, parallel);
}

#[test]
fn oversubscribed_pool_is_still_identical() {
    // More workers than participants: some threads exit without ever
    // pulling a job; order reassembly must still hold.
    let sequential = run_study(&config(1));
    let oversubscribed = run_study(&config(16));
    assert_eq!(sequential, oversubscribed);
}

/// The thread-count guarantee survives live instrumentation: with a
/// metrics registry and trace bus attached, a parallel run still equals
/// the sequential *uninstrumented* run field by field (the byte-level
/// equality of the exported artefacts themselves is pinned in
/// `obs_golden.rs`).
#[test]
fn parallel_run_is_identical_with_observability_attached() {
    let plain = run_study(&config(1));
    let obs = pmware_obs::Obs::with_trace(4_096);
    let observed = run_study(&StudyConfig { obs, ..config(4) });
    assert_eq!(plain, observed);
}

/// The wire-traffic claim behind the batched protocol, measured directly
/// at the client: a six-day offload backlog costs six requests when sent
/// per-day but exactly one when coalesced into a delta-compressed batch —
/// a 6× reduction, comfortably under the ≤1/3 target — and the cloud ends
/// up with byte-identical places either way (and identical to the plain
/// unbatched array protocol).
#[test]
fn batched_offload_coalesces_backlog_into_one_request() {
    // Six days of a two-cell oscillation, one observation a minute for an
    // hour each morning — enough dwell for GCA to mint a place.
    let log: Vec<GsmObservation> = (0..6u64)
        .flat_map(|day| {
            (0..60u64).map(move |minute| GsmObservation {
                time: SimTime::from_seconds(day * 86_400 + 8 * 3_600 + minute * 60),
                cell: CellGlobalId {
                    plmn: Plmn { mcc: 404, mnc: 45 },
                    lac: Lac(1),
                    cell: CellId(1 + (minute % 2) as u32),
                },
                layer: NetworkLayer::G2,
                rssi_dbm: -70.0,
            })
        })
        .collect();
    let day_len = log.len() / 6;
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::new(), 5));
    let now = SimTime::from_seconds(6 * 86_400);

    // Per-day baseline: the unacknowledged suffix goes out as one request
    // per day of backlog.
    let mut per_day =
        CloudClient::register(cloud.clone(), "imei-day", "day@x.y", now).expect("register");
    let before = per_day.wire_requests();
    for day in 0..6 {
        let chunk = &log[day * day_len..(day + 1) * day_len];
        per_day
            .discover_places_batched(chunk, (day * day_len) as u64, now)
            .expect("per-day offload");
    }
    let per_day_requests = per_day.wire_requests() - before;
    assert_eq!(per_day_requests, 6);

    // Coalesced: the whole backlog in one batched request.
    let mut coalesced =
        CloudClient::register(cloud.clone(), "imei-all", "all@x.y", now).expect("register");
    let before = coalesced.wire_requests();
    let places = coalesced
        .discover_places_batched(&log, 0, now)
        .expect("coalesced offload");
    let coalesced_requests = coalesced.wire_requests() - before;
    assert_eq!(coalesced_requests, 1);
    assert!(
        coalesced_requests * 3 <= per_day_requests,
        "coalesced offload must cut wire requests to at most 1/3 of per-day \
         ({coalesced_requests} vs {per_day_requests})"
    );

    // Control: the legacy plain-array protocol. All three spellings must
    // leave the cloud with byte-identical places.
    let mut plain =
        CloudClient::register(cloud.clone(), "imei-old", "old@x.y", now).expect("register");
    let control = plain.discover_places(&log, 0, now).expect("plain offload");
    assert!(!places.is_empty(), "six days of dwell must mint a place");
    assert_eq!(places, control);
    assert_eq!(
        cloud.places_of(per_day.user()),
        cloud.places_of(coalesced.user())
    );
    assert_eq!(
        cloud.places_of(coalesced.user()),
        cloud.places_of(plain.user())
    );
}

/// Offload chunking is pure wire phrasing: per-day (`1`), three-day
/// (`3`) and whole-suffix (`0`, the coalescing default) offloads produce
/// identical participant outcomes — places, tags, classification,
/// bit-identical energy — because the cloud absorbs the same observation
/// stream in the same order regardless of how the suffix is split into
/// requests. Only the wire-request count may differ, and never downward
/// for finer chunking.
#[test]
fn offload_chunking_never_changes_study_results() {
    let coalesced = run_study(&config(1));
    for batch_days in [1u32, 3] {
        let chunked = run_study(&StudyConfig {
            offload_batch_days: batch_days,
            ..config(1)
        });
        assert_eq!(
            coalesced.participants, chunked.participants,
            "participant outcomes diverged at offload_batch_days={batch_days}"
        );
        assert!(
            chunked.cloud_requests >= coalesced.cloud_requests,
            "finer chunking cannot send fewer requests \
             ({} at batch_days={batch_days} vs {} coalesced)",
            chunked.cloud_requests,
            coalesced.cloud_requests
        );
    }
}
