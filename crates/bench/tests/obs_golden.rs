//! The observability determinism golden tests.
//!
//! Observability must be a pure *reader* of the simulation: collecting
//! metrics and traces may never change an outcome, and the collected
//! artefacts themselves must be reproducible — same seed, same bytes,
//! regardless of how many worker threads the study fanned out over.
//!
//! Both properties are pinned here byte-for-byte:
//!
//! * two identically-seeded runs export identical metrics snapshots and
//!   identical trace JSONL;
//! * a sequential run and an 8-thread run export identical bytes (per-
//!   participant records are attributed to per-participant actors, the
//!   export walks actors in sorted order, and only order-independent
//!   aggregates live in the shared registry);
//! * an instrumented run produces exactly the same [`StudyResults`] —
//!   including the bit-pattern of every energy f64 and the cloud's
//!   authenticated request count — as an uninstrumented one.

use pmware_bench::deployment::{run_study, StudyConfig, StudyResults};
use pmware_obs::Obs;
use pmware_world::builder::RegionProfile;

fn config(threads: usize, obs: Obs) -> StudyConfig {
    StudyConfig {
        participants: 5,
        days: 3,
        seed: 4242,
        region: RegionProfile::urban_india(),
        threads,
        obs,
        offload_batch_days: 0,
        storage: None,
    }
}

/// Runs one instrumented study and returns (results, metrics JSON, trace
/// JSONL).
fn instrumented(threads: usize) -> (StudyResults, String, String) {
    let obs = Obs::with_trace(65_536);
    let results = run_study(&config(threads, obs.clone()));
    let metrics = obs.metrics_json().expect("registry is live");
    let trace = obs.trace_jsonl().expect("bus is live");
    (results, metrics, trace)
}

#[test]
fn same_seed_exports_identical_bytes() {
    let (results_a, metrics_a, trace_a) = instrumented(1);
    let (results_b, metrics_b, trace_b) = instrumented(1);
    assert_eq!(results_a, results_b);
    assert_eq!(
        metrics_a, metrics_b,
        "metrics snapshots diverged across identical runs"
    );
    assert_eq!(
        trace_a, trace_b,
        "trace exports diverged across identical runs"
    );
    assert!(
        !trace_a.is_empty(),
        "instrumented run recorded no trace at all"
    );
    assert!(metrics_a.contains("pms_arrivals_total"), "{metrics_a}");
    assert!(metrics_a.contains("device_energy_microjoules_total"));
    assert!(metrics_a.contains("cloud_requests_total"));
}

#[test]
fn thread_count_does_not_change_a_single_byte() {
    let (results_seq, metrics_seq, trace_seq) = instrumented(1);
    let (results_par, metrics_par, trace_par) = instrumented(8);
    assert_eq!(results_seq, results_par);
    assert_eq!(
        metrics_seq, metrics_par,
        "metrics snapshot depends on worker thread count"
    );
    assert_eq!(
        trace_seq, trace_par,
        "trace export depends on worker thread count"
    );
}

#[test]
fn observability_never_perturbs_the_study() {
    let plain = run_study(&config(1, Obs::disabled()));
    let (observed, _, _) = instrumented(1);
    assert_eq!(plain.participants.len(), observed.participants.len());
    for (i, (p, o)) in plain
        .participants
        .iter()
        .zip(&observed.participants)
        .enumerate()
    {
        assert_eq!(p, o, "participant {i} diverged when instrumented");
        assert_eq!(
            p.energy_joules.to_bits(),
            o.energy_joules.to_bits(),
            "participant {i} energy not bit-identical"
        );
    }
    assert_eq!(
        plain.cloud_requests, observed.cloud_requests,
        "instrumentation changed the number of requests on the wire"
    );
}
