//! The §4 deployment study, reproduced in simulation.
//!
//! Sixteen participants carry PMWare + PlaceADs (+ the life-logging UI) for
//! two weeks. The study measures:
//!
//! * **DEP-A** — places discovered in total (paper: 123), fraction the
//!   participants tagged (paper: 85/123 ≈ 70 %), and the evaluable subset
//!   (tagged places with departure information; paper: 62);
//! * **DEP-B** — discovery quality over the evaluable places with GSM +
//!   opportunistic WiFi: correct / merged / divided (paper: 79.03 % /
//!   14.52 % / 6.45 %);
//! * **DEP-C** — PlaceADs like:dislike ratio (paper: 17:3 = 85 % likes).

use pmware_algorithms::matching::{classify_places, GroundTruthVisit, MatchOutcome};
use pmware_algorithms::signature::{DiscoveredPlace, DiscoveredPlaceId, PlaceSignature};
use pmware_apps::{AdInventory, LifeLogApp, PlaceAdsApp, UserTasteModel};
use pmware_cloud::{
    AdmissionConfig, CellDatabase, CloudInstance, LatencyProfile, SharedCloud, StorageConfig,
};
use pmware_core::pms::{PmsConfig, PmwareMobileService};
use pmware_core::registry::PmPlaceId;
use pmware_device::{Device, EnergyModel};
use pmware_mobility::{Itinerary, Population};
use pmware_obs::Obs;
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::radio::{RadioConfig, RadioEnvironment};
use pmware_world::{SimTime, World};

/// Study parameters.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Number of participants (paper: 16).
    pub participants: usize,
    /// Study length in days (paper: 14).
    pub days: u64,
    /// Master seed.
    pub seed: u64,
    /// World profile (paper: urban India).
    pub region: RegionProfile,
    /// Worker threads running participants (`1` = sequential, `0` = one
    /// per core). Results are identical at any thread count.
    pub threads: usize,
    /// Observability sink. [`Obs::disabled`] (the default) records
    /// nothing and costs nothing; a live handle collects a study-wide
    /// metrics snapshot and per-participant traces without perturbing any
    /// simulation outcome.
    pub obs: Obs,
    /// Days of GSM suffix per offload request
    /// ([`PmsConfig::offload_batch_days`]): `0` (the default) coalesces
    /// the whole unacknowledged suffix into one batched request per
    /// maintenance pass; `k ≥ 1` sends one request per `k` days.
    /// Discovery outcomes are identical at any value — only wire traffic
    /// changes.
    pub offload_batch_days: u32,
    /// Cloud storage-engine configuration ([`StorageConfig`]): a resident
    /// cap bounds how many user stores stay in RAM (cold ones park in
    /// compacted snapshots), and a store directory makes the instance
    /// durable (per-shard WAL + snapshots on disk). `None` (the default)
    /// keeps the plain all-resident in-memory cloud; study outcomes are
    /// bit-identical either way — the engine only changes *where* state
    /// lives.
    pub storage: Option<StorageConfig>,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            participants: 16,
            days: 14,
            seed: 2014,
            region: RegionProfile::urban_india(),
            threads: 1,
            obs: Obs::disabled(),
            offload_batch_days: 0,
            storage: None,
        }
    }
}

/// Per-participant outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ParticipantResult {
    /// Places PMWare discovered for this participant.
    pub discovered: usize,
    /// Places the participant tagged.
    pub tagged: usize,
    /// Tagged places with departure info (evaluable).
    pub evaluable: usize,
    /// Evaluable places classified correct.
    pub correct: usize,
    /// Evaluable places classified merged.
    pub merged: usize,
    /// Evaluable places classified divided.
    pub divided: usize,
    /// Ad likes.
    pub likes: u32,
    /// Ad dislikes.
    pub dislikes: u32,
    /// Battery energy drained over the study (joules).
    pub energy_joules: f64,
}

/// Aggregate study outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyResults {
    /// Per-participant breakdown.
    pub participants: Vec<ParticipantResult>,
    /// Authenticated requests the cloud served over the study — a cheap
    /// end-to-end invariant: instrumentation must never add or remove
    /// wire traffic, so this number is identical with obs on or off.
    pub cloud_requests: u64,
}

impl StudyResults {
    /// Total places discovered across participants (paper: 123).
    pub fn total_discovered(&self) -> usize {
        self.participants.iter().map(|p| p.discovered).sum()
    }

    /// Total tagged places (paper: 85).
    pub fn total_tagged(&self) -> usize {
        self.participants.iter().map(|p| p.tagged).sum()
    }

    /// Tagged fraction (paper: ≈ 0.70).
    pub fn tagged_fraction(&self) -> f64 {
        let d = self.total_discovered();
        if d == 0 {
            0.0
        } else {
            self.total_tagged() as f64 / d as f64
        }
    }

    /// Evaluable places (paper: 62).
    pub fn total_evaluable(&self) -> usize {
        self.participants.iter().map(|p| p.evaluable).sum()
    }

    fn outcome_total(&self, f: impl Fn(&ParticipantResult) -> usize) -> usize {
        self.participants.iter().map(f).sum()
    }

    /// Correct fraction over evaluable (paper: 0.7903).
    pub fn correct_fraction(&self) -> f64 {
        self.fraction(self.outcome_total(|p| p.correct))
    }

    /// Merged fraction over evaluable (paper: 0.1452).
    pub fn merged_fraction(&self) -> f64 {
        self.fraction(self.outcome_total(|p| p.merged))
    }

    /// Divided fraction over evaluable (paper: 0.0645).
    pub fn divided_fraction(&self) -> f64 {
        self.fraction(self.outcome_total(|p| p.divided))
    }

    fn fraction(&self, n: usize) -> f64 {
        let e: usize = self.outcome_total(|p| p.correct + p.merged + p.divided);
        if e == 0 {
            0.0
        } else {
            n as f64 / e as f64
        }
    }

    /// Total ad likes.
    pub fn likes(&self) -> u32 {
        self.participants.iter().map(|p| p.likes).sum()
    }

    /// Total ad dislikes.
    pub fn dislikes(&self) -> u32 {
        self.participants.iter().map(|p| p.dislikes).sum()
    }

    /// Like fraction (paper: 17/20 = 0.85).
    pub fn like_fraction(&self) -> f64 {
        let total = self.likes() + self.dislikes();
        if total == 0 {
            0.0
        } else {
            self.likes() as f64 / total as f64
        }
    }
}

/// Runs the study.
pub fn run_study(config: &StudyConfig) -> StudyResults {
    run_study_with_admission(config, None)
}

/// Runs the study with cloud admission-control budgets. `None` leaves the
/// controller disabled, which is exactly [`run_study`]: existing studies
/// stay bit-identical to the pre-admission code.
pub fn run_study_with_admission(
    config: &StudyConfig,
    admission: Option<AdmissionConfig>,
) -> StudyResults {
    run_study_with_options(config, admission, None)
}

/// Runs the study with optional admission control *and* an optional
/// sim-time latency model on the cloud instance. Both `None` is exactly
/// [`run_study`]. With a latency profile (and no shedding threshold) the
/// study's discovery/tagging/energy outcomes are unchanged — latency only
/// adds sub-second annotations, histograms, and spans on top.
pub fn run_study_with_options(
    config: &StudyConfig,
    admission: Option<AdmissionConfig>,
    latency: Option<LatencyProfile>,
) -> StudyResults {
    let world = WorldBuilder::new(config.region.clone())
        .seed(config.seed)
        .build();
    let cloud = SharedCloud::new(
        CloudInstance::new(CellDatabase::from_world(&world), config.seed + 1).with_obs(&config.obs),
    );
    cloud.set_storage(config.storage.clone());
    cloud.set_admission(admission);
    cloud.set_latency(latency);
    let population = Population::generate(&world, config.participants, config.seed + 2);

    // Everything a participant needs is derived from per-participant seeds
    // before the fan-out, so worker scheduling cannot change any result;
    // `parallel_map` reassembles in agent order.
    let jobs: Vec<(u32, f64, Itinerary, UserTasteModel)> = population
        .agents()
        .iter()
        .map(|agent| {
            (
                agent.id().0,
                agent.tag_probability(),
                population.itinerary(&world, agent.id(), config.days),
                UserTasteModel::from_agent(agent, config.seed + 100 + agent.id().0 as u64),
            )
        })
        .collect();
    let participants = crate::parallel::parallel_map(
        jobs,
        crate::parallel::resolve_threads(config.threads),
        |(index, tag_probability, itinerary, taste)| {
            run_participant(
                &world,
                cloud.clone(),
                index,
                tag_probability,
                &itinerary,
                taste,
                config,
            )
        },
    );

    StudyResults {
        participants,
        cloud_requests: cloud.total_requests(),
    }
}

fn run_participant(
    world: &World,
    cloud: SharedCloud,
    index: u32,
    tag_probability: f64,
    itinerary: &Itinerary,
    mut taste: UserTasteModel,
    config: &StudyConfig,
) -> ParticipantResult {
    let env = RadioEnvironment::new(world, RadioConfig::default());
    let device = Device::new(
        env,
        itinerary,
        EnergyModel::htc_explorer(),
        config.seed + 200 + index as u64,
    );
    let mut pms_config = PmsConfig::for_participant(index);
    pms_config.offload_batch_days = config.offload_batch_days;
    let mut pms = PmwareMobileService::new(device, cloud, pms_config, SimTime::EPOCH)
        .expect("registration succeeds");
    // Zero-padded actor names keep the trace export (sorted by actor)
    // in participant order.
    pms.set_obs(&config.obs.for_actor(&format!("p{index:04}")));

    // Both §3 applications are installed on every participant's phone.
    let ads_rx = pms.register_app(
        "placeads",
        PlaceAdsApp::requirement(),
        PlaceAdsApp::filter(),
    );
    let log_rx = pms.register_app("lifelog", LifeLogApp::requirement(), LifeLogApp::filter());
    let mut placeads = PlaceAdsApp::new(AdInventory::from_world(world));
    let mut lifelog = LifeLogApp::new(tag_probability, config.seed + 300 + index as u64);

    // Run day by day so the apps interact as the study unfolds: the user
    // tags places in the evening, swipes the day's ad cards, etc.
    for day in 1..=config.days {
        pms.run(SimTime::from_day_time(day, 0, 0, 0))
            .expect("run never fails after registration");

        for intent in log_rx.try_iter() {
            lifelog.on_intent(&intent);
        }
        for (place, label) in lifelog.take_pending_labels() {
            pms.label_place(PmPlaceId(place), label);
        }
        for intent in ads_rx.try_iter().collect::<Vec<_>>() {
            if let Some(card) = placeads.on_intent(&intent) {
                let true_position = itinerary.position_at(card.served_at);
                let _ = taste.swipe(&card, true_position);
            }
        }
    }

    let end = SimTime::from_day_time(config.days, 0, 0, 0);
    let report = pms.finish(end);

    // Re-assemble DiscoveredPlaces (stable ids + the final GCA visit
    // history, which covers the whole study) for the correct/merged/
    // divided classification — this is the data the paper's analysis
    // worked from.
    let discovered: Vec<DiscoveredPlace> = report
        .places
        .iter()
        .map(|p| {
            let mut d = DiscoveredPlace::new(
                DiscoveredPlaceId(p.id.0),
                PlaceSignature::Cells(p.cells.clone()),
                p.gca_visits.clone(),
            );
            d.label = p.label.clone();
            d
        })
        .collect();

    let truth: Vec<GroundTruthVisit> = itinerary
        .visits()
        .iter()
        .map(|v| GroundTruthVisit {
            place: v.place,
            arrival: v.arrival,
            departure: v.departure,
        })
        .collect();
    let matching = classify_places(&discovered, &truth, 0.2);

    // The §4 percentages are computed over the tagged places that carry
    // departure information.
    let evaluable: std::collections::BTreeSet<u32> =
        lifelog.evaluable_places().into_iter().collect();
    let (mut correct, mut merged, mut divided) = (0, 0, 0);
    for m in &matching.matches {
        if !evaluable.contains(&m.discovered.0) {
            continue;
        }
        match m.outcome {
            MatchOutcome::Correct => correct += 1,
            MatchOutcome::Merged => merged += 1,
            MatchOutcome::Divided => divided += 1,
            MatchOutcome::NoMatch => {}
        }
    }

    // Tagged places are counted over the *live* place set (the registry
    // retires signatures superseded by the periodic compaction; the
    // lifelog app may still hold history for them).
    let tagged_live = report.places.iter().filter(|p| p.label.is_some()).count();
    ParticipantResult {
        discovered: report.places.len(),
        tagged: tagged_live,
        evaluable: correct + merged + divided,
        correct,
        merged,
        divided,
        likes: taste.likes(),
        dislikes: taste.dislikes(),
        energy_joules: report.energy_joules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down study (4 participants × 4 days) exercising the whole
    /// pipeline; the full 16 × 14 run lives in the `deployment_study`
    /// binary.
    #[test]
    fn small_study_produces_sane_statistics() {
        let config = StudyConfig {
            participants: 4,
            days: 4,
            seed: 99,
            region: RegionProfile::urban_india(),
            threads: 1,
            obs: Obs::disabled(),
            offload_batch_days: 0,
            storage: None,
        };
        let results = run_study(&config);
        assert_eq!(results.participants.len(), 4);
        assert!(
            results.total_discovered() >= 8,
            "got {}",
            results.total_discovered()
        );
        assert!(results.total_tagged() > 0);
        let tf = results.tagged_fraction();
        assert!(tf > 0.3 && tf <= 1.0, "tag fraction {tf}");
        assert!(results.total_evaluable() > 0);
        let cf = results.correct_fraction();
        assert!(cf >= 0.5, "correct fraction {cf}");
        assert!(results.likes() + results.dislikes() > 0);
        for p in &results.participants {
            assert!(p.energy_joules > 0.0);
            assert_eq!(p.evaluable, p.correct + p.merged + p.divided);
        }
    }
}

#[cfg(test)]
mod aggregation_tests {
    use super::*;

    fn participant(
        discovered: usize,
        tagged: usize,
        correct: usize,
        merged: usize,
        divided: usize,
        likes: u32,
        dislikes: u32,
    ) -> ParticipantResult {
        ParticipantResult {
            discovered,
            tagged,
            evaluable: correct + merged + divided,
            correct,
            merged,
            divided,
            likes,
            dislikes,
            energy_joules: 1_000.0,
        }
    }

    #[test]
    fn totals_and_fractions() {
        let results = StudyResults {
            participants: vec![
                participant(10, 7, 4, 1, 0, 17, 3),
                participant(6, 3, 2, 0, 1, 0, 0),
            ],
            cloud_requests: 0,
        };
        assert_eq!(results.total_discovered(), 16);
        assert_eq!(results.total_tagged(), 10);
        assert!((results.tagged_fraction() - 10.0 / 16.0).abs() < 1e-12);
        assert_eq!(results.total_evaluable(), 8);
        assert!((results.correct_fraction() - 6.0 / 8.0).abs() < 1e-12);
        assert!((results.merged_fraction() - 1.0 / 8.0).abs() < 1e-12);
        assert!((results.divided_fraction() - 1.0 / 8.0).abs() < 1e-12);
        assert_eq!(results.likes(), 17);
        assert_eq!(results.dislikes(), 3);
        assert!((results.like_fraction() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn empty_study_has_zero_fractions() {
        let results = StudyResults {
            participants: vec![],
            cloud_requests: 0,
        };
        assert_eq!(results.total_discovered(), 0);
        assert_eq!(results.tagged_fraction(), 0.0);
        assert_eq!(results.correct_fraction(), 0.0);
        assert_eq!(results.like_fraction(), 0.0);
    }

    #[test]
    fn fractions_sum_to_one_when_evaluable() {
        let results = StudyResults {
            participants: vec![participant(5, 5, 3, 1, 1, 2, 2)],
            cloud_requests: 0,
        };
        let sum =
            results.correct_fraction() + results.merged_fraction() + results.divided_fraction();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
