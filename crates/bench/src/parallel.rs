//! Work-queue parallel map used by the cohort drivers.
//!
//! Participants in a study are independent once the shared [`SharedCloud`]
//! handle is internally synchronized, so the drivers fan them out over a
//! fixed pool of scoped threads fed from one crossbeam channel. Results
//! are reassembled **in input order**, so a parallel run is byte-identical
//! to a sequential one (see `tests/parallel_determinism.rs`).
//!
//! [`SharedCloud`]: pmware_cloud::SharedCloud

use crossbeam::channel;

/// Resolves a user-facing `--threads` value: `0` means "one per available
/// core", anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// Maps `f` over `items` on up to `threads` worker threads, preserving
/// input order in the output.
///
/// With `threads <= 1` (or one item) this degenerates to a plain
/// sequential map on the calling thread — no pool, no channels — which is
/// also what makes the "parallel equals sequential" regression test
/// meaningful rather than vacuous.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }

    // Pre-fill the job queue and drop the sender before any worker starts:
    // `recv` then never blocks waiting for a producer, it either pops a job
    // or observes disconnection and lets the worker exit.
    let (job_tx, job_rx) = channel::unbounded();
    for job in items.into_iter().enumerate() {
        assert!(job_tx.send(job).is_ok(), "job receiver alive");
    }
    drop(job_tx);

    let (out_tx, out_rx) = channel::unbounded();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let job_rx = job_rx.clone();
            let out_tx = out_tx.clone();
            let f = &f;
            s.spawn(move || {
                while let Ok((index, item)) = job_rx.recv() {
                    assert!(out_tx.send((index, f(item))).is_ok(), "out receiver alive");
                }
            });
        }
    });
    drop(out_tx);

    let mut results: Vec<(usize, R)> = out_rx.try_iter().collect();
    results.sort_by_key(|&(index, _)| index);
    results.into_iter().map(|(_, result)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 4, 7] {
            let items: Vec<u64> = (0..23).collect();
            let out = parallel_map(items.clone(), threads, |x| x * x);
            let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn handles_degenerate_inputs() {
        assert_eq!(parallel_map(Vec::<u32>::new(), 4, |x| x), Vec::<u32>::new());
        assert_eq!(parallel_map(vec![9], 4, |x| x + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map(vec![1, 2], 16, |x| x * 10);
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn zero_threads_resolves_to_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
