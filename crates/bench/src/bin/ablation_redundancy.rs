//! ABL-RED: redundant sensing of isolated applications vs one shared PMS
//! (§1 item 3: "lack of coordination between applications \[causes\]
//! redundant and repetitive invocation of location interfaces").

use pmware_bench::sensing_modes::run_redundancy_ablation;

fn main() {
    let days = 3;
    let counts = [1usize, 2, 3, 5, 8];
    println!(
        "ABL-RED: N place-aware apps, shared PMS vs N isolated pipelines\n\
         (one participant x {days} days per configuration)\n"
    );
    let results = run_redundancy_ablation(&counts, days, 2014);
    println!(
        "{:>5} {:>15} {:>17} {:>12}",
        "apps", "shared (kJ)", "isolated (kJ)", "redundancy"
    );
    println!("{}", "-".repeat(55));
    for r in &results {
        println!(
            "{:>5} {:>15.1} {:>17.1} {:>11.2}x",
            r.apps,
            r.shared_joules / 1_000.0,
            r.isolated_joules / 1_000.0,
            r.isolated_joules / r.shared_joules
        );
    }
    println!(
        "\nShared-PMS energy is flat in N; isolated energy grows ~linearly —\n\
         the coordination saving PMWare's connected architecture provides."
    );
}
