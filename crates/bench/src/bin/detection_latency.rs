//! DET-LAT: arrival/departure detection latency.
//!
//! The §2.4 use case hinges on *timely* place alerts: the To-Do app wants
//! its reminder when the user walks into the office, not twenty minutes
//! later. This experiment measures the lag between ground-truth arrivals/
//! departures and the tracker-confirmed events PMS broadcast, across a
//! cohort of participants.
//!
//! Sources of lag: the one-minute GSM period, the tracker's confirmation
//! debounce (2 samples in / 4 out, absorbing the oscillation effect), and
//! cell coverage extending beyond the physical place boundary (which can
//! make radio-level "arrival" *precede* physical arrival — negative lag).

use pmware_bench::args::flag;
use pmware_bench::parallel::{parallel_map, resolve_threads};
use pmware_cloud::{CellDatabase, CloudInstance, SharedCloud};
use pmware_core::intents::{actions, IntentFilter};
use pmware_core::pms::{PmsConfig, PmwareMobileService};
use pmware_core::requirements::{AppRequirement, Granularity};
use pmware_device::{Device, EnergyModel};
use pmware_mobility::Population;
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::radio::{RadioConfig, RadioEnvironment};
use pmware_world::SimTime;

fn main() {
    let participants: usize = flag("participants", 8);
    let days: u64 = flag("days", 7);
    let threads = resolve_threads(flag("threads", 1));
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(6014)
        .build();
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 6015));
    let population = Population::generate(&world, participants, 6016);

    // One job per participant; each returns its own (arrival, departure)
    // lag vectors, merged in agent order so the output is the same at any
    // thread count.
    let per_agent = parallel_map(population.agents().to_vec(), threads, |agent| {
        let itinerary = population.itinerary(&world, agent.id(), days);
        let env = RadioEnvironment::new(&world, RadioConfig::default());
        let device = Device::new(
            env,
            &itinerary,
            EnergyModel::htc_explorer(),
            6100 + agent.id().0 as u64,
        );
        let mut pms = PmwareMobileService::new(
            device,
            cloud.clone(),
            PmsConfig::for_participant(60 + agent.id().0),
            SimTime::EPOCH,
        )
        .expect("register");
        let rx = pms.register_app(
            "latency-probe",
            AppRequirement::places(Granularity::Building),
            IntentFilter::for_actions([actions::PLACE_ARRIVAL, actions::PLACE_DEPARTURE]),
        );
        pms.run(SimTime::from_day_time(days, 0, 0, 0)).expect("run");

        // Match each broadcast event to the nearest ground-truth
        // boundary of the same kind within a 30-minute window.
        let truth = itinerary.visits();
        let mut arrivals: Vec<f64> = Vec::new();
        let mut departures: Vec<f64> = Vec::new();
        for intent in rx.try_iter() {
            let t = intent.time.as_seconds() as f64;
            let (candidates, lags): (Vec<f64>, &mut Vec<f64>) =
                if intent.action == actions::PLACE_ARRIVAL {
                    (
                        truth
                            .iter()
                            .map(|v| v.arrival.as_seconds() as f64)
                            .collect(),
                        &mut arrivals,
                    )
                } else {
                    (
                        truth
                            .iter()
                            .map(|v| v.departure.as_seconds() as f64)
                            .collect(),
                        &mut departures,
                    )
                };
            if let Some(best) = candidates
                .iter()
                .map(|b| t - b)
                .filter(|lag| lag.abs() <= 1_800.0)
                .min_by(|a, b| a.abs().partial_cmp(&b.abs()).expect("finite"))
            {
                lags.push(best / 60.0);
            }
        }
        (arrivals, departures)
    });
    let mut arrival_lags: Vec<f64> = Vec::new();
    let mut departure_lags: Vec<f64> = Vec::new();
    for (arrivals, departures) in per_agent {
        arrival_lags.extend(arrivals);
        departure_lags.extend(departures);
    }

    println!(
        "DET-LAT: place-event detection latency — {participants} participants x {days} days, {threads} thread(s)\n"
    );
    report("arrival", &mut arrival_lags);
    report("departure", &mut departure_lags);
    println!(
        "\nPositive = event confirmed after the physical boundary; arrivals\n\
         can go negative because tower coverage extends past the door. The\n\
         floor is set by the 1-minute GSM period plus the 2-in/4-out\n\
         debounce that absorbs the oscillation effect."
    );
}

fn report(kind: &str, lags: &mut [f64]) {
    if lags.is_empty() {
        println!("{kind:>10}: no matched events");
        return;
    }
    lags.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = lags.len();
    let mean = lags.iter().sum::<f64>() / n as f64;
    let median = lags[n / 2];
    let p90 = lags[(n as f64 * 0.9) as usize];
    println!(
        "{kind:>10}: n={n:<4} mean {mean:>6.1} min   median {median:>6.1} min   p90 {p90:>6.1} min"
    );
}
