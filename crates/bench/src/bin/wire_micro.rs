//! PERF-WIRE: per-request cost of the typed in-process cloud path vs the
//! marshalled JSON wire path, endpoint by endpoint.
//!
//! Two arms handle the *same* request against the same warm
//! [`CloudInstance`]:
//!
//! * **typed** — the request object travels as built: a typed [`Payload`]
//!   body the handler borrows directly. No JSON tree, no bytes, no serde
//!   anywhere on the path. This is what every in-process study
//!   (`SharedCloud` endpoint) pays per request since the typed wire-path
//!   change.
//! * **marshalled** — the request is rendered to JSON bytes and re-parsed,
//!   the response is rendered to JSON bytes and re-parsed: exactly what
//!   the fault-injecting wire boundary (`FaultyCloud`) does per send, and
//!   a faithful stand-in for what *every* request used to pay when bodies
//!   were `serde_json::Value` end-to-end.
//!
//! The gap between the arms is the per-request JSON tax the typed path
//! removed. Handler work is inside both measurements (it is identical),
//! so endpoints with heavy handlers (e.g. `places_discover`, which
//! re-clusters the offloaded batch) legitimately show smaller ratios —
//! the table reports what a caller actually experiences, not a synthetic
//! serialization-only number.
//!
//! Usage: `wire_micro [--iters N] [--repeats R]` — after an untimed
//! warm-up, each (endpoint, arm) runs R times at N requests per run and
//! the **median** ns/request is reported (same statistic as the cohort
//! bench, robust to one-off scheduler hiccups). Results are printed as a
//! table and written to `BENCH_wire.json`.

use std::time::Instant;

use pmware_algorithms::signature::{DiscoveredPlace, DiscoveredPlaceId, PlaceSignature};
use pmware_bench::args::flag;
use pmware_cloud::profile::{ContactEntry, MobilityProfile, PlaceEntry};
use pmware_cloud::{
    CellDatabase, CloudInstance, DiscoverBody, Request, Response, SocialQueryBody,
    SyncContactsBody, SyncPlacesBody, SyncProfileBody,
};
use pmware_world::tower::NetworkLayer;
use pmware_world::{CellGlobalId, CellId, GsmObservation, Lac, Plmn, SimTime};
use serde_json::json;

/// Median of a sample set (mean of the middle pair for even sizes).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("wall-clock is finite"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Meaty request bodies: a nightly offload is hundreds of observations,
/// a place list tens of places — the sizes where a JSON tree per request
/// actually hurts.
fn observations(n: u64) -> Vec<GsmObservation> {
    (0..n)
        .map(|m| GsmObservation {
            time: SimTime::from_seconds(m * 60),
            cell: CellGlobalId {
                plmn: Plmn { mcc: 404, mnc: 45 },
                lac: Lac(1),
                cell: CellId(if m % 3 == 1 { 2 } else { 1 }),
            },
            layer: NetworkLayer::G2,
            rssi_dbm: -70.0,
        })
        .collect()
}

fn places(n: u32) -> Vec<DiscoveredPlace> {
    (0..n)
        .map(|id| {
            DiscoveredPlace::new(
                DiscoveredPlaceId(id),
                PlaceSignature::WifiAps(Default::default()),
                vec![],
            )
        })
        .collect()
}

fn profile() -> MobilityProfile {
    let mut p = MobilityProfile::new(0);
    for i in 0..10u64 {
        p.places.push(PlaceEntry {
            place: DiscoveredPlaceId((i % 5) as u32),
            arrival: SimTime::from_day_time(0, 2 * i, 0, 0),
            departure: SimTime::from_day_time(0, 2 * i + 1, 0, 0),
        });
    }
    p
}

fn contacts(n: u64) -> Vec<ContactEntry> {
    (0..n)
        .map(|i| ContactEntry {
            contact: format!("peer-{i}"),
            start: SimTime::from_seconds(i * 100),
            end: SimTime::from_seconds(i * 100 + 60),
            place: Some(DiscoveredPlaceId((i % 5) as u32)),
        })
        .collect()
}

struct Endpoint {
    label: &'static str,
    request: Request,
}

struct Row {
    label: &'static str,
    typed_ns: f64,
    marshalled_ns: f64,
}

fn measure(iters: usize, repeats: usize, mut one: impl FnMut() -> Response) -> f64 {
    // Warm-up: fault the path in, settle caches and one-time state
    // transitions (first sync applies, repeats replay as stale).
    for _ in 0..iters.min(100) {
        std::hint::black_box(one());
    }
    let mut samples = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(one());
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    median(&mut samples)
}

fn main() {
    let iters: usize = flag("iters", 2_000).max(1);
    let repeats: usize = flag("repeats", 5).max(1);

    let cloud = CloudInstance::new(CellDatabase::new(), 7);
    let now = SimTime::EPOCH;
    let resp = cloud.handle(
        &Request::post(
            "/api/v1/registration",
            json!({"imei": "wire-0", "email": "wire@pmware.study"}),
        ),
        now,
    );
    let token = resp.json()["token"].as_str().unwrap().to_owned();

    let endpoints = vec![
        Endpoint {
            label: "places_sync",
            request: Request::post(
                "/api/v1/places/sync",
                SyncPlacesBody {
                    places: places(50),
                    seq: Some(1),
                },
            )
            .with_token(&token),
        },
        Endpoint {
            label: "places_discover",
            request: Request::post(
                "/api/v1/places/discover",
                DiscoverBody {
                    observations: observations(200),
                    batch: None,
                    start: Some(0),
                },
            )
            .with_token(&token),
        },
        Endpoint {
            label: "profiles_sync",
            request: Request::post(
                "/api/v1/profiles/sync",
                SyncProfileBody {
                    profile: profile(),
                    seq: Some(1),
                },
            )
            .with_token(&token),
        },
        Endpoint {
            label: "social_sync",
            request: Request::post(
                "/api/v1/social/sync",
                SyncContactsBody {
                    contacts: contacts(200),
                    first_seq: Some(0),
                },
            )
            .with_token(&token),
        },
        Endpoint {
            label: "social_query",
            request: Request::post("/api/v1/social/query", SocialQueryBody { place: None })
                .with_token(&token),
        },
        Endpoint {
            label: "places_list",
            request: Request::get("/api/v1/places").with_token(&token),
        },
    ];

    println!(
        "PERF-WIRE: typed in-process path vs marshalled JSON wire path, \
         median of {repeats} x {iters} requests\n"
    );
    println!(
        "{:<16} {:>14} {:>18} {:>9}",
        "endpoint", "typed ns/req", "marshalled ns/req", "ratio"
    );

    let mut rows = Vec::new();
    for endpoint in &endpoints {
        let typed_ns = measure(iters, repeats, || {
            cloud.handle(std::hint::black_box(&endpoint.request), now)
        });
        let marshalled_ns = measure(iters, repeats, || {
            // Both directions cross JSON bytes, as on the faulty wire.
            // The request is re-encoded from its typed body every time —
            // `wire_bytes` would amortize that across sends, which is the
            // retry-path optimization, not the thing measured here.
            let bytes = serde_json::to_vec(&endpoint.request).expect("request serializes");
            let parsed = Request::from_bytes(&bytes).expect("request round-trips");
            let response = cloud.handle(&parsed, now);
            Response::from_bytes(&response.to_bytes()).expect("response round-trips")
        });
        println!(
            "{:<16} {:>14.0} {:>18.0} {:>8.1}x",
            endpoint.label,
            typed_ns,
            marshalled_ns,
            marshalled_ns / typed_ns
        );
        rows.push(Row {
            label: endpoint.label,
            typed_ns,
            marshalled_ns,
        });
    }

    let mut json = String::from("{\n  \"bench\": \"wire_micro\",\n");
    json.push_str(&format!(
        "  \"iters\": {iters},\n  \"repeats\": {repeats},\n  \"statistic\": \"median\",\n"
    ));
    json.push_str("  \"endpoints\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"endpoint\": \"{}\", \"typed_ns_per_request\": {:.0}, \
             \"marshalled_ns_per_request\": {:.0}, \"speedup\": {:.2}}}{}\n",
            row.label,
            row.typed_ns,
            row.marshalled_ns,
            row.marshalled_ns / row.typed_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_wire.json", json).expect("write BENCH_wire.json");
    println!("\nmachine-readable output in BENCH_wire.json");

    let fast = rows
        .iter()
        .filter(|r| r.marshalled_ns / r.typed_ns >= 5.0)
        .count();
    println!(
        "{fast}/{} endpoints show >= 5x lower per-request cost on the typed path",
        rows.len()
    );
}
