//! SCALE-STORAGE: storage-engine soak — capped RSS vs population growth,
//! hydration latency vs history length, and crash-recovery time.
//!
//! Three experiments against a durable cap-K [`StorageEngine`]:
//!
//! * **RSS ladder** — drive populations of K, 2K, 4K, 8K users through a
//!   cap-K durable instance (round-robin traffic, so every touch beyond
//!   the cap is an evict + hydrate). Each arm runs in its own child
//!   process (`--arm`) and reports its peak RSS from `/proc/self/status`
//!   — same-process arms would share an allocator and hide growth behind
//!   freed-but-retained pages. An uncapped in-memory arm at 8K users is
//!   the honest contrast: the capped arm's peak must stay below it.
//! * **hydration ladder** — a cap-1 instance with two users ping-ponging
//!   so every read hydrates from snapshot + WAL suffix, at increasing
//!   per-user history lengths.
//! * **recovery** — crash an 8K-user durable instance and time
//!   [`CloudInstance::recover`]; the recovered population must be intact.
//!
//! Usage: `storage_soak [--cap N] [--rounds N] [--seed S]`. Writes
//! `BENCH_storage.json` in the current directory and exits nonzero if the
//! cap leaks (resident count above cap) or the capped arm's peak RSS
//! reaches the uncapped arm's.
//!
//! Wallclock use is deliberate and confined to this bench binary (the
//! simulation itself is sim-time only); RSS comes from
//! `/proc/self/status`, so the ladder is Linux-specific and reports zeros
//! elsewhere.

use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

use pmware_bench::args::{flag, opt_flag};
use pmware_cloud::{CellDatabase, CloudInstance, Request, StorageConfig};
use pmware_world::tower::NetworkLayer;
use pmware_world::{CellGlobalId, CellId, GsmObservation, Lac, Plmn, SimTime};
use serde_json::json;

/// Peak RSS (`VmHWM`) in kB from `/proc/self/status`; zero off-Linux.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pmware-soak-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn register(cloud: &CloudInstance, n: u32, now: SimTime) -> String {
    let resp = cloud.handle(
        &Request::post(
            "/api/v1/registration",
            json!({"imei": format!("imei-{n}"), "email": format!("u{n}@soak")}),
        ),
        now,
    );
    assert!(resp.is_success(), "registration failed: {resp:?}");
    resp.json()["token"].as_str().expect("token").to_owned()
}

/// A 40-observation two-cell oscillation, distinct per (user, round).
fn stream(user: u32, round: u64) -> Vec<GsmObservation> {
    (0..40)
        .map(|m| GsmObservation {
            time: SimTime::from_seconds(round * 4_000 + u64::from(m) * 60),
            cell: CellGlobalId {
                plmn: Plmn { mcc: 404, mnc: 45 },
                lac: Lac(1),
                cell: CellId(1 + user * 10 + (m % 2)),
            },
            layer: NetworkLayer::G2,
            rssi_dbm: -70.0,
        })
        .collect()
}

/// One traffic round for one user: a sequenced offload. All sim-times in
/// the soak stay inside the token's 24 h validity window.
fn touch(cloud: &CloudInstance, token: &str, user: u32, round: u64) {
    let at = SimTime::from_seconds(1_000 + round * 4_000 + u64::from(user));
    let resp = cloud.handle(
        &Request::post(
            "/api/v1/places/discover",
            json!({"observations": stream(user, round), "start": round * 40}),
        )
        .with_token(token),
        at,
    );
    assert!(resp.is_success(), "discover failed: {resp:?}");
}

/// Registers `users` users and drives them round-robin for `rounds`.
fn drive(cloud: &CloudInstance, users: u32, rounds: u64) {
    let tokens: Vec<String> = (0..users)
        .map(|n| register(cloud, n, SimTime::from_seconds(u64::from(n))))
        .collect();
    for round in 0..rounds {
        for user in 0..users {
            touch(cloud, &tokens[user as usize], user, round);
        }
    }
}

/// Child-process mode: run one RSS arm and print its result as a single
/// `ARM_RESULT {...}` line for the orchestrator to parse.
fn run_child_arm(kind: &str) {
    let users: u32 = flag("users", 64);
    let cap: usize = flag("cap", 64);
    let rounds: u64 = flag("rounds", 3);
    let seed: u64 = flag("seed", 2014);
    let cloud = match kind {
        "capped" => {
            let dir = PathBuf::from(opt_flag("dir").expect("--arm capped needs --dir"));
            CloudInstance::new(CellDatabase::new(), seed).with_storage(StorageConfig {
                resident_cap: Some(cap),
                store_dir: Some(dir),
                snapshot_every_days: 1,
            })
        }
        "uncapped" => CloudInstance::new(CellDatabase::new(), seed),
        other => panic!("unknown arm kind {other:?}"),
    };
    let started = Instant::now();
    drive(&cloud, users, rounds);
    let drive_ms = started.elapsed().as_millis();
    println!(
        "ARM_RESULT {{\"users\": {users}, \"capped\": {}, \"peak_rss_kb\": {}, \
         \"resident_users\": {}, \"evictions\": {}, \"hydrations\": {}, \"drive_ms\": {drive_ms}}}",
        kind == "capped",
        peak_rss_kb(),
        cloud.resident_users(),
        cloud.eviction_count(),
        cloud.hydration_count(),
    );
}

/// Spawns this binary as `--arm <kind>` and parses the child's result.
fn spawn_arm(
    kind: &str,
    users: u32,
    cap: usize,
    rounds: u64,
    seed: u64,
    dir: Option<&PathBuf>,
) -> serde_json::Value {
    let exe = std::env::current_exe().expect("current exe");
    let mut command = Command::new(exe);
    command.args(["--arm", kind]);
    command.args(["--users", &users.to_string()]);
    command.args(["--cap", &cap.to_string()]);
    command.args(["--rounds", &rounds.to_string()]);
    command.args(["--seed", &seed.to_string()]);
    if let Some(dir) = dir {
        command.args(["--dir", dir.to_str().expect("utf-8 scratch path")]);
    }
    let output = command.output().expect("spawn arm child");
    assert!(
        output.status.success(),
        "arm child failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout
        .lines()
        .find_map(|l| l.strip_prefix("ARM_RESULT "))
        .expect("child printed ARM_RESULT");
    serde_json::from_str(line).expect("ARM_RESULT parses")
}

fn main() {
    if let Some(kind) = opt_flag("arm") {
        run_child_arm(&kind);
        return;
    }

    let cap: usize = flag("cap", 64).max(1);
    let rounds: u64 = flag("rounds", 3).max(1);
    let seed: u64 = flag("seed", 2014);

    println!("SCALE-STORAGE: cap {cap}, {rounds} round(s) per arm, seed {seed}\n");

    // RSS ladder: capped durable arms at 1×..8× the cap, then the
    // uncapped in-memory contrast at 8×, each in a fresh process.
    let mut arms: Vec<serde_json::Value> = Vec::new();
    let mut dirs: Vec<PathBuf> = Vec::new();
    for mult in [1u32, 2, 4, 8] {
        let dir = scratch_dir(&format!("rss-{mult}x"));
        let users = cap as u32 * mult;
        let arm = spawn_arm("capped", users, cap, rounds, seed, Some(&dir));
        println!(
            "capped   {users:>6} users: {:>7} kB peak RSS, {:>4} resident, \
             {:>6} evictions, {:>6} hydrations, {:>6} ms",
            arm["peak_rss_kb"],
            arm["resident_users"],
            arm["evictions"],
            arm["hydrations"],
            arm["drive_ms"]
        );
        assert!(
            arm["resident_users"].as_u64().unwrap_or(u64::MAX) <= cap as u64,
            "cap leaked: {} resident > cap {cap}",
            arm["resident_users"]
        );
        arms.push(arm);
        dirs.push(dir);
    }
    let uncapped = spawn_arm("uncapped", cap as u32 * 8, cap, rounds, seed, None);
    println!(
        "uncapped {:>6} users: {:>7} kB peak RSS, {:>4} resident, {:>6} ms",
        uncapped["users"],
        uncapped["peak_rss_kb"],
        uncapped["resident_users"],
        uncapped["drive_ms"]
    );

    // Hydration ladder: cap 1, two users ping-ponging, so every read
    // hydrates a parked store whose history grows with the round count.
    let mut hydration_ladder: Vec<(u64, u128)> = Vec::new();
    for history_rounds in [1u64, 4, 16] {
        let dir = scratch_dir(&format!("hist-{history_rounds}"));
        let cloud = CloudInstance::new(CellDatabase::new(), seed).with_storage(StorageConfig {
            resident_cap: Some(1),
            store_dir: Some(dir.clone()),
            snapshot_every_days: 1,
        });
        let tokens: Vec<String> = (0..2)
            .map(|n| register(&cloud, n, SimTime::from_seconds(u64::from(n))))
            .collect();
        for round in 0..history_rounds {
            for user in 0..2u32 {
                touch(&cloud, &tokens[user as usize], user, round);
            }
        }
        let hydrations_before = cloud.hydration_count();
        let started = Instant::now();
        let reads = 50u64;
        for i in 0..reads {
            let user = (i % 2) as usize;
            let resp = cloud.handle(
                &Request::get("/api/v1/places").with_token(&tokens[user]),
                SimTime::from_seconds(70_000 + i),
            );
            assert!(resp.is_success(), "ladder read failed: {resp:?}");
        }
        let hydrated = cloud.hydration_count() - hydrations_before;
        assert!(hydrated >= reads - 1, "ping-pong reads must hydrate");
        let per_hydration_us = started.elapsed().as_micros() / u128::from(hydrated.max(1));
        println!(
            "hydrate  {history_rounds:>2} rounds of history: {per_hydration_us:>6} µs/hydration \
             ({hydrated} hydrations)"
        );
        hydration_ladder.push((history_rounds, per_hydration_us));
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Recovery: crash the largest capped arm and rebuild from its dir.
    let recover_dir = dirs.last().expect("ladder ran").clone();
    let recover_config = StorageConfig {
        resident_cap: Some(cap),
        store_dir: Some(recover_dir.clone()),
        snapshot_every_days: 1,
    };
    let started = Instant::now();
    let recovered = CloudInstance::recover(
        CellDatabase::new(),
        seed,
        recover_config,
        SimTime::from_seconds(80_000),
    );
    let recovery_ms = started.elapsed().as_millis();
    let recovered_users = recovered.user_count();
    println!(
        "\nrecovery: {recovered_users} users rebuilt from WAL + snapshots in {recovery_ms} ms"
    );
    assert_eq!(
        recovered_users,
        cap * 8,
        "recovery lost users ({recovered_users} of {})",
        cap * 8
    );

    let capped_8x_kb = arms.last().expect("ladder ran")["peak_rss_kb"]
        .as_u64()
        .unwrap_or(u64::MAX);
    let uncapped_8x_kb = uncapped["peak_rss_kb"].as_u64().unwrap_or(0);

    let mut out = String::from("{\n  \"bench\": \"storage_soak\",\n");
    out.push_str(&format!(
        "  \"cap\": {cap},\n  \"rounds\": {rounds},\n  \"seed\": {seed},\n"
    ));
    out.push_str("  \"arms\": [\n");
    for (i, arm) in arms.iter().chain(std::iter::once(&uncapped)).enumerate() {
        out.push_str(&format!("    {}{arm}\n", if i > 0 { ", " } else { "" }));
    }
    out.push_str("  ],\n");
    out.push_str("  \"hydration_us_by_history_rounds\": {");
    for (i, (rounds, us)) in hydration_ladder.iter().enumerate() {
        out.push_str(&format!(
            "{}\"{rounds}\": {us}",
            if i > 0 { ", " } else { "" }
        ));
    }
    out.push_str("},\n");
    out.push_str(&format!(
        "  \"recovery\": {{\"users\": {recovered_users}, \"wallclock_ms\": {recovery_ms}}},\n"
    ));
    out.push_str(&format!(
        "  \"capped_8x_peak_rss_kb\": {capped_8x_kb},\n  \"uncapped_8x_peak_rss_kb\": {uncapped_8x_kb}\n}}\n"
    ));
    let path = "BENCH_storage.json";
    std::fs::write(path, &out).expect("write BENCH_storage.json");
    println!("wrote {path}");

    for dir in dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
    // The honest claim, enforced: growing the population 8× beyond the
    // cap must cost less peak RSS than keeping it all resident. (Some
    // per-user residue is expected — registrations, tokens, and WAL
    // watermarks stay in RAM by design.)
    assert!(
        capped_8x_kb < uncapped_8x_kb,
        "capped peak RSS ({capped_8x_kb} kB) reached the uncapped arm's ({uncapped_8x_kb} kB)"
    );
}
