//! PERF: incremental vs. batch discovery cost as history grows, plus
//! cold vs. memoized analytics throughput.
//!
//! Part 1 simulates a multi-day deployment: each "night" appends one day
//! of GSM observations and runs discovery twice — once as the old batch
//! pipeline (`gca::discover_places` over the full log) and once as the
//! incremental engine (`IncrementalGca::absorb` of the suffix + a
//! `places()` read). Outputs are asserted identical every night, so the
//! timings compare two implementations of the *same* answer. Per-night
//! batch cost grows with total history; incremental cost tracks the
//! suffix.
//!
//! Part 2 stores a profile history and answers the `next_place` Markov
//! query repeatedly: cold retrains the model per query (the old endpoint
//! behaviour), memoized trains once per history generation (the new
//! endpoint behaviour, reproduced here at the library level).
//!
//! Usage: `gca_scaling [--days D] [--repeats R] [--queries Q]
//! [--history-days H]` — writes `BENCH_gca.json` in the current
//! directory.

use std::time::Instant;

use pmware_algorithms::gca::{self, GcaConfig, IncrementalGca};
use pmware_algorithms::signature::DiscoveredPlaceId;
use pmware_bench::args::flag;
use pmware_cloud::analytics::ProfileHistory;
use pmware_cloud::predict::MarkovPredictor;
use pmware_cloud::profile::{MobilityProfile, PlaceEntry};
use pmware_world::tower::NetworkLayer;
use pmware_world::{CellGlobalId, CellId, GsmObservation, Lac, Plmn, SimTime};

struct Night {
    day: u64,
    history_len: usize,
    suffix_len: usize,
    batch_seconds: f64,
    incremental_seconds: f64,
}

fn cell(id: u32) -> CellGlobalId {
    CellGlobalId {
        plmn: Plmn { mcc: 404, mnc: 45 },
        lac: Lac(1),
        cell: CellId(id),
    }
}

/// One day of minute-spaced observations: home overnight, work during the
/// day, an evening errand — every stay an oscillation between two cells so
/// GCA has bounce edges to cluster.
fn day_observations(day: u64) -> Vec<GsmObservation> {
    (0..1_440u64)
        .map(|m| {
            let (a, b) = match m {
                0..=479 => (1, 2),                             // home
                480..=539 => (10 + (m / 12 % 3) as u32, 20),   // commute drift
                540..=1019 => (3, 4),                          // work
                1020..=1079 => (30, 31 + (m / 15 % 2) as u32), // commute back
                1080..=1199 => (5, 6),                         // errand
                _ => (1, 2),                                   // home again
            };
            GsmObservation {
                time: SimTime::from_seconds((day * 1_440 + m) * 60),
                cell: cell(if m % 3 == 1 { b } else { a }),
                layer: NetworkLayer::G2,
                rssi_dbm: -70.0,
            }
        })
        .collect()
}

fn bench_discovery(days: u64, repeats: usize, config: &GcaConfig) -> Vec<Night> {
    let mut nights = Vec::new();
    let mut log: Vec<GsmObservation> = Vec::new();
    let mut engine = IncrementalGca::new(config.clone());
    for day in 0..days {
        let suffix = day_observations(day);
        log.extend_from_slice(&suffix);

        // Batch: what the pre-incremental pipeline paid every night.
        let mut batch_best = f64::INFINITY;
        let mut batch_out = None;
        for _ in 0..repeats {
            let started = Instant::now();
            let out = gca::discover_places(&log, config);
            batch_best = batch_best.min(started.elapsed().as_secs_f64());
            batch_out = Some(out);
        }

        // Incremental: the absorb mutates state so it can only run once —
        // it is timed once and charged in full; only the pure `places()`
        // read takes the best of the repeats.
        let started = Instant::now();
        engine.absorb(&suffix);
        let absorb_seconds = started.elapsed().as_secs_f64();
        let mut read_best = f64::INFINITY;
        let mut incr_out = None;
        for _ in 0..repeats {
            let started = Instant::now();
            let out = engine.places();
            read_best = read_best.min(started.elapsed().as_secs_f64());
            incr_out = Some(out);
        }
        let incr_best = absorb_seconds + read_best;

        assert_eq!(
            incr_out, batch_out,
            "incremental diverged from batch on night {day}"
        );
        nights.push(Night {
            day,
            history_len: log.len(),
            suffix_len: suffix.len(),
            batch_seconds: batch_best,
            incremental_seconds: incr_best,
        });
    }
    nights
}

/// (cold queries/sec, memoized queries/sec) for the Markov next-place
/// query over `days` stored profiles.
fn bench_analytics(days: u64, queries: usize) -> (f64, f64) {
    let mut history = ProfileHistory::new();
    for day in 0..days {
        let mut profile = MobilityProfile::new(day);
        for (i, place) in [0u32, 1, 2, 0].into_iter().enumerate() {
            profile.places.push(PlaceEntry {
                place: DiscoveredPlaceId(place),
                arrival: SimTime::from_day_time(day, 4 * i as u64, 0, 0),
                departure: SimTime::from_day_time(day, 4 * i as u64 + 3, 0, 0),
            });
        }
        history.upsert(profile);
    }
    let place = DiscoveredPlaceId(0);

    // Cold: retrain per query, as the endpoint did before memoization.
    let started = Instant::now();
    for _ in 0..queries {
        let model = MarkovPredictor::train(&history);
        std::hint::black_box(model.predict_next(place));
    }
    let cold = queries as f64 / started.elapsed().as_secs_f64();

    // Memoized: retrain only when the history generation moves.
    let mut cache: Option<(u64, MarkovPredictor)> = None;
    let started = Instant::now();
    for _ in 0..queries {
        let generation = history.generation();
        if cache.as_ref().map(|(g, _)| *g) != Some(generation) {
            cache = Some((generation, MarkovPredictor::train(&history)));
        }
        let (_, model) = cache.as_ref().expect("cache filled");
        std::hint::black_box(model.predict_next(place));
    }
    let memoized = queries as f64 / started.elapsed().as_secs_f64();
    (cold, memoized)
}

fn main() {
    let days: u64 = flag("days", 14);
    let repeats: usize = flag("repeats", 3).max(1);
    let queries: usize = flag("queries", 10_000);
    // The long-term profile history spans months (§2.3.2); the analytics
    // part uses its own, longer horizon so the cold-retrain cost is
    // representative.
    let history_days: u64 = flag("history-days", 90);
    let config = GcaConfig::default();

    println!("PERF: GCA nightly discovery — {days} day(s), best of {repeats} repeat(s)\n");
    let nights = bench_discovery(days, repeats, &config);

    println!(
        "{:>5} {:>9} {:>8} {:>12} {:>12} {:>9}",
        "night", "history", "suffix", "batch (ms)", "incr (ms)", "speedup"
    );
    for n in &nights {
        println!(
            "{:>5} {:>9} {:>8} {:>12.3} {:>12.3} {:>8.1}x",
            n.day,
            n.history_len,
            n.suffix_len,
            n.batch_seconds * 1e3,
            n.incremental_seconds * 1e3,
            n.batch_seconds / n.incremental_seconds
        );
    }

    let (cold, memoized) = bench_analytics(history_days, queries);
    println!(
        "\nPERF: next_place analytics over {history_days} day(s), {queries} queries — \
         cold {cold:.0} q/s, memoized {memoized:.0} q/s ({:.0}x)",
        memoized / cold
    );

    let mut json = String::from("{\n  \"bench\": \"gca_scaling\",\n");
    json.push_str(&format!("  \"days\": {days},\n  \"repeats\": {repeats},\n"));
    json.push_str("  \"nightly_discovery\": [\n");
    for (i, n) in nights.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"night\": {}, \"history_observations\": {}, \"suffix_observations\": {}, \
             \"batch_seconds\": {:.6}, \"incremental_seconds\": {:.6}, \
             \"speedup\": {:.2}}}{}\n",
            n.day,
            n.history_len,
            n.suffix_len,
            n.batch_seconds,
            n.incremental_seconds,
            n.batch_seconds / n.incremental_seconds,
            if i + 1 < nights.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"analytics_next_place\": {{\"history_days\": {history_days}, \"queries\": {queries}, \
         \"cold_queries_per_second\": {cold:.1}, \
         \"memoized_queries_per_second\": {memoized:.1}, \
         \"memoized_speedup\": {:.1}}}\n",
        memoized / cold
    ));
    json.push_str("}\n");
    let path = "BENCH_gca.json";
    std::fs::write(path, json).expect("write BENCH_gca.json");
    println!("\nwrote {path}");
}
