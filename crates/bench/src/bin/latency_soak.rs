//! OBS-LATENCY: sim-time latency soak — request quantiles vs offered
//! load, queue shedding under a flash crowd, and the largest user count
//! one instance sustains at a fixed p99 SLO.
//!
//! Three arms against a single [`CloudInstance`] with the calibrated
//! service-time model and a **shared** FIFO queue:
//!
//! * **load ladder** — user counts doubling up to `--max-users`, every
//!   user firing `--reqs` requests at the same simulated instant; each
//!   rung reports p50/p99/p999 from the merged
//!   `cloud_request_latency_us` histograms;
//! * **SLO search** — the largest rung whose p99 still meets
//!   `--slo-p99-ms` (the ladder *is* the search, so the two always
//!   agree);
//! * **flash crowd** — `--flash-users` clients all syncing contacts at
//!   one instant against a queue that sheds at `--shed-depth`. Shed
//!   clients back off by the server's drain hint and retry; the arm must
//!   actually shed, every sync must eventually land, and the final
//!   per-user cloud state must be identical to an unshedded baseline.
//!
//! Everything is sim-time: same seed, same report, byte for byte.
//!
//! Usage: `latency_soak [--seed S] [--reqs N] [--max-users N]
//! [--slo-p99-ms MS] [--flash-users N] [--shed-depth D]`.
//! Writes `BENCH_latency.json` in the current directory and exits
//! nonzero when a gate fails.

use pmware_bench::args::flag;
use pmware_cloud::{
    CellDatabase, CloudInstance, ContactEntry, LatencyProfile, QueueConfig, QueueMode,
    RegistrationBody, Request, SharedCloud, UserId,
};
use pmware_core::cloud_client::CloudClient;
use pmware_obs::Obs;
use pmware_world::{SimDuration, SimTime};

struct Rung {
    users: u64,
    requests: u64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    attained: bool,
}

/// One ladder rung: `users` devices registered up front (model off, so
/// registration never pollutes the histogram), then `reqs` place queries
/// per user all arriving at the same simulated second.
fn run_rung(seed: u64, users: u64, reqs: u64, slo_us: u64) -> Rung {
    let obs = Obs::new();
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::new(), seed).with_obs(&obs));
    let t0 = SimTime::EPOCH;
    let tokens: Vec<String> = (0..users)
        .map(|i| {
            let request = Request::post(
                "/api/v1/registration",
                RegistrationBody {
                    imei: format!("imei-{i:04}"),
                    email: format!("user{i}@example.com"),
                },
            );
            let response = cloud.handle(&request, t0);
            assert!(response.is_success(), "ladder registration failed");
            response.json()["token"]
                .as_str()
                .expect("registration token")
                .to_owned()
        })
        .collect();
    cloud.set_latency(Some(LatencyProfile::calibrated(seed).with_queue(
        QueueConfig {
            mode: QueueMode::Shared,
            shed_depth: 0,
        },
    )));
    let burst = t0 + SimDuration::from_seconds(60);
    for _ in 0..reqs {
        for token in &tokens {
            let request = Request::get("/api/v1/places").with_token(token.clone());
            let response = cloud.handle(&request, burst);
            assert!(response.is_success(), "unshedded ladder request failed");
        }
    }
    let report = obs
        .metrics()
        .expect("metrics enabled")
        .snapshot()
        .merged_histogram("cloud_request_latency_us{")
        .expect("latency histograms registered")
        .slo_report(slo_us);
    assert_eq!(report.count, users * reqs, "histogram missed observations");
    Rung {
        users,
        requests: report.count,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        p999_us: report.p999_us,
        attained: report.attained,
    }
}

struct FlashArm {
    sheds: u64,
    retries: u64,
    rate_limited: u64,
    state: Vec<(UserId, Vec<ContactEntry>)>,
}

/// The flash crowd: every client syncs one contact batch at the same
/// instant through the real retry loop (shed 429s honor the server's
/// drain hint). `latency: None` is the unshedded baseline arm.
fn run_flash(seed: u64, users: u64, latency: Option<LatencyProfile>) -> FlashArm {
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::new(), seed));
    let t0 = SimTime::EPOCH;
    let mut clients: Vec<CloudClient> = (0..users)
        .map(|i| {
            CloudClient::register(
                cloud.clone(),
                &format!("imei-{i:04}"),
                &format!("user{i}@example.com"),
                t0,
            )
            .expect("flash registration")
        })
        .collect();
    cloud.set_latency(latency);
    let crowd = t0 + SimDuration::from_minutes(5);
    for (i, client) in clients.iter_mut().enumerate() {
        let contact = ContactEntry {
            contact: format!("peer-{i:04}"),
            start: t0,
            end: crowd,
            place: None,
        };
        client
            .sync_contacts(&[contact], 1, crowd)
            .expect("flash sync failed even after retries");
    }
    FlashArm {
        sheds: cloud.queue_shed_count(),
        retries: clients.iter().map(|c| c.retries()).sum(),
        rate_limited: clients.iter().map(|c| c.rate_limited()).sum(),
        state: clients
            .iter()
            .map(|c| (c.user(), cloud.contacts_of(c.user())))
            .collect(),
    }
}

fn main() {
    let seed: u64 = flag("seed", 7);
    let reqs: u64 = flag("reqs", 8).max(1);
    let max_users: u64 = flag("max-users", 64).max(1);
    let slo_p99_ms: u64 = flag("slo-p99-ms", 100).max(1);
    let flash_users: u64 = flag("flash-users", 256).max(1);
    let shed_depth: u64 = flag("shed-depth", 100).max(1);
    let slo_us = slo_p99_ms * 1_000;

    println!(
        "OBS-LATENCY: calibrated profile, shared queue, seed {seed}; \
         ladder ≤{max_users} users × {reqs} req(s), SLO p99 ≤ {slo_p99_ms} ms; \
         flash crowd {flash_users} users, shed depth {shed_depth}\n"
    );

    let mut ladder = Vec::new();
    let mut users = 1u64;
    while users <= max_users {
        ladder.push(run_rung(seed, users, reqs, slo_us));
        users *= 2;
    }
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>6}",
        "users", "requests", "p50_us", "p99_us", "p999_us", "slo"
    );
    for rung in &ladder {
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>10} {:>6}",
            rung.users,
            rung.requests,
            rung.p50_us,
            rung.p99_us,
            rung.p999_us,
            if rung.attained { "ok" } else { "MISS" }
        );
    }
    let max_users_at_slo = ladder
        .iter()
        .filter(|r| r.attained)
        .map(|r| r.users)
        .max()
        .unwrap_or(0);
    println!("\nmax users per instance at p99 ≤ {slo_p99_ms} ms: {max_users_at_slo}");

    let shedded = run_flash(
        seed,
        flash_users,
        Some(LatencyProfile::calibrated(seed).with_queue(QueueConfig {
            mode: QueueMode::Shared,
            shed_depth,
        })),
    );
    let baseline = run_flash(seed, flash_users, None);
    let converged = shedded.state == baseline.state;
    // Offered = first attempts + retries; the shed rate is sheds over that.
    let offered = flash_users + shedded.retries;
    let shed_rate = shedded.sheds as f64 / offered as f64;
    println!(
        "flash crowd: {} shed of {offered} offered (rate {shed_rate:.4}), \
         {} retries ({} rate-limited), converged: {converged}",
        shedded.sheds, shedded.retries, shedded.rate_limited
    );

    let mut out = String::from("{\n  \"bench\": \"latency_soak\",\n");
    out.push_str(&format!(
        "  \"seed\": {seed},\n  \"profile\": \"calibrated\",\n  \"queue_mode\": \"shared\",\n"
    ));
    out.push_str(&format!("  \"slo_p99_ms\": {slo_p99_ms},\n"));
    out.push_str("  \"load_ladder\": [\n");
    for (i, rung) in ladder.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"users\": {}, \"requests\": {}, \"p50_us\": {}, \"p99_us\": {}, \
             \"p999_us\": {}, \"slo_attained\": {}}}{}\n",
            rung.users,
            rung.requests,
            rung.p50_us,
            rung.p99_us,
            rung.p999_us,
            rung.attained,
            if i + 1 < ladder.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"max_users_at_slo\": {max_users_at_slo},\n"));
    out.push_str(&format!(
        "  \"flash_crowd\": {{\"users\": {flash_users}, \"shed_depth\": {shed_depth}, \
         \"sheds\": {}, \"offered\": {offered}, \"shed_rate\": {shed_rate:.4}, \
         \"retries\": {}, \"rate_limited\": {}, \"converged\": {converged}}}\n",
        shedded.sheds, shedded.retries, shedded.rate_limited
    ));
    out.push_str("}\n");
    let path = "BENCH_latency.json";
    std::fs::write(path, &out).expect("write BENCH_latency.json");
    println!("\nwrote {path}");

    let first = ladder.first().expect("ladder is non-empty");
    let last = ladder.last().expect("ladder is non-empty");
    assert!(
        last.p99_us >= first.p99_us,
        "p99 did not grow with offered load ({} -> {})",
        first.p99_us,
        last.p99_us
    );
    assert!(
        shedded.sheds > 0,
        "flash crowd never tripped the shed threshold"
    );
    assert_eq!(baseline.sheds, 0, "unshedded baseline shed requests");
    assert!(
        converged,
        "flash crowd state diverged from the unshedded baseline"
    );
}
