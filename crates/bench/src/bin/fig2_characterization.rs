//! FIG2: regenerates Figure 2 — "Characterization of place-aware
//! applications": which application classes need which place granularity,
//! and what PMWare therefore samples for them.

use pmware_core::requirements::{app_characterization, Granularity};

fn main() {
    println!("FIG2: characterization of place-aware applications\n");
    println!(
        "{:<42} {:<12} {:<24} examples",
        "application class", "granularity", "triggered interfaces"
    );
    println!("{}", "-".repeat(110));
    for row in app_characterization() {
        let interfaces: Vec<&str> = row
            .granularity
            .triggered_interfaces()
            .iter()
            .map(|i| i.label())
            .collect();
        let interfaces = if interfaces.is_empty() {
            "gsm only".to_owned()
        } else {
            format!("gsm + {}", interfaces.join(" + "))
        };
        println!(
            "{:<42} {:<12} {:<24} {}",
            row.application,
            row.granularity.label(),
            interfaces,
            row.examples
        );
    }

    println!("\ngranularity classes (coarse to fine):");
    for g in Granularity::ALL {
        println!(
            "  {:<9} ~{:>5.0} m payload precision",
            g.label(),
            g.coarseness_m()
        );
    }
}
