//! DEP-A/B/C: the §4 deployment study — 16 participants, two weeks,
//! PMWare + PlaceADs, diary ground truth.
//!
//! Paper numbers: 123 places discovered; 85 tagged (~70 %); 62 evaluable;
//! 79.03 % correct / 14.52 % merged / 6.45 % divided; ad like:dislike 17:3.
//!
//! Usage: `deployment_study [--seeds N] [--participants N] [--days D]
//! [--threads T] [--metrics-out F] [--trace-out F]` — with `--seeds N > 1`
//! the study is repeated over
//! consecutive seeds and the mean is reported alongside the per-seed
//! numbers (the merged/divided split carries real seed-to-seed variance at
//! this cohort size). `--threads` fans participants out over worker
//! threads (0 = one per core); results are identical at any thread count.

use pmware_bench::args::{flag, opt_flag};
use pmware_bench::deployment::{run_study, StudyConfig, StudyResults};
use pmware_obs::Obs;

fn main() {
    let seeds: u64 = flag("seeds", 1);
    let metrics_out = opt_flag("metrics-out");
    let trace_out = opt_flag("trace-out");
    let obs = match (&metrics_out, &trace_out) {
        (None, None) => Obs::disabled(),
        (_, None) => Obs::new(),
        (_, Some(_)) => Obs::with_trace(65_536),
    };
    let defaults = StudyConfig::default();
    let base = StudyConfig {
        participants: flag("participants", defaults.participants),
        days: flag("days", defaults.days),
        threads: flag("threads", defaults.threads),
        obs: obs.clone(),
        offload_batch_days: flag("offload-batch-days", defaults.offload_batch_days),
        ..defaults
    };

    let mut all: Vec<(u64, StudyResults)> = Vec::new();
    for offset in 0..seeds {
        let config = StudyConfig {
            seed: 2014 + offset,
            ..base.clone()
        };
        if offset == 0 {
            println!(
                "DEP: deployment study — {} participants x {} days ({}), seeds {}..{}, {} thread(s)\n",
                config.participants,
                config.days,
                config.region.name,
                config.seed,
                config.seed + seeds - 1,
                pmware_bench::parallel::resolve_threads(config.threads),
            );
        }
        let results = run_study(&config);
        all.push((config.seed, results));
    }

    if seeds == 1 {
        print_participants(&all[0].1);
    }

    println!("\nper seed:");
    println!(
        "{:>6} {:>10} {:>7} {:>9} {:>9} {:>8} {:>9} {:>7}",
        "seed", "discovered", "tagged", "evaluable", "correct", "merged", "divided", "likes"
    );
    for (seed, r) in &all {
        println!(
            "{:>6} {:>10} {:>7} {:>9} {:>8.1}% {:>7.1}% {:>8.1}% {:>6.1}%",
            seed,
            r.total_discovered(),
            r.total_tagged(),
            r.total_evaluable(),
            r.correct_fraction() * 100.0,
            r.merged_fraction() * 100.0,
            r.divided_fraction() * 100.0,
            r.like_fraction() * 100.0
        );
    }

    let n = all.len() as f64;
    let mean = |f: &dyn Fn(&StudyResults) -> f64| all.iter().map(|(_, r)| f(r)).sum::<f64>() / n;
    let discovered = mean(&|r| r.total_discovered() as f64);
    let tagged_frac = mean(&|r| r.tagged_fraction());
    let evaluable = mean(&|r| r.total_evaluable() as f64);
    let correct = mean(&|r| r.correct_fraction());
    let merged = mean(&|r| r.merged_fraction());
    let divided = mean(&|r| r.divided_fraction());
    let likes = mean(&|r| r.like_fraction());

    println!(
        "\nDEP-A: discovery and tagging (mean of {} seed(s))",
        all.len()
    );
    println!("  places discovered : {discovered:>6.1}  (paper: 123)");
    println!(
        "  tagged fraction   : {:>6.1}%  (paper: ~70%)",
        tagged_frac * 100.0
    );
    println!("  evaluable places  : {evaluable:>6.1}  (paper: 62)");
    println!("\nDEP-B: discovery quality over evaluable places (GSM + opportunistic WiFi)");
    println!("  correct : {:>6.2}%  (paper: 79.03%)", correct * 100.0);
    println!("  merged  : {:>6.2}%  (paper: 14.52%)", merged * 100.0);
    println!("  divided : {:>6.2}%  (paper:  6.45%)", divided * 100.0);
    println!("\nDEP-C: PlaceADs feedback");
    println!(
        "  like fraction = {:.1}%  (paper: 17:3 = 85%)",
        likes * 100.0
    );

    // With --seeds > 1 the snapshot accumulates across all runs (one
    // registry serves the whole process).
    if let (Some(path), Some(json)) = (&metrics_out, obs.metrics_json()) {
        std::fs::write(path, json).expect("write metrics snapshot");
        println!("\nmetrics snapshot written to {path}");
    }
    if let (Some(path), Some(jsonl)) = (&trace_out, obs.trace_jsonl()) {
        std::fs::write(path, jsonl).expect("write trace");
        println!("trace written to {path}");
    }
}

fn print_participants(results: &StudyResults) {
    println!("per participant:");
    println!(
        "{:>4} {:>10} {:>7} {:>9} {:>8} {:>7} {:>8} {:>6} {:>8} {:>10}",
        "id",
        "discovered",
        "tagged",
        "evaluable",
        "correct",
        "merged",
        "divided",
        "likes",
        "dislikes",
        "energy(kJ)"
    );
    for (i, p) in results.participants.iter().enumerate() {
        println!(
            "{:>4} {:>10} {:>7} {:>9} {:>8} {:>7} {:>8} {:>6} {:>8} {:>10.1}",
            i,
            p.discovered,
            p.tagged,
            p.evaluable,
            p.correct,
            p.merged,
            p.divided,
            p.likes,
            p.dislikes,
            p.energy_joules / 1_000.0
        );
    }
}
