//! OBS-OVERHEAD: the cost of observability, and the proof it is pure.
//!
//! Runs the same scaled-down deployment study twice per repetition —
//! once with observability fully disabled (every handle a no-op), once
//! with a live metrics registry *and* trace bus — interleaved, taking the
//! best wall time of each arm so scheduler noise on small machines does
//! not masquerade as instrumentation cost.
//!
//! Two claims are checked, one hard and one soft:
//!
//! * **Zero perturbation (hard):** every run, instrumented or not, must
//!   produce an identical [`StudyResults`] — same places, same energy to
//!   the last bit of the f64, same authenticated cloud request count
//!   (`cloud_requests`, so instrumentation provably added no wire
//!   traffic). Any divergence aborts the bench with a nonzero exit.
//! * **Cheap (soft):** the best-of-N overhead fraction is reported in
//!   `BENCH_obs.json`; the expectation is < 2 %. It is reported, not
//!   asserted — wall-clock ratios on a loaded 1-core CI box are not a
//!   correctness property, determinism is.
//!
//! Usage: `obs_overhead [--participants N] [--days D] [--reps R]`.

use std::time::Instant;

use pmware_bench::args::flag;
use pmware_bench::deployment::{run_study, StudyConfig, StudyResults};
use pmware_obs::Obs;
use pmware_world::builder::RegionProfile;

fn config(obs: Obs, participants: usize, days: u64) -> StudyConfig {
    StudyConfig {
        participants,
        days,
        seed: 2014,
        region: RegionProfile::urban_india(),
        threads: 1,
        obs,
        offload_batch_days: 0,
        storage: None,
    }
}

fn main() {
    let participants: usize = flag("participants", 6);
    let days: u64 = flag("days", 5);
    let reps: usize = flag("reps", 5).max(1);

    println!(
        "OBS-OVERHEAD: {participants} participants x {days} days, \
         best of {reps} interleaved repetition(s)\n"
    );

    // Warm-up pass (page cache, allocator) — discarded.
    let baseline = run_study(&config(Obs::disabled(), participants, days));

    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let mut divergences = 0u32;
    for rep in 0..reps {
        let start = Instant::now();
        let off = run_study(&config(Obs::disabled(), participants, days));
        let off_s = start.elapsed().as_secs_f64();
        best_off = best_off.min(off_s);

        let obs = Obs::with_trace(65_536);
        let start = Instant::now();
        let on = run_study(&config(obs, participants, days));
        let on_s = start.elapsed().as_secs_f64();
        best_on = best_on.min(on_s);

        let identical = off == baseline && on == baseline;
        if !identical {
            divergences += 1;
        }
        println!(
            "  rep {rep}: disabled {off_s:.3}s  enabled {on_s:.3}s  results identical: {identical}"
        );
    }

    let overhead = (best_on - best_off) / best_off;
    println!("\nbest disabled : {best_off:.3}s");
    println!("best enabled  : {best_on:.3}s");
    println!("overhead      : {:.2}% (expected < 2%)", overhead * 100.0);
    println!(
        "cloud requests: {} in every arm (instrumentation added no wire traffic)",
        baseline.cloud_requests
    );

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"participants\": {participants},\n  \
         \"days\": {days},\n  \"reps\": {reps},\n  \
         \"best_disabled_seconds\": {best_off:.4},\n  \
         \"best_enabled_seconds\": {best_on:.4},\n  \
         \"overhead_fraction\": {overhead:.4},\n  \
         \"cloud_requests\": {},\n  \"results_identical\": {}\n}}\n",
        baseline.cloud_requests,
        divergences == 0,
    );
    std::fs::write("BENCH_obs.json", json).expect("write BENCH_obs.json");
    println!("\nmachine-readable output in BENCH_obs.json");

    if divergences > 0 {
        eprintln!("error: observability perturbed study results in {divergences} repetition(s)");
        std::process::exit(1);
    }
    let _ = baseline_energy_sanity(&baseline);
}

/// Keeps the compiler honest about actually using the baseline results.
fn baseline_energy_sanity(results: &StudyResults) -> f64 {
    results.participants.iter().map(|p| p.energy_joules).sum()
}
