//! ROBUST-FEDERATION: federation soak — capacity and control-plane cost
//! of multi-instance deployment with a mid-study failover.
//!
//! Runs one federated study arm (default: 6 participants × 3 days × 2
//! instances, round-robin placement, the hosting instance of participant
//! 0 killed at noon of day 1) next to the single-instance fault-free
//! baseline, and reports:
//!
//! * **requests routed per instance** — the steady-state load split;
//! * **migration latency in sim-time** — one sim-second per WAL request
//!   replayed into the adopting instance;
//! * **control-plane requests** — pinned to one handshake per
//!   participant plus one topology refresh per displaced client, i.e.
//!   **zero** router involvement at steady state.
//!
//! Usage: `federation_soak [--participants P] [--days D] [--seed S]
//! [--instances N] [--balance-policy consistent-hash|round-robin|least-connections]
//! [--failover-at-day D.H (e.g. 1.12; negative disables)] [--chaos-rate R]`.
//! Writes `BENCH_federation.json` in the current directory and exits
//! nonzero if the arm diverges from the baseline or a control-plane pin
//! breaks.

use pmware_bench::args::{flag, opt_flag};
use pmware_bench::federation::{run_federation, FederationConfig};
use pmware_cloud::BalancePolicy;
use pmware_world::SimTime;

fn main() {
    let participants: usize = flag("participants", 6).max(1);
    let days: u64 = flag("days", 3).max(2);
    let seed: u64 = flag("seed", 2014);
    let instances: usize = flag("instances", 2).max(1);
    let policy = match opt_flag("balance-policy") {
        Some(s) => BalancePolicy::parse(&s).unwrap_or_else(|| {
            eprintln!("error: unknown --balance-policy {s:?}");
            std::process::exit(2);
        }),
        None => BalancePolicy::RoundRobin,
    };
    // `--failover-at-day 1.12` kills at day 1, hour 12; negative disables.
    let failover_at_day: f64 = flag("failover-at-day", 1.12);
    let kill_at = (failover_at_day >= 0.0).then(|| {
        let day = failover_at_day.trunc() as u64;
        let hour = ((failover_at_day.fract() * 100.0).round() as u64).min(23);
        SimTime::from_day_time(day, hour, 0, 0)
    });
    let chaos_rate: f64 = flag("chaos-rate", 0.0);

    println!(
        "ROBUST-FEDERATION: {participants} participant(s) × {days} day(s), \
         {instances} instance(s), policy {}, seed {seed}\n",
        policy.label()
    );

    let baseline = run_federation(&FederationConfig::baseline(participants, days, seed));
    let mut config = FederationConfig::baseline(participants, days, seed);
    config.instances = instances;
    config.policy = policy;
    config.kill_at = kill_at;
    config.chaos_rate = chaos_rate;
    config.chaos_seed = seed + 900;
    let arm = run_federation(&config);

    println!("{:>10} {:>12}", "instance", "requests");
    for (id, requests) in &arm.per_instance_requests {
        println!("{:>10} {:>12}", format!("pci-{id:02}"), requests);
    }
    println!(
        "\ncontrol plane: {} handshakes at warmup, {} total \
         ({} displaced, {} WAL requests replayed, {} sim-s migration)",
        arm.control_after_warmup,
        arm.control_final,
        arm.displaced,
        arm.replayed,
        arm.migration_seconds
    );

    let converged = arm.per_user == baseline.per_user;
    let steady_state_router_requests =
        arm.control_final - arm.control_after_warmup - arm.displaced as u64;

    let mut out = String::from("{\n  \"bench\": \"federation_soak\",\n");
    out.push_str(&format!(
        "  \"participants\": {participants},\n  \"days\": {days},\n  \"seed\": {seed},\n"
    ));
    out.push_str(&format!(
        "  \"instances\": {instances},\n  \"balance_policy\": \"{}\",\n",
        policy.label()
    ));
    out.push_str(&format!(
        "  \"failover_at\": {},\n  \"chaos_rate\": {chaos_rate:.2},\n",
        kill_at.map_or("null".to_owned(), |t| t.as_seconds().to_string())
    ));
    out.push_str("  \"requests_per_instance\": {");
    for (i, (id, requests)) in arm.per_instance_requests.iter().enumerate() {
        out.push_str(&format!(
            "{}\"pci-{id:02}\": {requests}",
            if i > 0 { ", " } else { "" }
        ));
    }
    out.push_str("},\n");
    out.push_str(&format!(
        "  \"control_requests_warmup\": {},\n  \"control_requests_final\": {},\n",
        arm.control_after_warmup, arm.control_final
    ));
    out.push_str(&format!(
        "  \"steady_state_router_requests\": {steady_state_router_requests},\n"
    ));
    out.push_str(&format!(
        "  \"displaced_users\": {},\n  \"wal_requests_replayed\": {},\n",
        arm.displaced, arm.replayed
    ));
    out.push_str(&format!(
        "  \"migration_sim_seconds\": {},\n  \"faults_injected\": {},\n",
        arm.migration_seconds, arm.faults
    ));
    out.push_str(&format!(
        "  \"population_mean_activity\": {:.6},\n  \"converged\": {converged}\n}}\n",
        arm.population_mean_activity
    ));
    let path = "BENCH_federation.json";
    std::fs::write(path, &out).expect("write BENCH_federation.json");
    println!("\nwrote {path}");

    assert!(
        converged,
        "federated arm diverged from the single-instance baseline"
    );
    assert_eq!(
        steady_state_router_requests, 0,
        "router served requests outside handshake/failover windows"
    );
    if kill_at.is_some() {
        assert!(arm.displaced >= 1, "failover displaced nobody");
    }
}
