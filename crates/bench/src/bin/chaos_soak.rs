//! ROBUST-CHAOS: convergence and request overhead vs transport fault
//! rate.
//!
//! One participant runs the same deployment-study days under a seeded
//! [`FaultyCloud`] at increasing fault rates (all five fault kinds, all
//! endpoints). The link heals at the start of the last night; from then
//! on the cloud-side state (places, profiles, absorbed observations,
//! contacts) is probed hourly against a fault-free reference run of the
//! same seeds. Reported per rate:
//!
//! * **wire requests / retries** — the client's own counters, so the 0%
//!   row is the standing cost of the retry layer itself;
//! * **server requests / faults injected** — what the decorator did;
//! * **convergence hours after heal** — first hourly probe at which the
//!   faulty run's cloud state is byte-identical to the reference run's
//!   state at the same instant (the nightly maintenance pass at 3 AM is
//!   the natural resync point, so ≈3 h is the expected worst case).
//!
//! Usage: `chaos_soak [--days D] [--seed S]`. Writes `BENCH_chaos.json`
//! in the current directory and exits nonzero if any rate ≤ 0.30 fails
//! to converge.

use pmware_bench::args::flag;
use pmware_cloud::{CellDatabase, CloudInstance, FaultPlan, FaultyCloud, SharedCloud, UserId};
use pmware_core::intents::IntentFilter;
use pmware_core::{AppRequirement, Granularity, PmsConfig, PmwareMobileService};
use pmware_device::{Device, EnergyModel};
use pmware_mobility::Population;
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::radio::{RadioConfig, RadioEnvironment};
use pmware_world::{SimTime, World};

const RATES: [f64; 4] = [0.0, 0.10, 0.20, 0.30];

struct RateResult {
    rate: f64,
    wire_requests: u64,
    retries: u64,
    server_requests: u64,
    faults_injected: u64,
    converged: bool,
    convergence_hours: i64,
}

/// Cloud-side durable state for one user, canonically serialized.
fn cloud_snapshot(cloud: &SharedCloud, user: UserId) -> String {
    serde_json::to_string(&(
        cloud.places_of(user),
        cloud.profiles_of(user),
        cloud.observation_count(user),
        cloud.contacts_of(user),
    ))
    .expect("snapshot serializes")
}

/// Runs the study at one fault rate, probing the cloud hourly after the
/// link heals. Returns the client/server counters and the probe
/// snapshots (heal instant first, then one per hour to the study end).
fn run_at_rate(
    world: &World,
    itinerary: &pmware_mobility::Itinerary,
    days: u64,
    seed: u64,
    rate: f64,
) -> (RateResult, Vec<String>) {
    let shared = SharedCloud::new(CloudInstance::new(
        CellDatabase::from_world(world),
        seed + 1,
    ));
    let faulty = FaultyCloud::new(shared.clone(), FaultPlan::with_rate(seed + 2, rate));
    faulty.set_enabled(false);
    let env = RadioEnvironment::new(world, RadioConfig::default());
    let device = Device::new(env, itinerary, EnergyModel::htc_explorer(), seed + 3);
    let mut pms = PmwareMobileService::new(
        device,
        faulty.clone(),
        PmsConfig::for_participant(0),
        SimTime::EPOCH,
    )
    .expect("registration is fault-free");
    let user = pms.cloud_client_mut().user();
    let _rx = pms.register_app(
        "soak",
        AppRequirement::places(Granularity::Building),
        IntentFilter::all(),
    );
    faulty.set_enabled(rate > 0.0);

    let heal = SimTime::from_day_time(days - 1, 0, 0, 0);
    pms.run(heal).expect("faulted segment");
    faulty.set_enabled(false);
    faulty.flush(heal);

    let mut probes = vec![cloud_snapshot(&shared, user)];
    for hour in 1..=24 {
        pms.run(
            SimTime::from_day_time(days - 1, 0, 0, 0) + pmware_world::SimDuration::from_hours(hour),
        )
        .expect("healed segment");
        probes.push(cloud_snapshot(&shared, user));
    }

    let wire_requests = pms.cloud_client_mut().wire_requests();
    let retries = pms.cloud_client_mut().retries();
    let stats = faulty.stats();
    drop(pms.finish(SimTime::from_day_time(days, 0, 0, 0)));
    (
        RateResult {
            rate,
            wire_requests,
            retries,
            server_requests: shared.total_requests(),
            faults_injected: stats.faults,
            converged: false,
            convergence_hours: -1,
        },
        probes,
    )
}

fn main() {
    let days: u64 = flag("days", 3).max(2);
    let seed: u64 = flag("seed", 2014);

    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(seed)
        .build();
    let population = Population::generate(&world, 1, seed + 10);
    let itinerary = population.itinerary(&world, population.agents()[0].id(), days);

    println!("ROBUST-CHAOS: chaos soak — {days} day(s), seed {seed}\n");

    let (clean, reference) = run_at_rate(&world, &itinerary, days, seed, 0.0);
    let mut results = Vec::new();
    for &rate in &RATES {
        let (mut r, probes) = if rate == 0.0 {
            // Reuse the reference run; it converges to itself at hour 0.
            let (r, p) = run_at_rate(&world, &itinerary, days, seed, 0.0);
            (r, p)
        } else {
            run_at_rate(&world, &itinerary, days, seed, rate)
        };
        r.convergence_hours = probes
            .iter()
            .zip(&reference)
            .position(|(a, b)| a == b)
            .map_or(-1, |h| h as i64);
        r.converged = r.convergence_hours >= 0 && probes.last() == reference.last();
        results.push(r);
    }

    println!(
        "{:>6} {:>9} {:>8} {:>9} {:>8} {:>10} {:>12}",
        "rate", "wire req", "retries", "srv req", "faults", "converged", "conv (h)"
    );
    for r in &results {
        println!(
            "{:>6.2} {:>9} {:>8} {:>9} {:>8} {:>10} {:>12}",
            r.rate,
            r.wire_requests,
            r.retries,
            r.server_requests,
            r.faults_injected,
            r.converged,
            r.convergence_hours,
        );
    }

    let mut out = String::from("{\n  \"bench\": \"chaos_soak\",\n");
    out.push_str(&format!("  \"days\": {days},\n  \"seed\": {seed},\n"));
    out.push_str(&format!(
        "  \"clean_wire_requests\": {},\n  \"rates\": [\n",
        clean.wire_requests
    ));
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rate\": {:.2}, \"wire_requests\": {}, \"retries\": {}, \
             \"server_requests\": {}, \"faults_injected\": {}, \
             \"request_overhead_vs_clean\": {:.4}, \"converged\": {}, \
             \"convergence_hours_after_heal\": {}}}{}\n",
            r.rate,
            r.wire_requests,
            r.retries,
            r.server_requests,
            r.faults_injected,
            r.wire_requests as f64 / clean.wire_requests as f64,
            r.converged,
            r.convergence_hours,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = "BENCH_chaos.json";
    std::fs::write(path, &out).expect("write BENCH_chaos.json");
    println!("\nwrote {path}");

    for r in &results {
        assert!(
            r.converged,
            "rate {:.2} failed to converge after the link healed",
            r.rate
        );
    }
}
