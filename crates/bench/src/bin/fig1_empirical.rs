//! FIG1-EMP: empirical cross-check of the Figure 1 energy model.
//!
//! `fig1_power` prints the *closed-form* battery durations. This binary
//! validates that the simulated device agrees: it runs an actual sampling
//! loop on a simulated phone (paying per-sample energy plus baseline) and
//! projects the battery lifetime from the measured drain. Closed-form and
//! simulated columns should match to within a fraction of a percent —
//! anything else means the device's billing diverged from the model.

use pmware_device::energy::{EnergyModel, Interface};
use pmware_device::Device;
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::radio::{RadioConfig, RadioEnvironment};
use pmware_world::{SimDuration, SimTime};

fn main() {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(55)
        .build();
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let spot = world.places()[0].position();
    let model = EnergyModel::htc_explorer();
    let capacity = model.battery().energy_joules();

    let periods = [
        SimDuration::from_seconds(30),
        SimDuration::from_minutes(1),
        SimDuration::from_minutes(5),
    ];

    println!("FIG1-EMP: closed-form vs simulated battery duration (hours)");
    println!("(one simulated day of sampling per cell, stationary device)\n");
    println!(
        "{:>14} {:>8} {:>12} {:>12} {:>8}",
        "interface", "period", "closed-form", "simulated", "delta"
    );
    println!("{}", "-".repeat(60));

    for interface in [Interface::Gps, Interface::WifiScan, Interface::Gsm] {
        for period in periods {
            let closed = model.battery_duration_hours(interface, period);

            // Simulate one day of sampling at this period.
            let mut phone = Device::new(env.clone(), spot, EnergyModel::htc_explorer(), 56);
            let day = 24 * 3_600;
            let mut t = 0u64;
            while t < day {
                let now = SimTime::from_seconds(t);
                phone.bill_baseline(now);
                match interface {
                    Interface::Gps => {
                        let _ = phone.fix_gps(now);
                    }
                    Interface::WifiScan => {
                        let _ = phone.scan_wifi(now);
                    }
                    Interface::Gsm => {
                        let _ = phone.sample_gsm(now);
                    }
                    _ => unreachable!("not swept"),
                }
                t += period.as_seconds();
            }
            phone.bill_baseline(SimTime::from_seconds(day));
            let drained = phone.battery().drained_joules();
            let simulated = capacity / drained * 24.0;
            let delta = (simulated - closed) / closed * 100.0;
            println!(
                "{:>14} {:>8} {:>12.1} {:>12.1} {:>7.2}%",
                interface.label(),
                period.to_string(),
                closed,
                simulated,
                delta
            );
        }
    }
    println!(
        "\nDeltas stay within ±1% (the simulated loop quantises the last\n\
         partial period of the day)."
    );
}
