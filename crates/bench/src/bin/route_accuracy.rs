//! ROUTE-ACC: the two route-tracking modes of §2.2.2.
//!
//! *"PMWare has two modes of route tracking, low accuracy mode and high
//! accuracy mode. In low accuracy mode, only GSM-based information is used
//! to track the route information where as in high accuracy mode, WiFi is
//! used to detect place departure and subsequently GPS is used to track
//! the route."*
//!
//! The paper gives no figure for this; we quantify the trade-off the modes
//! embody: geometric fidelity of the recorded route against the true road
//! path, versus the energy each mode costs.

use pmware_algorithms::route::RouteGeometry;
use pmware_cloud::{CellDatabase, CloudInstance, SharedCloud};
use pmware_core::intents::IntentFilter;
use pmware_core::pms::{PmsConfig, PmwareMobileService};
use pmware_core::requirements::{AppRequirement, Granularity, RouteAccuracy};
use pmware_device::{Device, EnergyModel};
use pmware_geo::Meters;
use pmware_mobility::{Itinerary, Population, Segment};
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::radio::{RadioConfig, RadioEnvironment};
use pmware_world::{SimTime, World};

fn main() {
    let days = 7;
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(3001)
        .build();
    let pop = Population::generate(&world, 1, 3002);
    let it = pop.itinerary(&world, pop.agents()[0].id(), days);

    println!("ROUTE-ACC: route tracking modes, one participant x {days} days\n");
    println!(
        "{:<14} {:>7} {:>16} {:>18} {:>12}",
        "mode", "routes", "gps geometries", "mean path error", "energy (kJ)"
    );
    println!("{}", "-".repeat(72));
    for (label, accuracy) in [
        ("low (gsm)", RouteAccuracy::Low),
        ("high (gps)", RouteAccuracy::High),
    ] {
        let (routes, gps_count, mean_error, energy) = run_mode(&world, &it, accuracy, days);
        println!(
            "{label:<14} {routes:>7} {gps_count:>16} {:>18} {:>12.1}",
            mean_error
                .map(|e| format!("{e:.0} m"))
                .unwrap_or_else(|| "n/a (cells)".to_owned()),
            energy / 1_000.0
        );
    }
    println!(
        "\nHigh-accuracy mode records GPS polylines that hug the true road\n\
         path at the cost of GPS fixes while moving; low-accuracy mode\n\
         records cell sequences that are nearly free but only identify\n\
         *which* route was taken, not its geometry."
    );
}

fn run_mode(
    world: &World,
    it: &Itinerary,
    accuracy: RouteAccuracy,
    days: u64,
) -> (usize, usize, Option<f64>, f64) {
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(world), 3003));
    let env = RadioEnvironment::new(world, RadioConfig::default());
    let device = Device::new(env, it, EnergyModel::htc_explorer(), 3004);
    let mut pms = PmwareMobileService::new(
        device,
        cloud,
        PmsConfig::for_participant(30),
        SimTime::EPOCH,
    )
    .expect("register");
    let _rx = pms.register_app(
        "navigator",
        AppRequirement::places(Granularity::Area).with_routes(accuracy),
        IntentFilter::all(),
    );
    pms.run(SimTime::from_day_time(days, 0, 0, 0)).expect("run");

    // Geometric fidelity: for each recorded GPS route, mean distance of
    // its vertices to the closest true travel path of the itinerary.
    let true_paths: Vec<_> = it
        .segments()
        .iter()
        .filter_map(|s| match s {
            Segment::Travel { path, .. } => Some(path.clone()),
            _ => None,
        })
        .collect();
    let mut errors = Vec::new();
    let mut gps_count = 0usize;
    for route in pms.routes().routes() {
        if let RouteGeometry::GpsTrace(line) = &route.geometry {
            gps_count += 1;
            let mean: f64 = line
                .points()
                .iter()
                .map(|p| {
                    true_paths
                        .iter()
                        .map(|tp| tp.distance_to(*p).value())
                        .fold(f64::MAX, f64::min)
                })
                .sum::<f64>()
                / line.points().len() as f64;
            errors.push(mean);
        }
    }
    let mean_error = if errors.is_empty() {
        None
    } else {
        Some(errors.iter().sum::<f64>() / errors.len() as f64)
    };
    let _ = Meters::ZERO;
    let n_routes = pms.routes().routes().len();
    let report = pms.finish(SimTime::from_day_time(days, 0, 0, 0));
    (n_routes, gps_count, mean_error, report.energy_joules)
}
