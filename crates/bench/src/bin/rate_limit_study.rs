//! ADMISSION: wire cost of retry-after-guided backoff vs blind
//! exponential backoff under per-user admission control.
//!
//! A small cohort runs the same deployment-study days three times against
//! one shared cloud:
//!
//! * **baseline** — admission control off;
//! * **guided** — a tight per-user token bucket, clients honoring the 429
//!   `retry_after_s` hint (retry exactly at the server's refill instant);
//! * **blind** — the same budget, hints ignored, classic capped
//!   exponential backoff probing the closed bucket.
//!
//! All three scenarios are fully deterministic (seeded admission phase,
//! sim-time retry schedules), so the wire-request delta is attributable
//! to the backoff policy alone. Both throttled scenarios must end with
//! cloud-side durable state identical to the baseline — admission defers
//! work, it never loses it — and the guided run must be measurably
//! cheaper on the wire.
//!
//! Usage: `rate_limit_study [--participants N] [--days D] [--seed S]
//! [--burst B] [--refill-s R]`. Writes `BENCH_admission.json` in the
//! current directory; exits nonzero if a throttled run diverges from the
//! baseline or guided backoff fails to beat blind backoff.

use pmware_bench::args::flag;
use pmware_cloud::{AdmissionConfig, CellDatabase, CloudInstance, RateBudget, SharedCloud, UserId};
use pmware_core::intents::IntentFilter;
use pmware_core::pms::PeerProvider;
use pmware_core::{AppRequirement, Granularity, PmsConfig, PmwareMobileService};
use pmware_device::{Device, EnergyModel};
use pmware_geo::GeoPoint;
use pmware_mobility::{Itinerary, Population};
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::radio::{RadioConfig, RadioEnvironment};
use pmware_world::{SimDuration, SimTime, World};

/// A companion present during the day so social sync has traffic to
/// throttle.
struct ShadowPeer {
    itinerary: Itinerary,
}

impl PeerProvider for ShadowPeer {
    fn peers_at(&self, t: SimTime) -> Vec<(String, GeoPoint)> {
        if (10..16).contains(&t.hour_of_day()) {
            vec![("shadow-peer".to_owned(), self.itinerary.position_at(t))]
        } else {
            Vec::new()
        }
    }
}

/// Cloud-side durable state for one user, canonically serialized.
fn cloud_snapshot(cloud: &SharedCloud, user: UserId) -> String {
    serde_json::to_string(&(
        cloud.places_of(user),
        cloud.profiles_of(user),
        cloud.observation_count(user),
        cloud.contacts_of(user),
    ))
    .expect("snapshot serializes")
}

struct ScenarioResult {
    label: &'static str,
    wire_requests: u64,
    retries: u64,
    rate_limited: u64,
    denials: u64,
    snapshots: Vec<String>,
}

fn run_scenario(
    label: &'static str,
    world: &World,
    itineraries: &[Itinerary],
    days: u64,
    seed: u64,
    admission: Option<AdmissionConfig>,
    honor_retry_after: bool,
) -> ScenarioResult {
    let cloud = SharedCloud::new(CloudInstance::new(
        CellDatabase::from_world(world),
        seed + 1,
    ));
    cloud.set_admission(admission);
    let end = SimTime::from_day_time(days, 0, 0, 0);

    let mut wire_requests = 0;
    let mut retries = 0;
    let mut rate_limited = 0;
    let mut snapshots = Vec::new();
    for (i, itinerary) in itineraries.iter().enumerate() {
        let env = RadioEnvironment::new(world, RadioConfig::default());
        let device = Device::new(
            env,
            itinerary,
            EnergyModel::htc_explorer(),
            seed + 10 + i as u64,
        );
        let mut pms = PmwareMobileService::new(
            device,
            cloud.clone(),
            PmsConfig::for_participant(i as u32),
            SimTime::EPOCH,
        )
        .expect("registration is exempt from admission control");
        pms.cloud_client_mut()
            .set_honor_retry_after(honor_retry_after);
        let user = pms.cloud_client_mut().user();
        let _rx = pms.register_app(
            "rate-limit-study",
            AppRequirement::places(Granularity::Building).with_social(),
            IntentFilter::all(),
        );
        pms.set_peer_provider(Box::new(ShadowPeer {
            itinerary: itinerary.clone(),
        }));
        pms.run(end).expect("run");
        wire_requests += pms.cloud_client_mut().wire_requests();
        retries += pms.cloud_client_mut().retries();
        rate_limited += pms.cloud_client_mut().rate_limited();
        drop(pms.finish(end));
        snapshots.push(cloud_snapshot(&cloud, user));
    }
    ScenarioResult {
        label,
        wire_requests,
        retries,
        rate_limited,
        denials: cloud.admission_denials(),
        snapshots,
    }
}

fn main() {
    let participants: usize = flag("participants", 4);
    let days: u64 = flag("days", 3).max(2);
    let seed: u64 = flag("seed", 2014);
    let burst: u32 = flag("burst", 2);
    let refill_s: u64 = flag("refill-s", 30);

    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(seed)
        .build();
    let population = Population::generate(&world, participants, seed + 5);
    let itineraries: Vec<Itinerary> = population
        .agents()
        .iter()
        .map(|a| population.itinerary(&world, a.id(), days))
        .collect();

    println!(
        "ADMISSION: rate-limit study — {participants} participants x {days} day(s), \
         seed {seed}, budget {burst} burst / {refill_s}s refill\n"
    );

    let budget = || {
        AdmissionConfig::uniform(
            seed + 7,
            RateBudget::new(burst, SimDuration::from_seconds(refill_s)),
        )
    };
    let baseline = run_scenario("baseline", &world, &itineraries, days, seed, None, true);
    let guided = run_scenario(
        "guided",
        &world,
        &itineraries,
        days,
        seed,
        Some(budget()),
        true,
    );
    let blind = run_scenario(
        "blind",
        &world,
        &itineraries,
        days,
        seed,
        Some(budget()),
        false,
    );

    println!(
        "{:>9} {:>9} {:>8} {:>7} {:>8} {:>10}",
        "scenario", "wire req", "retries", "429s", "denials", "converged"
    );
    let converged = |r: &ScenarioResult| r.snapshots == baseline.snapshots;
    for r in [&baseline, &guided, &blind] {
        println!(
            "{:>9} {:>9} {:>8} {:>7} {:>8} {:>10}",
            r.label,
            r.wire_requests,
            r.retries,
            r.rate_limited,
            r.denials,
            converged(r),
        );
    }
    let saved = blind.wire_requests as f64 / guided.wire_requests as f64;
    println!(
        "\nguided backoff spends {:.1}% of blind's wire requests \
         (blind/guided = {saved:.3})",
        100.0 * guided.wire_requests as f64 / blind.wire_requests as f64
    );

    let mut out = String::from("{\n  \"bench\": \"rate_limit_study\",\n");
    out.push_str(&format!(
        "  \"participants\": {participants},\n  \"days\": {days},\n  \"seed\": {seed},\n"
    ));
    out.push_str(&format!(
        "  \"budget\": {{\"burst\": {burst}, \"refill_s\": {refill_s}}},\n  \"scenarios\": [\n"
    ));
    let rows = [&baseline, &guided, &blind];
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"wire_requests\": {}, \"retries\": {}, \
             \"rate_limited_responses\": {}, \"admission_denials\": {}, \
             \"wire_overhead_vs_baseline\": {:.4}, \"converged_to_baseline\": {}}}{}\n",
            r.label,
            r.wire_requests,
            r.retries,
            r.rate_limited,
            r.denials,
            r.wire_requests as f64 / baseline.wire_requests as f64,
            converged(r),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"blind_over_guided_wire_ratio\": {saved:.4}\n}}\n"
    ));
    let path = "BENCH_admission.json";
    std::fs::write(path, &out).expect("write BENCH_admission.json");
    println!("wrote {path}");

    assert!(
        guided.denials > 0,
        "the tight budget must actually shed requests"
    );
    assert!(
        converged(&guided),
        "guided run diverged from the fault-free baseline"
    );
    assert!(
        converged(&blind),
        "blind run diverged from the fault-free baseline"
    );
    assert!(
        guided.wire_requests < blind.wire_requests,
        "guided backoff must be cheaper on the wire: guided {} vs blind {}",
        guided.wire_requests,
        blind.wire_requests
    );
}
