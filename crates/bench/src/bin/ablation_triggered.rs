//! ABL-TRIG: triggered sensing vs alternative sensing strategies
//! (§2.2.2: "it strikes right energy-accuracy tradeoff by providing them
//! adequate level of accuracy with minimum possible energy").

use pmware_bench::sensing_modes::run_triggered_ablation;

fn main() {
    let days = 7;
    println!("ABL-TRIG: sensing-strategy ablation over one participant x {days} days\n");
    let results = run_triggered_ablation(days, 2014);
    println!(
        "{:<18} {:>12} {:>15} {:>11} {:>9}",
        "strategy", "energy (kJ)", "battery (h)", "discovered", "correct"
    );
    println!("{}", "-".repeat(70));
    for r in &results {
        println!(
            "{:<18} {:>12.1} {:>15.1} {:>11} {:>8.0}%",
            r.strategy.label(),
            r.energy_joules / 1_000.0,
            r.battery_hours,
            r.discovered,
            r.correct_fraction * 100.0
        );
    }
    println!(
        "\nPMWare's triggered mode should sit near gsm-only energy while\n\
         keeping the discovery quality of the continuous strategies."
    );
}
