//! FIG1: regenerates Figure 1 — "Power consumption analysis of different
//! location interfaces, performed on a HTC A310E Explorer Phone with
//! 1230 mAh battery".
//!
//! Prints battery duration (hours) per interface across sampling periods,
//! plus the headline GSM-vs-GPS ratio at a one-minute period ("battery
//! duration is almost 11x if GSM location is sensed at every minute
//! compared to GPS coordinates").

use pmware_device::energy::{figure1_dataset, EnergyModel, Interface};
use pmware_world::SimDuration;

fn main() {
    let model = EnergyModel::htc_explorer();
    let periods = [
        SimDuration::from_seconds(10),
        SimDuration::from_seconds(30),
        SimDuration::from_minutes(1),
        SimDuration::from_minutes(2),
        SimDuration::from_minutes(5),
        SimDuration::from_minutes(10),
    ];

    println!("FIG1: battery duration (hours) under continuous sensing");
    println!(
        "battery: 1230 mAh @ 3.7 V = {:.0} J\n",
        model.battery().energy_joules()
    );

    print!("{:>10}", "period");
    for i in Interface::ALL {
        print!("{:>15}", i.label());
    }
    println!();
    let rows = figure1_dataset(&model, &periods);
    for row in &rows {
        print!("{:>10}", row.period.to_string());
        for (_, hours) in &row.hours {
            print!("{hours:>15.1}");
        }
        println!();
    }

    let minute = SimDuration::from_minutes(1);
    let gps = model.battery_duration_hours(Interface::Gps, minute);
    let gsm = model.battery_duration_hours(Interface::Gsm, minute);
    println!(
        "\nGSM@1min / GPS@1min battery ratio: {:.1}x (paper: ~11x)",
        gsm / gps
    );

    println!("\naverage power draw at 1-minute sampling (mW):");
    for i in Interface::ALL {
        println!(
            "  {:>14}: {:7.1}",
            i.label(),
            model.average_power_w(i, minute) * 1_000.0
        );
    }
}
