//! PERF: cohort engine throughput — participants·days per second of the
//! deployment study at increasing worker-thread counts.
//!
//! This is the headline number for the parallel cohort engine: the same
//! bit-identical study (see `tests/parallel_determinism.rs`) executed at
//! 1 thread, 4 threads, and one thread per core, with wall-clock measured
//! around `run_study` only (world/cloud construction is inside the study
//! and charged to every configuration equally).
//!
//! Usage: `cohort_throughput [--participants N] [--days D] [--repeats R]`
//! — each configuration runs R times and the fastest wall-clock is kept
//! (minimum, not mean: we are measuring the engine, not the scheduler's
//! mood). Results are printed as a table and written to
//! `BENCH_cohort.json` in the current directory.

use std::time::Instant;

use pmware_bench::args::flag;
use pmware_bench::deployment::{run_study, StudyConfig};
use pmware_bench::parallel::resolve_threads;
use pmware_world::builder::RegionProfile;

struct Run {
    threads: usize,
    seconds: f64,
    throughput: f64,
}

fn main() {
    let participants: usize = flag("participants", 8);
    let days: u64 = flag("days", 7);
    let repeats: usize = flag("repeats", 2).max(1);

    let config = |threads| StudyConfig {
        participants,
        days,
        seed: 2014,
        region: RegionProfile::urban_india(),
        threads,
        obs: pmware_obs::Obs::disabled(),
    };

    // Ladder entries are clamped to the available cores: an oversubscribed
    // point (4 workers on a 1-core box) measures scheduler churn, not the
    // engine, and its sub-1.0 "speedup" reads as a parallelism regression.
    let max_threads = resolve_threads(0);
    let mut ladder: Vec<usize> = [1usize, 4, max_threads]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();
    ladder.sort_unstable();
    ladder.dedup();

    println!(
        "PERF: cohort throughput — {participants} participants x {days} days, \
         best of {repeats} run(s), {max_threads} core(s) available\n"
    );

    // Warm-up: fault in the binary, allocator arenas, and page cache once
    // so the first timed configuration isn't penalised.
    let reference = run_study(&config(1));

    let work = (participants as u64 * days) as f64;
    let mut runs: Vec<Run> = Vec::new();
    for &threads in &ladder {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let started = Instant::now();
            let results = run_study(&config(threads));
            let elapsed = started.elapsed().as_secs_f64();
            assert_eq!(
                results, reference,
                "study at {threads} thread(s) diverged from sequential"
            );
            best = best.min(elapsed);
        }
        runs.push(Run {
            threads,
            seconds: best,
            throughput: work / best,
        });
    }

    println!(
        "{:>8} {:>10} {:>22} {:>9}",
        "threads", "wall (s)", "participant-days/sec", "speedup"
    );
    let baseline = runs[0].seconds;
    for r in &runs {
        println!(
            "{:>8} {:>10.2} {:>22.2} {:>8.2}x",
            r.threads,
            r.seconds,
            r.throughput,
            baseline / r.seconds
        );
    }

    let json = render_json(participants, days, repeats, max_threads, &runs, baseline);
    let path = "BENCH_cohort.json";
    std::fs::write(path, json).expect("write BENCH_cohort.json");
    println!("\nwrote {path}");
}

fn render_json(
    participants: usize,
    days: u64,
    repeats: usize,
    cores: usize,
    runs: &[Run],
    baseline: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"cohort_throughput\",\n");
    out.push_str(&format!("  \"participants\": {participants},\n"));
    out.push_str(&format!("  \"days\": {days},\n"));
    out.push_str(&format!("  \"repeats\": {repeats},\n"));
    out.push_str(&format!("  \"cores_available\": {cores},\n"));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"wall_seconds\": {:.4}, \
             \"participant_days_per_second\": {:.4}, \"speedup_vs_1_thread\": {:.4}}}{}\n",
            r.threads,
            r.seconds,
            r.throughput,
            baseline / r.seconds,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
