//! PERF: cohort engine throughput — participants·days per second of the
//! deployment study at increasing worker-thread counts.
//!
//! This is the headline number for the parallel cohort engine: the same
//! bit-identical study (see `tests/parallel_determinism.rs`) executed at
//! each rung of a thread ladder from 1 up to one thread per core, with
//! wall-clock measured around `run_study` only (world/cloud construction
//! is inside the study and charged to every configuration equally).
//!
//! Usage: `cohort_throughput [--participants N] [--days D] [--repeats R]`
//! — after an untimed warm-up pass (binary faulted in, allocator arenas
//! grown, page cache hot), each configuration runs R times and the
//! **median** wall-clock is reported. The median is robust against a
//! one-off scheduler hiccup in either direction, where the minimum
//! systematically flatters a noisy machine and the mean is hostage to a
//! single outlier. Results are printed as a table and written to
//! `BENCH_cohort.json` in the current directory.

use std::time::Instant;

use pmware_bench::args::flag;
use pmware_bench::deployment::{run_study, StudyConfig};
use pmware_bench::parallel::resolve_threads;
use pmware_world::builder::RegionProfile;

struct Run {
    threads: usize,
    seconds: f64,
    throughput: f64,
}

/// Median of a sample set (mean of the middle pair for even sizes).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("wall-clock is finite"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Thread ladder: powers of two from 1 up to (and always including) one
/// thread per core. An oversubscribed rung (more workers than cores)
/// measures scheduler churn, not the engine, so the ladder is clamped.
fn thread_ladder(max_threads: usize) -> Vec<usize> {
    let mut ladder = Vec::new();
    let mut t = 1;
    while t < max_threads {
        ladder.push(t);
        t *= 2;
    }
    ladder.push(max_threads);
    ladder
}

fn main() {
    let participants: usize = flag("participants", 8);
    let days: u64 = flag("days", 7);
    let repeats: usize = flag("repeats", 3).max(1);

    let config = |threads| StudyConfig {
        participants,
        days,
        seed: 2014,
        region: RegionProfile::urban_india(),
        threads,
        obs: pmware_obs::Obs::disabled(),
        offload_batch_days: 0,
        storage: None,
    };

    let max_threads = resolve_threads(0);
    let ladder = thread_ladder(max_threads);

    println!(
        "PERF: cohort throughput — {participants} participants x {days} days, \
         median of {repeats} run(s), {max_threads} core(s) available\n"
    );

    // Warm-up: fault in the binary, allocator arenas, and page cache once
    // so the first timed configuration isn't penalised. The warm-up run
    // doubles as the determinism reference every timed run must match.
    let reference = run_study(&config(1));

    let work = (participants as u64 * days) as f64;
    let mut runs: Vec<Run> = Vec::new();
    for &threads in &ladder {
        let mut samples = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let started = Instant::now();
            let results = run_study(&config(threads));
            let elapsed = started.elapsed().as_secs_f64();
            assert_eq!(
                results, reference,
                "study at {threads} thread(s) diverged from sequential"
            );
            samples.push(elapsed);
        }
        let seconds = median(&mut samples);
        runs.push(Run {
            threads,
            seconds,
            throughput: work / seconds,
        });
    }

    println!(
        "{:>8} {:>10} {:>22} {:>9}",
        "threads", "wall (s)", "participant-days/sec", "speedup"
    );
    let baseline = runs[0].seconds;
    for r in &runs {
        println!(
            "{:>8} {:>10.2} {:>22.2} {:>8.2}x",
            r.threads,
            r.seconds,
            r.throughput,
            baseline / r.seconds
        );
    }

    let json = render_json(participants, days, repeats, max_threads, &runs, baseline);
    let path = "BENCH_cohort.json";
    std::fs::write(path, json).expect("write BENCH_cohort.json");
    println!("\nwrote {path}");
}

fn render_json(
    participants: usize,
    days: u64,
    repeats: usize,
    cores: usize,
    runs: &[Run],
    baseline: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"cohort_throughput\",\n");
    out.push_str(&format!("  \"participants\": {participants},\n"));
    out.push_str(&format!("  \"days\": {days},\n"));
    out.push_str(&format!("  \"repeats\": {repeats},\n"));
    out.push_str("  \"statistic\": \"median\",\n");
    out.push_str(&format!("  \"cores_available\": {cores},\n"));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"wall_seconds\": {:.4}, \
             \"participant_days_per_second\": {:.4}, \"speedup_vs_1_thread\": {:.4}}}{}\n",
            r.threads,
            r.seconds,
            r.throughput,
            baseline / r.seconds,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
