//! INTRO-WIFI: fraction of a day spent under WiFi coverage by region
//! (§1 item 4: ~60 % in urban India vs >90 % in Switzerland).

use pmware_bench::wifi_coverage::run;

fn main() {
    println!("INTRO-WIFI: WiFi-covered fraction of a day by region profile");
    println!("(10 agents x 7 days per region, positions sampled every 2 min)\n");
    let results = run(10, 7, 42);
    for r in &results {
        let paper = match r.region.as_str() {
            "urban-india" => "~60%",
            "urban-europe" => ">90%",
            _ => "-",
        };
        println!(
            "  {:<14} {:>5.1}%  (paper: {})",
            r.region,
            r.covered_fraction * 100.0,
            paper
        );
    }
}
