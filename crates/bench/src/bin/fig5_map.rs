//! FIG5: Figure 5(b) — "Map-based visualization of all the places visited
//! by the participants during user study".
//!
//! Runs a reduced deployment cohort and renders an SVG map of the
//! simulated city: ground-truth places (by category), cell towers, and
//! the positions PMWare estimated for every discovered place, one colour
//! per participant. Written to `fig5_places_map.svg` in the working
//! directory.

use std::fmt::Write as _;

use pmware_bench::args::flag;
use pmware_bench::parallel::{parallel_map, resolve_threads};
use pmware_cloud::{CellDatabase, CloudInstance, SharedCloud};
use pmware_core::intents::IntentFilter;
use pmware_core::pms::{PmsConfig, PmwareMobileService};
use pmware_core::requirements::{AppRequirement, Granularity};
use pmware_device::{Device, EnergyModel};
use pmware_geo::GeoPoint;
use pmware_mobility::Population;
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::radio::{RadioConfig, RadioEnvironment};
use pmware_world::{PlaceCategory, SimTime, World};

const SIZE: f64 = 900.0;

struct Svg {
    body: String,
    world_sw: GeoPoint,
    lat_span: f64,
    lng_span: f64,
}

impl Svg {
    fn new(world: &World) -> Svg {
        let sw = world.bounds().south_west();
        let ne = world.bounds().north_east();
        Svg {
            body: String::new(),
            world_sw: sw,
            lat_span: ne.latitude() - sw.latitude(),
            lng_span: ne.longitude() - sw.longitude(),
        }
    }

    fn xy(&self, p: GeoPoint) -> (f64, f64) {
        let x = (p.longitude() - self.world_sw.longitude()) / self.lng_span * SIZE;
        let y = SIZE - (p.latitude() - self.world_sw.latitude()) / self.lat_span * SIZE;
        (x, y)
    }

    fn circle(&mut self, p: GeoPoint, r: f64, fill: &str, opacity: f64, title: &str) {
        let (x, y) = self.xy(p);
        writeln!(
            self.body,
            r#"<circle cx="{x:.1}" cy="{y:.1}" r="{r}" fill="{fill}" opacity="{opacity}"><title>{title}</title></circle>"#
        )
        .expect("write to string");
    }

    fn cross(&mut self, p: GeoPoint, size: f64, stroke: &str, title: &str) {
        let (x, y) = self.xy(p);
        writeln!(
            self.body,
            r#"<g stroke="{stroke}" stroke-width="1.5"><line x1="{x0:.1}" y1="{y:.1}" x2="{x1:.1}" y2="{y:.1}"/><line x1="{x:.1}" y1="{y0:.1}" x2="{x:.1}" y2="{y1:.1}"/><title>{title}</title></g>"#,
            x0 = x - size,
            x1 = x + size,
            y0 = y - size,
            y1 = y + size,
        )
        .expect("write to string");
    }

    fn finish(self, legend: &str) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{s}\" height=\"{h}\" viewBox=\"0 0 {s} {h}\">\n\
             <rect width=\"{s}\" height=\"{h}\" fill=\"#fcfcf8\"/>\n{body}\n{legend}</svg>\n",
            s = SIZE,
            h = SIZE + 70.0,
            body = self.body,
        )
    }
}

fn category_color(c: PlaceCategory) -> &'static str {
    match c {
        PlaceCategory::Home => "#9ecae1",
        PlaceCategory::Workplace => "#fdae6b",
        PlaceCategory::Shopping | PlaceCategory::Restaurant => "#a1d99b",
        _ => "#d9d9d9",
    }
}

const PARTICIPANT_COLORS: [&str; 6] = [
    "#e41a1c", "#377eb8", "#4daf4a", "#984ea3", "#ff7f00", "#a65628",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let participants: usize = flag("participants", 6);
    let days: u64 = flag("days", 14);
    let threads = resolve_threads(flag("threads", 1));
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(2014)
        .build();
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 2015));
    let population = Population::generate(&world, participants, 2016);

    let mut svg = Svg::new(&world);

    // Layer 1: cell towers as faint crosses.
    for tower in world.towers() {
        svg.cross(
            tower.position(),
            3.0,
            "#cccccc",
            &format!("{}", tower.cell()),
        );
    }
    // Layer 2: ground-truth places, category-coloured.
    for place in world.places() {
        svg.circle(
            place.position(),
            4.0,
            category_color(place.category()),
            0.9,
            place.name(),
        );
    }

    // Layer 3: each participant's discovered-place estimates. Participants
    // run on the worker pool; drawing happens afterwards in participant
    // order, so the SVG is identical at any thread count.
    let jobs: Vec<(usize, pmware_mobility::AgentProfile)> =
        population.agents().iter().cloned().enumerate().collect();
    let estimates = parallel_map(jobs, threads, |(i, agent)| {
        let itinerary = population.itinerary(&world, agent.id(), days);
        let env = RadioEnvironment::new(&world, RadioConfig::default());
        let device = Device::new(
            env,
            &itinerary,
            EnergyModel::htc_explorer(),
            2100 + i as u64,
        );
        let mut pms = PmwareMobileService::new(
            device,
            cloud.clone(),
            PmsConfig::for_participant(i as u32),
            SimTime::EPOCH,
        )
        .expect("registration succeeds");
        let _rx = pms.register_app(
            "mapper",
            AppRequirement::places(Granularity::Building),
            IntentFilter::all(),
        );
        pms.run(SimTime::from_day_time(days, 0, 0, 0))
            .expect("run succeeds");
        pms.places()
            .iter()
            .filter_map(|place| {
                place
                    .position
                    .map(|position| (position, format!("{}", place.id), place.visit_count))
            })
            .collect::<Vec<_>>()
    });
    let mut total = 0usize;
    for (i, places) in estimates.iter().enumerate() {
        let color = PARTICIPANT_COLORS[i % PARTICIPANT_COLORS.len()];
        for (position, id, visit_count) in places {
            total += 1;
            svg.circle(
                *position,
                6.0,
                color,
                0.55,
                &format!("participant {i}: {id} ({visit_count} visits)"),
            );
        }
    }

    let legend = format!(
        r#"<g font-family="sans-serif" font-size="13" transform="translate(10,{y})">
<text y="0" font-weight="bold">Figure 5b analogue: places discovered by {participants} participants over {days} days ({total} estimates)</text>
<text y="20">faint crosses: cell towers · small dots: ground-truth places (blue=home, orange=work, green=commerce)</text>
<text y="40">large translucent dots: PMWare place estimates, one colour per participant</text>
</g>"#,
        y = SIZE + 15.0,
    );
    let path = "fig5_places_map.svg";
    std::fs::write(path, svg.finish(&legend))?;
    println!(
        "FIG5: wrote {path} — {total} discovered-place estimates from {participants} participants over {days} days"
    );
    Ok(())
}
