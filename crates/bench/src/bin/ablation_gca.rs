//! ABL-GCA: sensitivity of GCA to its design parameters.
//!
//! DESIGN.md calls out two load-bearing choices in the GCA implementation:
//! the *bounce weight threshold* that separates oscillation from travel in
//! the movement graph, and the *minimum stay* that qualifies a cluster as
//! a place (prior work uses 10 minutes — \[19\] in the paper). This
//! ablation sweeps both over a fixed simulated fortnight and reports
//! discovery quality, showing where the defaults sit.

use pmware_algorithms::gca::{self, GcaConfig};
use pmware_algorithms::matching::{classify_places, GroundTruthVisit};
use pmware_device::{Device, EnergyModel};
use pmware_mobility::Population;
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::radio::{RadioConfig, RadioEnvironment};
use pmware_world::{GsmObservation, SimDuration, SimTime};

fn main() {
    let days = 14;
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(2014)
        .build();
    let pop = Population::generate(&world, 1, 2015);
    let agent = &pop.agents()[0];
    let it = pop.itinerary(&world, agent.id(), days);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let mut phone = Device::new(env, &it, EnergyModel::htc_explorer(), 2016);

    let mut stream: Vec<GsmObservation> = Vec::new();
    for minute in 0..days * 24 * 60 {
        if let Some(obs) = phone.sample_gsm(SimTime::from_seconds(minute * 60)) {
            stream.push(obs);
        }
    }
    let truth: Vec<GroundTruthVisit> = it
        .visits()
        .iter()
        .map(|v| GroundTruthVisit {
            place: v.place,
            arrival: v.arrival,
            departure: v.departure,
        })
        .collect();
    let true_places = it.visited_places().len();

    println!(
        "ABL-GCA: GCA parameter sweep, one participant x {days} days \
         ({} observations, {true_places} true places)\n",
        stream.len()
    );

    println!("— bounce-weight threshold (min_stay = 10 min) —");
    println!(
        "{:>10} {:>11} {:>9} {:>8} {:>8} {:>9}",
        "threshold", "discovered", "correct", "merged", "divided", "no-match"
    );
    for threshold in [1u32, 2, 3, 5, 8] {
        let config = GcaConfig {
            min_bounce_weight: threshold,
            ..GcaConfig::default()
        };
        report_row(&format!("{threshold}"), &stream, &truth, &config);
    }

    println!("\n— minimum stay (threshold = 2) —");
    println!(
        "{:>10} {:>11} {:>9} {:>8} {:>8} {:>9}",
        "min stay", "discovered", "correct", "merged", "divided", "no-match"
    );
    for minutes in [5u64, 10, 20, 30, 60] {
        let config = GcaConfig {
            min_stay: SimDuration::from_minutes(minutes),
            ..GcaConfig::default()
        };
        report_row(&format!("{minutes} min"), &stream, &truth, &config);
    }

    println!(
        "\nThe defaults (threshold 2, 10 min) sit at the knee: lower\n\
         thresholds admit travel cells, higher ones miss short stays."
    );
}

fn report_row(
    label: &str,
    stream: &[GsmObservation],
    truth: &[GroundTruthVisit],
    config: &GcaConfig,
) {
    let out = gca::discover_places(stream, config);
    let report = classify_places(&out.places, truth, 0.2);
    println!(
        "{label:>10} {:>11} {:>8.0}% {:>7.0}% {:>7.0}% {:>9}",
        out.places.len(),
        report.correct_fraction() * 100.0,
        report.merged_fraction() * 100.0,
        report.divided_fraction() * 100.0,
        report.no_match,
    );
}
