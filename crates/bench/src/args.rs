//! Tiny `--flag value` parser shared by the bench binaries.
//!
//! The binaries take a handful of numeric flags (`--threads`,
//! `--participants`, `--days`, `--seeds`); this keeps the parsing in one
//! place without pulling in an argument-parsing crate.

/// Returns the value following `--<name>`, parsed, or `default` when the
/// flag is absent.
///
/// # Panics
///
/// Exits the process with a message when the flag is present but its value
/// is missing or unparsable — a bad benchmark invocation should fail
/// loudly, not run with a silently substituted default.
pub fn flag<T: std::str::FromStr>(name: &str, default: T) -> T {
    let flag = format!("--{name}");
    let mut args = std::env::args().skip_while(|a| a != &flag);
    if args.next().is_none() {
        return default;
    }
    match args.next().map(|v| v.parse()) {
        Some(Ok(value)) => value,
        _ => {
            eprintln!(
                "error: {flag} requires a {} value",
                std::any::type_name::<T>()
            );
            std::process::exit(2);
        }
    }
}

/// Returns the value following `--<name>` verbatim, or `None` when the
/// flag is absent. For flags with no sensible default, like output paths.
pub fn opt_flag(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let mut args = std::env::args().skip_while(|a| a != &flag);
    args.next()?;
    match args.next() {
        Some(value) => Some(value),
        None => {
            eprintln!("error: {flag} requires a value");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_flag_yields_default() {
        assert_eq!(flag("definitely-not-passed", 7u64), 7);
        assert_eq!(flag("also-not-passed", 1.5f64), 1.5);
    }

    #[test]
    fn absent_opt_flag_is_none() {
        assert_eq!(opt_flag("definitely-not-passed"), None);
    }
}
