//! Experiment harnesses for the PMWare reproduction.
//!
//! Each module regenerates one of the paper's quantitative artefacts (see
//! `DESIGN.md` §4 for the experiment index); the binaries under `src/bin`
//! print the tables, and the criterion benches under `benches/` measure
//! micro-performance.
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `fig1_power` | Figure 1 — battery duration per interface × period |
//! | `fig2_characterization` | Figure 2 — app taxonomy by granularity |
//! | `deployment_study` | §4 — 16 participants × 2 weeks, all statistics |
//! | `wifi_coverage` | §1 item 4 — WiFi-covered fraction of a day by region |
//! | `ablation_triggered` | §2.2.2 — triggered sensing vs alternatives |
//! | `ablation_redundancy` | §1 item 3 — shared PMS vs isolated pipelines |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod deployment;
pub mod federation;
pub mod parallel;
pub mod sensing_modes;
pub mod wifi_coverage;
