//! ABL-TRIG / ABL-RED: the triggered-sensing and redundancy ablations.
//!
//! * **ABL-TRIG** (§2.2.2 claim): PMWare's triggered sensing should cost
//!   far less energy than continuously sampling the accurate interfaces,
//!   while discovering (nearly) the same places. We run the same
//!   participant's trace under four sensing strategies and measure energy
//!   plus place-discovery quality.
//! * **ABL-RED** (§1 item 3 claim): N applications sharing one PMS sense
//!   once; N isolated applications each run their own pipeline. Total
//!   energy scales with N only in the isolated case.

use pmware_algorithms::matching::{classify_places, GroundTruthVisit};
use pmware_cloud::{CellDatabase, CloudInstance, SharedCloud};
use pmware_core::intents::IntentFilter;
use pmware_core::pms::{PmsConfig, PmwareMobileService};
use pmware_core::requirements::{AppRequirement, Granularity};
use pmware_core::sensing::SensingConfig;
use pmware_device::{Device, EnergyModel};
use pmware_mobility::{Itinerary, Population};
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::radio::{RadioConfig, RadioEnvironment};
use pmware_world::{SimDuration, SimTime, World};

/// A sensing strategy under ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// GSM every minute only — the cheapest possible plan.
    GsmOnly,
    /// PMWare's triggered sensing (room-level demand: WiFi on triggers).
    Triggered,
    /// WiFi scanned continuously every minute (SensLoc without triggers).
    ContinuousWifi,
    /// GPS fixed continuously every minute (the naive accurate plan).
    ContinuousGps,
}

impl Strategy {
    /// All strategies in presentation order.
    pub const ALL: [Strategy; 4] = [
        Strategy::GsmOnly,
        Strategy::Triggered,
        Strategy::ContinuousWifi,
        Strategy::ContinuousGps,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::GsmOnly => "gsm-only",
            Strategy::Triggered => "pmware-triggered",
            Strategy::ContinuousWifi => "continuous-wifi",
            Strategy::ContinuousGps => "continuous-gps",
        }
    }
}

/// Outcome of one strategy run.
#[derive(Debug, Clone)]
pub struct StrategyResult {
    /// Which strategy.
    pub strategy: Strategy,
    /// Total energy drained (joules).
    pub energy_joules: f64,
    /// Projected battery life in hours at this average drain.
    pub battery_hours: f64,
    /// Places discovered.
    pub discovered: usize,
    /// Correct fraction against ground truth (all places, share 0.2).
    pub correct_fraction: f64,
}

/// Runs the triggered-sensing ablation over one participant trace.
pub fn run_triggered_ablation(days: u64, seed: u64) -> Vec<StrategyResult> {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(seed)
        .build();
    let population = Population::generate(&world, 1, seed + 1);
    let agent = &population.agents()[0];
    let itinerary = population.itinerary(&world, agent.id(), days);

    Strategy::ALL
        .iter()
        .map(|&strategy| run_strategy(&world, &itinerary, strategy, days, seed))
        .collect()
}

fn run_strategy(
    world: &World,
    itinerary: &Itinerary,
    strategy: Strategy,
    days: u64,
    seed: u64,
) -> StrategyResult {
    let cloud = SharedCloud::new(CloudInstance::new(
        CellDatabase::from_world(world),
        seed + 2,
    ));
    let env = RadioEnvironment::new(world, RadioConfig::default());
    let device = Device::new(env, itinerary, EnergyModel::htc_explorer(), seed + 3);

    let mut config = PmsConfig::for_participant(90);
    let (granularity, sensing) = match strategy {
        Strategy::GsmOnly => (Granularity::Area, SensingConfig::default()),
        Strategy::Triggered => (Granularity::Room, SensingConfig::default()),
        Strategy::ContinuousWifi => (
            Granularity::Room,
            SensingConfig {
                wifi_stationary_period: SimDuration::from_minutes(1),
                wifi_moving_period: SimDuration::from_minutes(1),
                ..SensingConfig::default()
            },
        ),
        Strategy::ContinuousGps => (
            Granularity::Building,
            SensingConfig {
                gps_moving_period: SimDuration::from_minutes(1),
                gps_continuous: true,
                ..SensingConfig::default()
            },
        ),
    };
    config.sensing = sensing;

    let mut pms =
        PmwareMobileService::new(device, cloud, config, SimTime::EPOCH).expect("register");
    let _rx = pms.register_app(
        "workload",
        AppRequirement::places(granularity),
        IntentFilter::all(),
    );
    let end = SimTime::from_day_time(days, 0, 0, 0);
    pms.run(end).expect("run");

    // Quality: classify the discovered places (with their final GCA visit
    // histories) against diary ground truth.
    let truth: Vec<GroundTruthVisit> = itinerary
        .visits()
        .iter()
        .map(|v| GroundTruthVisit {
            place: v.place,
            arrival: v.arrival,
            departure: v.departure,
        })
        .collect();
    let report = pms.finish(end);
    let discovered: Vec<pmware_algorithms::signature::DiscoveredPlace> = report
        .places
        .iter()
        .map(|p| {
            pmware_algorithms::signature::DiscoveredPlace::new(
                pmware_algorithms::signature::DiscoveredPlaceId(p.id.0),
                pmware_algorithms::signature::PlaceSignature::Cells(p.cells.clone()),
                p.gca_visits.clone(),
            )
        })
        .collect();
    let matching = classify_places(&discovered, &truth, 0.2);
    let elapsed_h = days as f64 * 24.0;
    let capacity = EnergyModel::htc_explorer().battery().energy_joules();
    let battery_hours = capacity / (report.energy_joules / (elapsed_h * 3_600.0)) / 3_600.0;

    StrategyResult {
        strategy,
        energy_joules: report.energy_joules,
        battery_hours,
        discovered: report.places.len(),
        correct_fraction: matching.correct_fraction(),
    }
}

/// ABL-RED result for one configuration.
#[derive(Debug, Clone)]
pub struct RedundancyResult {
    /// Number of place-aware applications.
    pub apps: usize,
    /// Total sensing energy with one shared PMS (joules).
    pub shared_joules: f64,
    /// Total sensing energy with isolated per-app pipelines (joules).
    pub isolated_joules: f64,
}

/// Runs the redundancy ablation: `n_apps` place-aware apps over `days`
/// days, shared vs isolated.
pub fn run_redundancy_ablation(
    app_counts: &[usize],
    days: u64,
    seed: u64,
) -> Vec<RedundancyResult> {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(seed)
        .build();
    let population = Population::generate(&world, 1, seed + 1);
    let itinerary = population.itinerary(&world, population.agents()[0].id(), days);
    let end = SimTime::from_day_time(days, 0, 0, 0);

    let single_pipeline_energy = |salt: u64| -> f64 {
        let cloud = SharedCloud::new(CloudInstance::new(
            CellDatabase::from_world(&world),
            seed + salt,
        ));
        let env = RadioEnvironment::new(&world, RadioConfig::default());
        let device = Device::new(
            env,
            &itinerary,
            EnergyModel::htc_explorer(),
            seed + 10 + salt,
        );
        let mut pms = PmwareMobileService::new(
            device,
            cloud,
            PmsConfig::for_participant(91),
            SimTime::EPOCH,
        )
        .expect("register");
        let _rx = pms.register_app(
            "app",
            AppRequirement::places(Granularity::Room),
            IntentFilter::all(),
        );
        pms.run(end).expect("run");
        pms.finish(end).energy_joules
    };

    app_counts
        .iter()
        .map(|&n| {
            // Shared: one PMS, n apps registered — sensing happens once.
            let shared = {
                let cloud = SharedCloud::new(CloudInstance::new(
                    CellDatabase::from_world(&world),
                    seed + 40,
                ));
                let env = RadioEnvironment::new(&world, RadioConfig::default());
                let device = Device::new(env, &itinerary, EnergyModel::htc_explorer(), seed + 41);
                let mut pms = PmwareMobileService::new(
                    device,
                    cloud,
                    PmsConfig::for_participant(92),
                    SimTime::EPOCH,
                )
                .expect("register");
                let receivers: Vec<_> = (0..n)
                    .map(|i| {
                        pms.register_app(
                            format!("app-{i}"),
                            AppRequirement::places(Granularity::Room),
                            IntentFilter::all(),
                        )
                    })
                    .collect();
                pms.run(end).expect("run");
                let energy = pms.finish(end).energy_joules;
                drop(receivers);
                energy
            };
            // Isolated: n independent pipelines, each sensing on its own.
            let isolated: f64 = (0..n as u64).map(|i| single_pipeline_energy(50 + i)).sum();
            RedundancyResult {
                apps: n,
                shared_joules: shared,
                isolated_joules: isolated,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triggered_sensing_saves_energy_and_keeps_accuracy() {
        let results = run_triggered_ablation(3, 77);
        let by = |s: Strategy| {
            results
                .iter()
                .find(|r| r.strategy == s)
                .expect("strategy present")
        };
        let gsm = by(Strategy::GsmOnly);
        let triggered = by(Strategy::Triggered);
        let wifi = by(Strategy::ContinuousWifi);
        let gps = by(Strategy::ContinuousGps);

        // Energy ordering: gsm-only <= triggered < continuous-wifi and
        // continuous-gps.
        assert!(gsm.energy_joules <= triggered.energy_joules);
        assert!(
            triggered.energy_joules < wifi.energy_joules,
            "triggered {} vs continuous wifi {}",
            triggered.energy_joules,
            wifi.energy_joules
        );
        assert!(triggered.energy_joules < gps.energy_joules);
        // All strategies discover places; triggered keeps quality.
        assert!(triggered.discovered >= 2);
        assert!(
            triggered.correct_fraction >= 0.5,
            "{}",
            triggered.correct_fraction
        );
    }

    #[test]
    fn shared_pms_removes_redundant_sensing() {
        let results = run_redundancy_ablation(&[1, 3], 2, 88);
        assert_eq!(results.len(), 2);
        let one = &results[0];
        // With one app, shared and isolated are the same pipeline.
        let ratio = one.isolated_joules / one.shared_joules;
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
        let three = &results[1];
        // With three apps, the isolated total is roughly 3x the shared.
        let ratio = three.isolated_joules / three.shared_joules;
        assert!(ratio > 2.0, "expected ~3x redundancy, got {ratio:.2}x");
    }
}
