//! The federation study harness: N cloud instances behind a
//! [`TopologyRouter`], a cohort of PMS clients placed across them, and a
//! deterministic mid-study instance kill with WAL-driven migration.
//!
//! One harness serves two masters. The failover matrix
//! (`tests/federation_matrix.rs`) runs it across instance counts ×
//! balancing policies × kill instants × chaos rates and asserts every
//! arm's per-user final state is **bit-identical** to the
//! single-instance fault-free baseline — the federation layer is pure
//! topology, invisible in every durable byte. The `federation_soak`
//! binary runs one bigger arm and reports capacity numbers (requests per
//! instance, migration latency in sim-time, control-plane request count).
//!
//! Determinism: participants run in lockstep segments (everyone advances
//! to the next stop before any action fires), each participant's
//! device/PMS stack is seeded from the master seed, and all router
//! operations (placement, heartbeat, failover order) are pure functions
//! of state — no wall clock anywhere.

use pmware_algorithms::signature::DiscoveredPlace;
use pmware_cloud::topology::{BalancePolicy, InstanceId, TopologyRouter};
use pmware_cloud::{
    CellDatabase, CloudEndpoint, CloudInstance, ContactEntry, FaultPlan, FaultyCloud,
    MobilityProfile, SharedCloud,
};
use pmware_core::pms::{PeerProvider, PmsConfig, PmwareMobileService};
use pmware_core::registry::PmPlace;
use pmware_core::{AppRequirement, Granularity, IntentFilter};
use pmware_device::{Device, EnergyModel};
use pmware_geo::GeoPoint;
use pmware_mobility::{Itinerary, Population};
use pmware_obs::Obs;
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::radio::{RadioConfig, RadioEnvironment};
use pmware_world::SimTime;

/// Parameters of one federation run.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Cohort size.
    pub participants: usize,
    /// Study length in days.
    pub days: u64,
    /// Master seed (world, population, devices).
    pub seed: u64,
    /// Cloud instances behind the router.
    pub instances: usize,
    /// Placement policy for new users.
    pub policy: BalancePolicy,
    /// When set, the instance hosting participant 0 is killed at this
    /// instant and the router immediately runs failover.
    pub kill_at: Option<SimTime>,
    /// Per-instance transport fault rate (0 disables chaos entirely).
    pub chaos_rate: f64,
    /// Seed for the per-instance fault plans (instance `i` uses
    /// `chaos_seed + i`).
    pub chaos_seed: u64,
    /// Observability sink. Each instance records under its own actor
    /// label (`pci-00`, `pci-01`, …), so a metrics snapshot breaks wire
    /// traffic down per instance. [`Obs::disabled`] costs nothing.
    pub obs: Obs,
}

impl FederationConfig {
    /// The single-instance fault-free arm every other arm must match.
    pub fn baseline(participants: usize, days: u64, seed: u64) -> FederationConfig {
        FederationConfig {
            participants,
            days,
            seed,
            instances: 1,
            policy: BalancePolicy::ConsistentHash,
            kill_at: None,
            chaos_rate: 0.0,
            chaos_seed: 0,
            obs: Obs::disabled(),
        }
    }
}

/// One participant's durable end-of-study state, compared bit-for-bit
/// across arms (federation must be invisible in every field).
#[derive(Debug, PartialEq)]
pub struct UserFinalState {
    /// The client-side place registry.
    pub client_places: Vec<PmPlace>,
    /// Battery energy drained, as raw bits (exact float equality).
    pub energy_bits: u64,
    /// Places stored on the user's (current) cloud instance.
    pub cloud_places: Vec<DiscoveredPlace>,
    /// Day profiles stored cloud-side.
    pub cloud_profiles: Vec<MobilityProfile>,
    /// Observations absorbed by the cloud-side discovery engine.
    pub cloud_observations: usize,
    /// Social encounters stored cloud-side.
    pub cloud_contacts: Vec<ContactEntry>,
    /// The user's federated activity analytics answer, as raw bits.
    pub activity_bits: u64,
}

/// Everything one federation run leaves behind.
#[derive(Debug)]
pub struct FederationOutcome {
    /// Per-participant durable state, in participant order.
    pub per_user: Vec<UserFinalState>,
    /// Router control-plane requests right after every participant
    /// registered (should equal the cohort size: one handshake each).
    pub control_after_warmup: u64,
    /// Control-plane requests at study end. Equals `control_after_warmup`
    /// when no instance was killed — the zero-hot-path pin — and grows by
    /// exactly the displaced-user count across a failover.
    pub control_final: u64,
    /// Users migrated by the failover (0 without a kill).
    pub displaced: usize,
    /// WAL requests replayed into new instances during the failover.
    pub replayed: usize,
    /// Modeled migration latency in sim-seconds (1 s per replayed
    /// request).
    pub migration_seconds: u64,
    /// Authenticated requests served per instance at study end.
    pub per_instance_requests: Vec<(u32, u64)>,
    /// Federated mean of daily moving minutes across the cohort.
    pub population_mean_activity: f64,
    /// Transport faults injected across all instances.
    pub faults: u64,
}

/// The chaos-matrix shadow peer: a companion who is wherever the
/// participant is during business hours, giving the social pipeline a
/// deterministic encounter stream.
struct ShadowPeer {
    itinerary: Itinerary,
}

impl PeerProvider for ShadowPeer {
    fn peers_at(&self, t: SimTime) -> Vec<(String, GeoPoint)> {
        if (10..16).contains(&t.hour_of_day()) {
            vec![("shadow-peer".to_owned(), self.itinerary.position_at(t))]
        } else {
            Vec::new()
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Stop {
    /// Kill the instance hosting participant 0, then fail over.
    Kill,
    /// Disable fault injection and flush held traffic (chaos arms only).
    Heal,
    End,
}

/// Runs one federation study arm.
///
/// # Panics
///
/// Panics when the simulation itself fails (registration, run, or a
/// missing session) — harness bugs, not outcomes.
pub fn run_federation(config: &FederationConfig) -> FederationOutcome {
    assert!(config.instances >= 1, "need at least one instance");
    let world = WorldBuilder::new(RegionProfile::test_tiny())
        .seed(config.seed)
        .build();
    let population = Population::generate(&world, config.participants, config.seed + 1);
    let itineraries: Vec<Itinerary> = population
        .agents()
        .iter()
        .map(|agent| population.itinerary(&world, agent.id(), config.days))
        .collect();

    let router = TopologyRouter::new(config.policy);
    let chaos = config.chaos_rate > 0.0;
    let mut faulties: Vec<FaultyCloud> = Vec::new();
    for i in 0..config.instances {
        let shared = SharedCloud::new(
            CloudInstance::new(
                CellDatabase::from_world(&world),
                config.seed + 100 + i as u64,
            )
            .with_obs(&config.obs.for_actor(&format!("pci-{i:02}"))),
        );
        if chaos {
            let faulty = FaultyCloud::new(
                shared.clone(),
                FaultPlan::with_rate(config.chaos_seed + i as u64, config.chaos_rate),
            );
            faulty.set_enabled(false);
            router.add_instance_endpoint(shared, CloudEndpoint::new(faulty.clone()));
            faulties.push(faulty);
        } else {
            router.add_instance(shared);
        }
    }

    // Warmup: every participant registers (fault-free) through its own
    // federated endpoint — exactly one topology handshake each.
    let mut cohort = Vec::with_capacity(config.participants);
    for (p, itinerary) in itineraries.iter().enumerate() {
        let env = RadioEnvironment::new(&world, RadioConfig::default());
        let device = Device::new(
            env,
            itinerary,
            EnergyModel::htc_explorer(),
            config.seed + 300 + p as u64,
        );
        let pms_config = PmsConfig::for_participant(p as u32);
        let mut pms = PmwareMobileService::new(
            device,
            CloudEndpoint::new(router.endpoint()),
            pms_config.clone(),
            SimTime::EPOCH,
        )
        .expect("warmup registration is fault-free");
        let rx = pms.register_app(
            "federation-app",
            AppRequirement::places(Granularity::Building).with_social(),
            IntentFilter::all(),
        );
        pms.set_peer_provider(Box::new(ShadowPeer {
            itinerary: itinerary.clone(),
        }));
        cohort.push((pms, rx, pms_config));
    }
    let control_after_warmup = router.control_requests();
    for faulty in &faulties {
        faulty.set_enabled(true);
    }

    let end = SimTime::from_day_time(config.days, 0, 0, 0);
    let mut stops = vec![(end, Stop::End)];
    if chaos {
        // The link heals for the final night so the last maintenance pass
        // converges — same contract as the chaos matrix.
        stops.push((SimTime::from_day_time(config.days - 1, 0, 0, 0), Stop::Heal));
    }
    if let Some(t) = config.kill_at {
        assert!(t < end, "kill instant must be inside the study");
        stops.push((t, Stop::Kill));
    }
    stops.sort();

    let (mut displaced, mut replayed, mut migration_seconds) = (0, 0, 0);
    for (t, stop) in stops {
        // Lockstep: everyone reaches the stop before the action fires.
        for (pms, _rx, _config) in &mut cohort {
            pms.run(t).expect("run never fails after registration");
        }
        match stop {
            Stop::Kill => {
                let anchor = &cohort[0].2;
                let victim = router
                    .instance_of(&anchor.imei, &anchor.email)
                    .expect("participant 0 has a session");
                router.kill_instance(victim);
                let report = router.fail_over(t);
                assert!(report.displaced > 0, "killing a hosting instance displaces");
                displaced = report.displaced;
                replayed = report.replayed;
                migration_seconds = report.migration_seconds;
            }
            Stop::Heal => {
                for faulty in &faulties {
                    faulty.set_enabled(false);
                    faulty.flush(t);
                }
            }
            Stop::End => {}
        }
    }

    let mut reports = Vec::with_capacity(cohort.len());
    let mut configs = Vec::with_capacity(cohort.len());
    for (pms, _rx, pms_config) in cohort {
        reports.push(pms.finish(end));
        configs.push(pms_config);
    }
    for faulty in &faulties {
        faulty.flush(end);
    }

    let fanout = router.federated_activity(end);
    let per_user = reports
        .into_iter()
        .zip(configs.iter())
        .map(|(report, pms_config)| {
            let (cloud, user) = router
                .locate(&pms_config.imei, &pms_config.email)
                .expect("every participant has a live session");
            let key = format!("{}|{}", pms_config.imei, pms_config.email);
            let activity = fanout
                .per_user
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, m)| *m)
                .expect("fan-out covers every session");
            UserFinalState {
                client_places: report.places,
                energy_bits: report.energy_joules.to_bits(),
                cloud_places: cloud.places_of(user),
                cloud_profiles: cloud.profiles_of(user),
                cloud_observations: cloud.observation_count(user),
                cloud_contacts: cloud.contacts_of(user),
                activity_bits: activity.to_bits(),
            }
        })
        .collect();

    FederationOutcome {
        per_user,
        control_after_warmup,
        control_final: router.control_requests(),
        displaced,
        replayed,
        migration_seconds,
        per_instance_requests: router
            .instance_requests()
            .into_iter()
            .map(|(id, n)| (id.0, n))
            .collect(),
        population_mean_activity: fanout.population_mean,
        faults: faulties.iter().map(|f| f.stats().faults).sum(),
    }
}

/// The instance ids currently registered, in id order — lets callers pick
/// kill targets beyond participant 0's host.
pub fn instance_ids(router: &TopologyRouter) -> Vec<InstanceId> {
    router.topology().into_iter().map(|(id, _)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down arm (2 participants × 2 days × 2 instances with a
    /// midday kill) matching the fault-free single-instance baseline
    /// bit-for-bit; the full matrix lives in `tests/federation_matrix.rs`.
    #[test]
    fn small_failover_arm_matches_baseline() {
        let baseline = run_federation(&FederationConfig::baseline(2, 2, 77));
        assert_eq!(baseline.control_after_warmup, 2);
        assert_eq!(baseline.control_final, 2, "steady state is router-free");
        assert_eq!(baseline.displaced, 0);

        let mut config = FederationConfig::baseline(2, 2, 77);
        config.instances = 2;
        config.policy = BalancePolicy::RoundRobin;
        config.kill_at = Some(SimTime::from_day_time(1, 12, 30, 0));
        let arm = run_federation(&config);

        assert_eq!(
            arm.per_user, baseline.per_user,
            "federation must be invisible"
        );
        assert!(arm.displaced >= 1);
        assert_eq!(
            arm.control_final,
            arm.control_after_warmup + arm.displaced as u64,
            "exactly one topology refresh per displaced client"
        );
        assert_eq!(arm.migration_seconds, arm.replayed as u64);
    }
}
