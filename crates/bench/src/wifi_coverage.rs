//! INTRO-WIFI: WiFi-covered fraction of a day by region (§1 item 4).
//!
//! *"we found that a mobile user is under WiFi coverage for nearly 60 %
//! time during a day in India opposed to more than 90 % in a developed
//! country such as Switzerland."*
//!
//! We sample each agent's day once a minute and test whether any access
//! point is in detection range of their true position.

use pmware_geo::Meters;
use pmware_mobility::Population;
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::{SimTime, World};

/// Result for one region.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageResult {
    /// Profile name.
    pub region: String,
    /// Mean fraction of sampled minutes with at least one AP in range.
    pub covered_fraction: f64,
}

/// Fraction of `days` the agents of `world` spend under WiFi coverage.
pub fn coverage_fraction(world: &World, agents: usize, days: u64, seed: u64) -> f64 {
    let population = Population::generate(world, agents, seed);
    let mut covered = 0u64;
    let mut total = 0u64;
    for agent in population.agents() {
        let itinerary = population.itinerary(world, agent.id(), days);
        for minute in (0..days * 24 * 60).step_by(2) {
            let t = SimTime::from_seconds(minute * 60);
            let pos = itinerary.position_at(t);
            let mut any = false;
            world.for_each_ap_near(pos, Meters::new(150.0), |ap, d| {
                // "Under WiFi coverage" = some network is detectable at all
                // from here, matching how the paper's phones logged it.
                if ap.detection_probability(d) > 0.0 {
                    any = true;
                }
            });
            covered += any as u64;
            total += 1;
        }
    }
    covered as f64 / total as f64
}

/// Runs the comparison for the two region profiles of the paper.
pub fn run(agents: usize, days: u64, seed: u64) -> Vec<CoverageResult> {
    [RegionProfile::urban_india(), RegionProfile::urban_europe()]
        .into_iter()
        .map(|profile| {
            let name = profile.name.clone();
            let world = WorldBuilder::new(profile).seed(seed).build();
            CoverageResult {
                region: name,
                covered_fraction: coverage_fraction(&world, agents, days, seed + 1),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn india_around_60_percent_europe_far_higher() {
        // Coverage is dominated by whether each agent's home/work happens
        // to carry WiFi (a binary draw per agent), so average over a large
        // cohort and accept a wide band — the experiment binary runs the
        // full-size version.
        let results = run(16, 3, 11);
        let india = &results[0];
        let europe = &results[1];
        assert!(
            india.covered_fraction > 0.30 && india.covered_fraction < 0.85,
            "india {:.2}",
            india.covered_fraction
        );
        assert!(
            europe.covered_fraction > 0.75,
            "europe {:.2}",
            europe.covered_fraction
        );
        assert!(europe.covered_fraction > india.covered_fraction + 0.15);
    }
}
