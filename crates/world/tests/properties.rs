//! Property-based tests for the radio world's invariants.

use pmware_geo::Meters;
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::radio::{RadioConfig, RadioEnvironment};
use pmware_world::{SimDuration, SimTime};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn serving_tower_always_covers_the_phone(
        world_seed in 0u64..20,
        rng_seed in 0u64..1_000,
        place_pick in 0usize..12,
    ) {
        let world = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(world_seed)
            .build();
        let env = RadioEnvironment::new(&world, RadioConfig::default());
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let place = &world.places()[place_pick % world.places().len()];
        let pos = place.position();
        let mut serving = None;
        for minute in 0..30u64 {
            let t = SimTime::from_seconds(minute * 60);
            let Some((obs, s)) = env.observe_gsm(pos, t, serving, &mut rng) else {
                // Tiny worlds still have full coverage at places.
                return Err(TestCaseError::fail("no coverage at a place"));
            };
            let tower = world.tower_by_cell(obs.cell).expect("cell known");
            prop_assert!(
                tower.covers(pos),
                "serving tower {} does not cover the phone",
                tower.id()
            );
            prop_assert!(obs.rssi_dbm < 0.0 && obs.rssi_dbm > -130.0);
            serving = Some(s);
        }
    }

    #[test]
    fn wifi_scans_only_contain_real_nearby_aps(
        world_seed in 0u64..20,
        rng_seed in 0u64..1_000,
        place_pick in 0usize..12,
    ) {
        let world = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(world_seed)
            .build();
        let env = RadioEnvironment::new(&world, RadioConfig::default());
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let place = &world.places()[place_pick % world.places().len()];
        let scan = env.scan_wifi(place.position(), SimTime::EPOCH, &mut rng);
        for reading in &scan.readings {
            let ap = world
                .access_points()
                .iter()
                .find(|a| a.bssid() == reading.bssid)
                .expect("scanned bssid exists in the world");
            let d = ap
                .position()
                .equirectangular_distance(place.position());
            prop_assert!(
                d.value() <= ap.range().value() * 1.2 + 1.0,
                "ap {} detected from {d}",
                ap.ssid()
            );
        }
        // Sorted strongest-first.
        for w in scan.readings.windows(2) {
            prop_assert!(w[0].rssi_dbm >= w[1].rssi_dbm);
        }
    }

    #[test]
    fn gps_error_is_statistically_bounded_outdoors(
        world_seed in 0u64..10,
        rng_seed in 0u64..100,
    ) {
        let world = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(world_seed)
            .build();
        let env = RadioEnvironment::new(&world, RadioConfig::default());
        let mut rng = StdRng::seed_from_u64(rng_seed);
        // A corner of the map: outdoors.
        let pos = world.bounds().south_west();
        prop_assume!(world.place_at(pos).is_none());
        let mut worst: f64 = 0.0;
        for minute in 0..50u64 {
            let fix = env
                .fix_gps(pos, SimTime::from_seconds(minute * 60), &mut rng)
                .expect("outdoor fixes always succeed");
            worst = worst.max(fix.position.equirectangular_distance(pos).value());
        }
        // 6 m sigma: 50 samples essentially never exceed 5 sigma.
        prop_assert!(worst < 30.0, "outdoor error {worst}");
    }

    #[test]
    fn time_arithmetic_is_consistent(
        secs in 0u64..10_000_000,
        add in 0u64..1_000_000,
    ) {
        let t = SimTime::from_seconds(secs);
        let d = SimDuration::from_seconds(add);
        let later = t + d;
        prop_assert_eq!(later - t, d);
        prop_assert_eq!(later.since(t), d);
        prop_assert_eq!(t.since(later), SimDuration::ZERO);
        prop_assert_eq!(later.day() * 86_400 + later.seconds_of_day(), secs + add);
        // Weekday cycles with period 7 days.
        let week_later = t + SimDuration::from_days(7);
        prop_assert_eq!(t.weekday(), week_later.weekday());
    }

    #[test]
    fn worlds_are_reproducible(world_seed in 0u64..50) {
        let a = WorldBuilder::new(RegionProfile::test_tiny()).seed(world_seed).build();
        let b = WorldBuilder::new(RegionProfile::test_tiny()).seed(world_seed).build();
        prop_assert_eq!(a.places().len(), b.places().len());
        prop_assert_eq!(a.towers().len(), b.towers().len());
        for (x, y) in a.towers().iter().zip(b.towers()) {
            prop_assert_eq!(x.cell(), y.cell());
            prop_assert_eq!(x.position(), y.position());
        }
    }

    #[test]
    fn every_place_is_inside_world_bounds(world_seed in 0u64..50) {
        let world = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(world_seed)
            .build();
        let bounds = world.bounds();
        for place in world.places() {
            prop_assert!(bounds.contains(place.position()), "{}", place.name());
        }
        for ap in world.access_points() {
            // Place APs sit near their places; allow the place-radius slack.
            prop_assert!(
                bounds.expanded(Meters::new(150.0)).contains(ap.position()),
                "{}",
                ap.ssid()
            );
        }
    }
}
