//! The assembled world.

use pmware_geo::{grid::SpatialGrid, BoundingBox, GeoPoint, Meters};

use crate::ids::{ApId, CellGlobalId, PlaceId, TowerId};
use crate::place::WorldPlace;
use crate::roads::RoadGraph;
use crate::tower::CellTower;
use crate::wifi::AccessPoint;

use std::collections::HashMap;

/// A fully built simulated city: towers, access points, places, and roads.
///
/// Construct one with [`builder::WorldBuilder`](crate::builder::WorldBuilder).
#[derive(Debug, Clone)]
pub struct World {
    bounds: BoundingBox,
    towers: Vec<CellTower>,
    tower_index: SpatialGrid<TowerId>,
    cell_lookup: HashMap<CellGlobalId, TowerId>,
    aps: Vec<AccessPoint>,
    ap_index: SpatialGrid<ApId>,
    places: Vec<WorldPlace>,
    place_index: SpatialGrid<PlaceId>,
    roads: RoadGraph,
}

impl World {
    pub(crate) fn assemble(
        bounds: BoundingBox,
        towers: Vec<CellTower>,
        aps: Vec<AccessPoint>,
        places: Vec<WorldPlace>,
        roads: RoadGraph,
    ) -> World {
        let mut tower_index = SpatialGrid::new(Meters::new(1_000.0)).expect("positive cell size");
        let mut cell_lookup = HashMap::with_capacity(towers.len());
        for t in &towers {
            tower_index.insert(t.position(), t.id());
            cell_lookup.insert(t.cell(), t.id());
        }
        let mut ap_index = SpatialGrid::new(Meters::new(250.0)).expect("positive cell size");
        for a in &aps {
            ap_index.insert(a.position(), a.id());
        }
        let mut place_index = SpatialGrid::new(Meters::new(500.0)).expect("positive cell size");
        for p in &places {
            place_index.insert(p.position(), p.id());
        }
        World {
            bounds,
            towers,
            tower_index,
            cell_lookup,
            aps,
            ap_index,
            places,
            place_index,
            roads,
        }
    }

    /// The world's extent.
    pub fn bounds(&self) -> BoundingBox {
        self.bounds
    }

    /// All cell towers.
    pub fn towers(&self) -> &[CellTower] {
        &self.towers
    }

    /// A tower by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a tower of this world.
    pub fn tower(&self, id: TowerId) -> &CellTower {
        &self.towers[id.0 as usize]
    }

    /// Looks up the tower broadcasting a given cell identity — the ground
    /// truth behind the cloud's geolocation endpoint (an OpenCellID
    /// stand-in, §2.3.3).
    pub fn tower_by_cell(&self, cell: CellGlobalId) -> Option<&CellTower> {
        self.cell_lookup.get(&cell).map(|id| self.tower(*id))
    }

    /// All WiFi access points.
    pub fn access_points(&self) -> &[AccessPoint] {
        &self.aps
    }

    /// An access point by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an access point of this world.
    pub fn access_point(&self, id: ApId) -> &AccessPoint {
        &self.aps[id.0 as usize]
    }

    /// All ground-truth places.
    pub fn places(&self) -> &[WorldPlace] {
        &self.places
    }

    /// A place by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a place of this world.
    pub fn place(&self, id: PlaceId) -> &WorldPlace {
        &self.places[id.0 as usize]
    }

    /// The place whose extent contains `point`, if any. When extents overlap
    /// the nearest centre wins.
    pub fn place_at(&self, point: GeoPoint) -> Option<&WorldPlace> {
        let mut best: Option<(&WorldPlace, f64)> = None;
        self.place_index
            .for_each_within(point, Meters::new(500.0), |_, id, _| {
                let place = self.place(*id);
                let d = place.position().equirectangular_distance(point);
                if d <= place.radius() && best.is_none_or(|(_, bd)| d.value() < bd) {
                    best = Some((place, d.value()));
                }
            });
        best.map(|(p, _)| p)
    }

    /// The road network.
    pub fn roads(&self) -> &RoadGraph {
        &self.roads
    }

    /// Calls `f(tower, distance)` for every tower within `radius` of `point`.
    pub fn for_each_tower_near<F>(&self, point: GeoPoint, radius: Meters, mut f: F)
    where
        F: FnMut(&CellTower, Meters),
    {
        self.tower_index.for_each_within(point, radius, |_, id, d| {
            f(self.tower(*id), d);
        });
    }

    /// Calls `f(ap, distance)` for every access point within `radius`.
    pub fn for_each_ap_near<F>(&self, point: GeoPoint, radius: Meters, mut f: F)
    where
        F: FnMut(&AccessPoint, Meters),
    {
        self.ap_index.for_each_within(point, radius, |_, id, d| {
            f(self.access_point(*id), d);
        });
    }

    /// Places whose centre is within `radius` of `point`.
    pub fn places_near(&self, point: GeoPoint, radius: Meters) -> Vec<&WorldPlace> {
        let mut out = Vec::new();
        self.place_index.for_each_within(point, radius, |_, id, _| {
            out.push(self.place(*id));
        });
        out
    }
}
