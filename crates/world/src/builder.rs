//! World construction.
//!
//! [`WorldBuilder`] turns a [`RegionProfile`] and a seed into a fully
//! assembled, deterministic [`World`]. Profiles capture the regional
//! differences the paper calls out (§1, item 4): tower density, WiFi
//! coverage (~60 % of places in urban India vs > 90 % in a developed
//! country), and place layout.

use pmware_geo::{BoundingBox, GeoPoint, Meters};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ids::{ApId, Bssid, CellGlobalId, CellId, Lac, PlaceId, Plmn, TowerId};
use crate::place::{PlaceCategory, WorldPlace};
use crate::roads::RoadGraph;
use crate::tower::{CellTower, NetworkLayer};
use crate::wifi::AccessPoint;
use crate::world::World;

/// Number of places to generate per category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaceMix {
    /// `(category, count)` pairs; a category may appear once.
    pub counts: Vec<(PlaceCategory, u32)>,
}

impl PlaceMix {
    /// The mix used by the deployment-study experiments: enough places for
    /// 16 agents to accumulate ~120 distinct visited places in two weeks.
    pub fn city_default() -> Self {
        PlaceMix {
            counts: vec![
                (PlaceCategory::Home, 40),
                (PlaceCategory::Workplace, 12),
                (PlaceCategory::Shopping, 10),
                (PlaceCategory::Restaurant, 12),
                (PlaceCategory::Fitness, 6),
                (PlaceCategory::Park, 6),
                (PlaceCategory::Education, 6),
                (PlaceCategory::Entertainment, 6),
                (PlaceCategory::Healthcare, 4),
                (PlaceCategory::Transit, 8),
            ],
        }
    }

    /// A small mix for fast tests.
    pub fn tiny() -> Self {
        PlaceMix {
            counts: vec![
                (PlaceCategory::Home, 6),
                (PlaceCategory::Workplace, 3),
                (PlaceCategory::Shopping, 2),
                (PlaceCategory::Restaurant, 2),
            ],
        }
    }

    /// Total number of places.
    pub fn total(&self) -> u32 {
        self.counts.iter().map(|(_, n)| n).sum()
    }
}

/// Regional parameters for world generation.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionProfile {
    /// Human-readable profile name.
    pub name: String,
    /// Centre of the simulated city.
    pub center: GeoPoint,
    /// Edge length of the square region.
    pub extent: Meters,
    /// Spacing of the jittered 2G tower grid.
    pub tower_spacing_2g: Meters,
    /// Spacing of the jittered 3G tower grid.
    pub tower_spacing_3g: Meters,
    /// Coverage range of each tower. Must exceed the spacing for the
    /// overlapping coverage that causes serving-cell oscillation.
    pub tower_range: Meters,
    /// Operator identity stamped on every cell.
    pub plmn: Plmn,
    /// Fraction of places equipped with WiFi access points. This is the
    /// knob behind the paper's "60 % of a day under WiFi in India vs 90 %
    /// in Switzerland" observation.
    pub wifi_place_coverage: f64,
    /// Access points per WiFi-equipped place (inclusive range).
    pub aps_per_place: (u32, u32),
    /// Detection range of place APs.
    pub ap_range: Meters,
    /// Number of free-standing street APs (scan noise while travelling).
    pub background_aps: u32,
    /// Road grid spacing.
    pub road_spacing: Meters,
    /// Minimum separation between place centres.
    pub place_separation: Meters,
    /// Physical radius of places (inclusive range, metres).
    pub place_radius: (f64, f64),
    /// Probability that a place is indoor (GPS-hostile).
    pub indoor_probability: f64,
    /// Place counts.
    pub place_mix: PlaceMix,
}

impl RegionProfile {
    /// Urban-India profile: moderate tower density, ~60 % WiFi coverage.
    pub fn urban_india() -> Self {
        RegionProfile {
            name: "urban-india".to_owned(),
            center: GeoPoint::new(12.9716, 77.5946).expect("valid"), // Bangalore
            extent: Meters::new(6_000.0),
            tower_spacing_2g: Meters::new(800.0),
            tower_spacing_3g: Meters::new(1_000.0),
            tower_range: Meters::new(1_400.0),
            plmn: Plmn { mcc: 404, mnc: 45 },
            wifi_place_coverage: 0.66,
            aps_per_place: (2, 4),
            ap_range: Meters::new(80.0),
            background_aps: 60,
            road_spacing: Meters::new(500.0),
            place_separation: Meters::new(160.0),
            place_radius: (35.0, 70.0),
            indoor_probability: 0.75,
            place_mix: PlaceMix::city_default(),
        }
    }

    /// Urban-Europe profile: denser WiFi (> 90 % of places covered).
    pub fn urban_europe() -> Self {
        RegionProfile {
            name: "urban-europe".to_owned(),
            center: GeoPoint::new(46.5197, 6.6323).expect("valid"), // Lausanne
            extent: Meters::new(6_000.0),
            tower_spacing_2g: Meters::new(700.0),
            tower_spacing_3g: Meters::new(850.0),
            tower_range: Meters::new(1_200.0),
            plmn: Plmn { mcc: 228, mnc: 1 },
            wifi_place_coverage: 0.93,
            aps_per_place: (3, 6),
            ap_range: Meters::new(75.0),
            background_aps: 180,
            road_spacing: Meters::new(450.0),
            place_separation: Meters::new(160.0),
            place_radius: (35.0, 70.0),
            indoor_probability: 0.75,
            place_mix: PlaceMix::city_default(),
        }
    }

    /// A small, fast profile for unit tests.
    pub fn test_tiny() -> Self {
        let mut p = RegionProfile::urban_india();
        p.name = "test-tiny".to_owned();
        p.extent = Meters::new(2_500.0);
        p.place_mix = PlaceMix::tiny();
        p.background_aps = 10;
        p
    }
}

/// Deterministic world generator.
///
/// # Examples
///
/// ```
/// use pmware_world::builder::{RegionProfile, WorldBuilder};
///
/// let world = WorldBuilder::new(RegionProfile::test_tiny()).seed(1).build();
/// let again = WorldBuilder::new(RegionProfile::test_tiny()).seed(1).build();
/// assert_eq!(world.places().len(), again.places().len());
/// assert_eq!(world.places()[0].position(), again.places()[0].position());
/// ```
#[derive(Debug, Clone)]
pub struct WorldBuilder {
    profile: RegionProfile,
    seed: u64,
}

impl WorldBuilder {
    /// Starts a builder from a region profile.
    pub fn new(profile: RegionProfile) -> Self {
        WorldBuilder { profile, seed: 0 }
    }

    /// Sets the generation seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the profile's place mix.
    pub fn place_mix(mut self, mix: PlaceMix) -> Self {
        self.profile.place_mix = mix;
        self
    }

    /// Mutable access to the profile for fine-grained overrides.
    pub fn profile_mut(&mut self) -> &mut RegionProfile {
        &mut self.profile
    }

    /// Generates the world.
    pub fn build(self) -> World {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let p = &self.profile;
        let half = p.extent.value() / 2.0;
        let sw = p
            .center
            .destination(180.0, Meters::new(half))
            .destination(270.0, Meters::new(half));
        let ne = p
            .center
            .destination(0.0, Meters::new(half))
            .destination(90.0, Meters::new(half));
        let bounds = BoundingBox::new(sw, ne).expect("square region");

        let towers = build_towers(p, bounds, &mut rng);
        let places = build_places(p, bounds, &mut rng);
        let aps = build_aps(p, bounds, &places, &mut rng);
        let roads = build_roads(p, bounds);

        World::assemble(bounds, towers, aps, places, roads)
    }
}

fn random_point_in<R: Rng + ?Sized>(bounds: BoundingBox, rng: &mut R) -> GeoPoint {
    let sw = bounds.south_west();
    let ne = bounds.north_east();
    let lat = rng.gen_range(sw.latitude()..=ne.latitude());
    let lng = rng.gen_range(sw.longitude()..=ne.longitude());
    GeoPoint::new(lat, lng).expect("inside valid bounds")
}

fn build_towers<R: Rng + ?Sized>(
    p: &RegionProfile,
    bounds: BoundingBox,
    rng: &mut R,
) -> Vec<CellTower> {
    let mut towers = Vec::new();
    let mut next_cell = 1_000u32;
    for (layer, spacing, lac_base) in [
        (NetworkLayer::G2, p.tower_spacing_2g, 100u16),
        (NetworkLayer::G3, p.tower_spacing_3g, 200u16),
    ] {
        let cols = (bounds.width().value() / spacing.value()).ceil() as u32 + 1;
        let rows = (bounds.height().value() / spacing.value()).ceil() as u32 + 1;
        for r in 0..rows {
            for c in 0..cols {
                let base = bounds
                    .south_west()
                    .destination(0.0, Meters::new(r as f64 * spacing.value()))
                    .destination(90.0, Meters::new(c as f64 * spacing.value()));
                // Jitter up to 25% of spacing.
                let jitter_d = rng.gen_range(0.0..spacing.value() * 0.25);
                let jitter_b = rng.gen_range(0.0..360.0);
                let pos = base.destination(jitter_b, Meters::new(jitter_d));
                let id = TowerId(towers.len() as u32);
                // LAC changes every few grid rows, as in real deployments.
                let lac = Lac(lac_base + (r / 3) as u16);
                let cell = CellGlobalId {
                    plmn: p.plmn,
                    lac,
                    cell: CellId(next_cell),
                };
                next_cell += 1;
                let power = 20.0 + rng.gen_range(-3.0..3.0);
                towers.push(CellTower::new(id, cell, layer, pos, p.tower_range, power));
            }
        }
    }
    towers
}

fn build_places<R: Rng + ?Sized>(
    p: &RegionProfile,
    bounds: BoundingBox,
    rng: &mut R,
) -> Vec<WorldPlace> {
    let mut places: Vec<WorldPlace> = Vec::new();
    // Keep places away from the outermost strip so coverage is uniform.
    let inner = shrink(bounds, Meters::new(300.0));
    for &(category, count) in &p.place_mix.counts {
        for i in 0..count {
            let mut position = random_point_in(inner, rng);
            // Rejection sampling for minimum separation; give up after a
            // bounded number of attempts so dense mixes still terminate.
            for _ in 0..200 {
                let ok = places.iter().all(|existing| {
                    existing.position().equirectangular_distance(position) >= p.place_separation
                });
                if ok {
                    break;
                }
                position = random_point_in(inner, rng);
            }
            let id = PlaceId(places.len() as u32);
            let radius = Meters::new(rng.gen_range(p.place_radius.0..=p.place_radius.1));
            let indoor = match category {
                PlaceCategory::Park | PlaceCategory::Transit => false,
                PlaceCategory::Home | PlaceCategory::Workplace => true,
                _ => rng.gen_bool(p.indoor_probability),
            };
            let name = format!("{} {}", category.label(), i + 1);
            places.push(WorldPlace::new(
                id, name, category, position, radius, indoor,
            ));
        }
    }
    places
}

fn build_aps<R: Rng + ?Sized>(
    p: &RegionProfile,
    bounds: BoundingBox,
    places: &[WorldPlace],
    rng: &mut R,
) -> Vec<AccessPoint> {
    let mut aps = Vec::new();
    let mut next_mac: u64 = 0x02_00_00_00_00_00; // locally administered space
    for place in places {
        if !rng.gen_bool(p.wifi_place_coverage) {
            continue;
        }
        let n = rng.gen_range(p.aps_per_place.0..=p.aps_per_place.1);
        for k in 0..n {
            let d = rng.gen_range(0.0..place.radius().value());
            let b = rng.gen_range(0.0..360.0);
            let pos = place.position().destination(b, Meters::new(d));
            let id = ApId(aps.len() as u32);
            let bssid = Bssid(next_mac);
            next_mac += 0x10;
            let range = Meters::new(p.ap_range.value() * rng.gen_range(0.8..1.2));
            let ssid = format!("{}-ap{}", place.name().replace(' ', "-"), k);
            aps.push(AccessPoint::new(id, bssid, ssid, pos, range));
        }
    }
    for k in 0..p.background_aps {
        let pos = random_point_in(bounds, rng);
        let id = ApId(aps.len() as u32);
        let bssid = Bssid(next_mac);
        next_mac += 0x10;
        let range = Meters::new(p.ap_range.value() * rng.gen_range(0.6..1.0));
        aps.push(AccessPoint::new(
            id,
            bssid,
            format!("street-{k}"),
            pos,
            range,
        ));
    }
    aps
}

fn build_roads(p: &RegionProfile, bounds: BoundingBox) -> RoadGraph {
    let mut roads = RoadGraph::new();
    let spacing = p.road_spacing.value();
    let cols = (bounds.width().value() / spacing).ceil() as usize + 1;
    let rows = (bounds.height().value() / spacing).ceil() as usize + 1;
    let mut ids = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let pos = bounds
                .south_west()
                .destination(0.0, Meters::new(r as f64 * spacing))
                .destination(90.0, Meters::new(c as f64 * spacing));
            ids.push(roads.add_node(pos));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c + 1 < cols {
                roads.add_edge(ids[i], ids[i + 1]);
            }
            if r + 1 < rows {
                roads.add_edge(ids[i], ids[i + cols]);
            }
        }
    }
    roads
}

fn shrink(bounds: BoundingBox, margin: Meters) -> BoundingBox {
    let sw = bounds
        .south_west()
        .destination(0.0, margin)
        .destination(90.0, margin);
    let ne = bounds
        .north_east()
        .destination(180.0, margin)
        .destination(270.0, margin);
    BoundingBox::new(sw, ne).unwrap_or(bounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(5)
            .build();
        let b = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(5)
            .build();
        assert_eq!(a.towers().len(), b.towers().len());
        assert_eq!(a.places().len(), b.places().len());
        assert_eq!(a.access_points().len(), b.access_points().len());
        for (x, y) in a.places().iter().zip(b.places()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(1)
            .build();
        let b = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(2)
            .build();
        let same = a
            .places()
            .iter()
            .zip(b.places())
            .all(|(x, y)| x.position() == y.position());
        assert!(!same);
    }

    #[test]
    fn full_gsm_coverage_inside_bounds() {
        let w = WorldBuilder::new(RegionProfile::urban_india())
            .seed(3)
            .build();
        // Every place must be covered by at least two towers so that
        // oscillation is possible everywhere.
        for place in w.places() {
            let mut covering = 0;
            w.for_each_tower_near(place.position(), Meters::new(3_000.0), |t, d| {
                if d <= t.range() {
                    covering += 1;
                }
            });
            assert!(
                covering >= 2,
                "{} covered by {covering} towers",
                place.name()
            );
        }
    }

    #[test]
    fn place_mix_counts_respected() {
        let w = WorldBuilder::new(RegionProfile::urban_india())
            .seed(4)
            .build();
        let mix = PlaceMix::city_default();
        assert_eq!(w.places().len() as u32, mix.total());
        let homes = w
            .places()
            .iter()
            .filter(|p| p.category() == PlaceCategory::Home)
            .count();
        assert_eq!(homes, 40);
    }

    #[test]
    fn wifi_coverage_tracks_profile() {
        let india = WorldBuilder::new(RegionProfile::urban_india())
            .seed(6)
            .build();
        let europe = WorldBuilder::new(RegionProfile::urban_europe())
            .seed(6)
            .build();
        let covered = |w: &World| {
            let n = w
                .places()
                .iter()
                .filter(|p| {
                    let mut any = false;
                    w.for_each_ap_near(p.position(), p.radius(), |_, _| any = true);
                    any
                })
                .count();
            n as f64 / w.places().len() as f64
        };
        let india_cov = covered(&india);
        let europe_cov = covered(&europe);
        assert!(india_cov > 0.45 && india_cov < 0.8, "india {india_cov}");
        assert!(europe_cov > 0.85, "europe {europe_cov}");
        assert!(europe_cov > india_cov);
    }

    #[test]
    fn places_respect_minimum_separation_mostly() {
        let w = WorldBuilder::new(RegionProfile::urban_india())
            .seed(7)
            .build();
        let mut violations = 0;
        for (i, a) in w.places().iter().enumerate() {
            for b in &w.places()[i + 1..] {
                let d = a.position().equirectangular_distance(b.position());
                if d.value() < 150.0 {
                    violations += 1;
                }
            }
        }
        // Rejection sampling is bounded, so a few near pairs may survive —
        // which the deployment study *wants* (merged-place cases).
        assert!(violations < 8, "too many close pairs: {violations}");
    }

    #[test]
    fn roads_are_connected() {
        let w = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(8)
            .build();
        let roads = w.roads();
        let a = roads.nearest_node(w.bounds().south_west()).unwrap();
        let b = roads.nearest_node(w.bounds().north_east()).unwrap();
        assert!(roads.shortest_path(a, b).is_some());
    }

    #[test]
    fn cell_lookup_round_trips() {
        let w = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(9)
            .build();
        for t in w.towers().iter().take(20) {
            let found = w.tower_by_cell(t.cell()).expect("lookup succeeds");
            assert_eq!(found.id(), t.id());
        }
    }

    #[test]
    fn place_at_finds_containing_place() {
        let w = WorldBuilder::new(RegionProfile::test_tiny())
            .seed(10)
            .build();
        let place = &w.places()[0];
        let inside = place
            .position()
            .destination(45.0, Meters::new(place.radius().value() * 0.5));
        let found = w.place_at(inside).expect("point is inside");
        // Could be an overlapping neighbour, but must contain the point.
        assert!(found.contains(inside));
        // A faraway outdoor point matches nothing.
        let outside = w.bounds().south_west();
        assert!(w.place_at(outside).is_none());
    }
}
