//! WiFi access points.

use pmware_geo::{GeoPoint, Meters};
use serde::{Deserialize, Serialize};

use crate::ids::{ApId, Bssid};

/// A simulated WiFi access point.
///
/// Access points are the unit of SensLoc place signatures: a place is
/// identified by the set of BSSIDs visible from it (§2.1.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessPoint {
    id: ApId,
    bssid: Bssid,
    ssid: String,
    position: GeoPoint,
    range: Meters,
}

impl AccessPoint {
    /// Creates an access point.
    pub fn new(id: ApId, bssid: Bssid, ssid: String, position: GeoPoint, range: Meters) -> Self {
        AccessPoint {
            id,
            bssid,
            ssid,
            position,
            range,
        }
    }

    /// Internal index.
    pub fn id(&self) -> ApId {
        self.id
    }

    /// MAC-layer identifier.
    pub fn bssid(&self) -> Bssid {
        self.bssid
    }

    /// Network name.
    pub fn ssid(&self) -> &str {
        &self.ssid
    }

    /// Antenna position.
    pub fn position(&self) -> GeoPoint {
        self.position
    }

    /// Nominal detection radius.
    pub fn range(&self) -> Meters {
        self.range
    }

    /// Deterministic mean received signal strength (dBm) at `distance`.
    /// Log-distance path loss with exponent 3.5 (indoor/short range).
    pub fn mean_rssi_at(&self, distance: Meters) -> f64 {
        let d = distance.value().max(1.0);
        -35.0 - 35.0 * d.log10()
    }

    /// Probability that a single scan detects this AP from `distance`:
    /// near-certain inside half range, decaying to zero at ~1.2× range.
    pub fn detection_probability(&self, distance: Meters) -> f64 {
        let r = self.range.value();
        let d = distance.value();
        if d <= 0.5 * r {
            0.98
        } else if d >= 1.2 * r {
            0.0
        } else {
            // Linear decay from 0.98 at 0.5r to 0 at 1.2r.
            0.98 * (1.2 * r - d) / (0.7 * r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ap() -> AccessPoint {
        AccessPoint::new(
            ApId(0),
            Bssid(0xabcdef),
            "home-net".to_owned(),
            GeoPoint::new(12.97, 77.59).unwrap(),
            Meters::new(60.0),
        )
    }

    #[test]
    fn detection_probability_decays() {
        let ap = ap();
        let p_near = ap.detection_probability(Meters::new(10.0));
        let p_mid = ap.detection_probability(Meters::new(50.0));
        let p_far = ap.detection_probability(Meters::new(100.0));
        assert!(p_near > 0.9);
        assert!(p_mid < p_near && p_mid > 0.0);
        assert_eq!(p_far, 0.0);
    }

    #[test]
    fn detection_probability_is_a_probability() {
        let ap = ap();
        for d in [0.0, 1.0, 30.0, 60.0, 72.0, 73.0, 500.0] {
            let p = ap.detection_probability(Meters::new(d));
            assert!((0.0..=1.0).contains(&p), "p({d})={p}");
        }
    }

    #[test]
    fn rssi_weaker_with_distance() {
        let ap = ap();
        assert!(ap.mean_rssi_at(Meters::new(5.0)) > ap.mean_rssi_at(Meters::new(50.0)));
    }

    #[test]
    fn accessors() {
        let ap = ap();
        assert_eq!(ap.ssid(), "home-net");
        assert_eq!(ap.bssid(), Bssid(0xabcdef));
        assert_eq!(ap.range(), Meters::new(60.0));
    }
}
