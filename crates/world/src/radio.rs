//! Radio propagation: turning a true position into sensor observations.
//!
//! This is the substrate that replaces a real phone's radios. It reproduces
//! the phenomena the paper's algorithms are designed around:
//!
//! * **Oscillation effect** (§2.2.2): while the user is stationary, the
//!   serving cell switches among nearby towers because of load and
//!   small-time-scale signal fading, including 2G↔3G inter-network handoffs.
//!   Modelled with log-normal shadow fading, a handoff hysteresis margin,
//!   and random load-rebalancing events that suppress the hysteresis.
//! * **WiFi scan variability**: per-AP detection is probabilistic in
//!   distance, so consecutive scans at the same spot differ — exactly what
//!   SensLoc's Tanimoto similarity threshold absorbs.
//! * **GPS degradation indoors**: fixes indoors are unavailable most of the
//!   time and much noisier when they do appear.

use pmware_geo::{GeoPoint, Meters};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ids::{Bssid, TowerId};
use crate::observation::{GpsFix, GsmObservation, WifiReading, WifiScan};
use crate::time::SimTime;
use crate::world::World;

/// Gaussian sample via Box–Muller (the `rand` crate alone has no normal
/// distribution; pulling in `rand_distr` for one function is not worth it).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Tunable parameters of the propagation model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioConfig {
    /// Log-normal shadow-fading standard deviation (dB) applied per sample.
    pub shadow_sigma_db: f64,
    /// Handoff hysteresis: the serving cell is kept unless a neighbour beats
    /// it by this margin (dB). Smaller values mean more oscillation.
    pub hysteresis_db: f64,
    /// Per-sample probability that the network rebalances load, suppressing
    /// hysteresis for this sample (a source of oscillation while stationary).
    pub load_handoff_prob: f64,
    /// Per-sample probability of an inter-network (2G↔3G) handoff attempt.
    pub layer_switch_prob: f64,
    /// Width of the serving-cell eligibility window (dB): any tower whose
    /// noisy signal is within this margin of the strongest can be handed
    /// the phone during a load event. Wider window → larger oscillation set.
    pub oscillation_window_db: f64,
    /// Search radius for candidate towers.
    pub cell_search_radius: Meters,
    /// WiFi per-reading RSSI noise (dB).
    pub wifi_rssi_sigma_db: f64,
    /// GPS 1-sigma horizontal error outdoors.
    pub gps_outdoor_sigma: Meters,
    /// GPS 1-sigma horizontal error indoors (when a fix is available at all).
    pub gps_indoor_sigma: Meters,
    /// Probability that a GPS fix is obtained indoors.
    pub gps_indoor_availability: f64,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            shadow_sigma_db: 5.0,
            hysteresis_db: 6.0,
            load_handoff_prob: 0.10,
            layer_switch_prob: 0.03,
            oscillation_window_db: 13.0,
            cell_search_radius: Meters::new(3_000.0),
            wifi_rssi_sigma_db: 4.0,
            gps_outdoor_sigma: Meters::new(6.0),
            gps_indoor_sigma: Meters::new(30.0),
            gps_indoor_availability: 0.25,
        }
    }
}

/// Reusable candidate buffer for
/// [`RadioEnvironment::observe_gsm_with`]. One GSM sample per simulated
/// minute per participant makes `observe_gsm` the hottest call in a cohort
/// run; keeping the candidate list in a caller-owned scratch removes every
/// per-sample heap allocation.
#[derive(Debug, Default, Clone)]
pub struct GsmScratch {
    candidates: Vec<(TowerId, f64)>,
}

/// Reusable structure-of-arrays buffer for
/// [`RadioEnvironment::scan_wifi_with`]. Detected APs accumulate into
/// parallel BSSID/RSSI columns and a permutation array is sorted instead
/// of the readings themselves; reused across sim minutes, a scan performs
/// no heap allocation once the columns have warmed up to the local AP
/// density (the same discipline as [`GsmScratch`]).
#[derive(Debug, Default, Clone)]
pub struct WifiScratch {
    bssids: Vec<Bssid>,
    rssi_dbm: Vec<f64>,
    order: Vec<u32>,
}

/// The propagation model bound to a world.
///
/// Stateless apart from the borrowed world: callers thread the previous
/// serving tower through [`observe_gsm`](Self::observe_gsm) so that several
/// simulated devices can share one environment.
#[derive(Debug, Clone)]
pub struct RadioEnvironment<'w> {
    world: &'w World,
    config: RadioConfig,
}

impl<'w> RadioEnvironment<'w> {
    /// Binds the model to a world with the given configuration.
    pub fn new(world: &'w World, config: RadioConfig) -> Self {
        RadioEnvironment { world, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RadioConfig {
        &self.config
    }

    /// The world this environment reads from.
    pub fn world(&self) -> &'w World {
        self.world
    }

    /// Samples the GSM modem at `position`.
    ///
    /// `prev_serving` is the tower the phone was camped on at the previous
    /// sample; handoff hysteresis applies to it. Returns the new observation
    /// and serving tower, or `None` outside network coverage.
    ///
    /// Convenience wrapper over [`observe_gsm_with`] that allocates a fresh
    /// scratch buffer per call; callers sampling in a loop (one per
    /// simulated minute) should hold a [`GsmScratch`] and use the `_with`
    /// variant instead.
    ///
    /// [`observe_gsm_with`]: Self::observe_gsm_with
    pub fn observe_gsm<R: Rng + ?Sized>(
        &self,
        position: GeoPoint,
        time: SimTime,
        prev_serving: Option<TowerId>,
        rng: &mut R,
    ) -> Option<(GsmObservation, TowerId)> {
        let mut scratch = GsmScratch::default();
        self.observe_gsm_with(&mut scratch, position, time, prev_serving, rng)
    }

    /// [`observe_gsm`](Self::observe_gsm) with a caller-owned scratch
    /// buffer: the per-sample hot path performs no heap allocation once the
    /// buffer has warmed up to the local tower density.
    pub fn observe_gsm_with<R: Rng + ?Sized>(
        &self,
        scratch: &mut GsmScratch,
        position: GeoPoint,
        time: SimTime,
        prev_serving: Option<TowerId>,
        rng: &mut R,
    ) -> Option<(GsmObservation, TowerId)> {
        // Collect candidates and track the strongest signal in one pass.
        let candidates = &mut scratch.candidates;
        candidates.clear();
        let mut best_rssi = f64::NEG_INFINITY;
        self.world.for_each_tower_near(
            position,
            self.config.cell_search_radius,
            |tower, distance| {
                if distance <= tower.range() {
                    let rssi = tower.mean_rssi_at(distance)
                        + gaussian(rng, 0.0, self.config.shadow_sigma_db);
                    best_rssi = best_rssi.max(rssi);
                    candidates.push((tower.id(), rssi));
                }
            },
        );
        if candidates.is_empty() {
            return None;
        }

        // Towers whose signal is within the oscillation window of the best
        // are all plausible serving cells; the network moves phones among
        // them under load ("oscillating effect", §2.2.2). Filtering in
        // place is safe because every later read wants eligible towers:
        // the serving cell is always chosen from this set.
        candidates.retain(|&(_, r)| r >= best_rssi - self.config.oscillation_window_db);
        let eligible = &candidates[..];

        let load_event = rng.gen_bool(self.config.load_handoff_prob);
        let layer_hop = rng.gen_bool(self.config.layer_switch_prob);
        let prev_layer = prev_serving.map(|id| self.world.tower(id).layer());
        let prev_eligible = prev_serving
            .map(|id| eligible.iter().any(|(e, _)| *e == id))
            .unwrap_or(false);

        let serving = if prev_eligible && !load_event && !layer_hop {
            // Hysteresis: stay camped unless someone beats the previous cell
            // by the hysteresis margin.
            let prev = prev_serving.expect("prev_eligible implies prev");
            let prev_rssi = eligible
                .iter()
                .find(|(id, _)| *id == prev)
                .expect("prev is eligible")
                .1;
            if best_rssi > prev_rssi + self.config.hysteresis_db {
                eligible
                    .iter()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite rssi"))
                    .expect("eligible non-empty")
                    .0
            } else {
                prev
            }
        } else {
            // Handoff event: pick among eligible towers, weighted by signal;
            // an inter-network hop prefers the other layer when available.
            // The pool is a predicate over `eligible`, never materialized:
            // it restricts to the other network layer only when a layer hop
            // has somewhere to go.
            let hop_from = if layer_hop { prev_layer } else { None };
            let restrict = hop_from.is_some_and(|pl| {
                eligible
                    .iter()
                    .any(|&(id, _)| self.world.tower(id).layer() != pl)
            });
            let in_pool = |id: TowerId| match hop_from {
                Some(pl) if restrict => self.world.tower(id).layer() != pl,
                _ => true,
            };
            // Softmax-style weights over dB relative to the pool's best.
            // The weight of each member is recomputed per pass — cheaper
            // than a weights vector, and bit-identical since the inputs
            // are the same.
            let mut pool_best = f64::NEG_INFINITY;
            let mut last_in_pool = None;
            for &(id, r) in eligible {
                if in_pool(id) {
                    pool_best = pool_best.max(r);
                    last_in_pool = Some(id);
                }
            }
            let mut total = 0.0;
            for &(id, r) in eligible {
                if in_pool(id) {
                    total += ((r - pool_best) / 4.0).exp();
                }
            }
            let mut pick = rng.gen_range(0.0..total);
            let mut chosen = last_in_pool.expect("pool non-empty");
            for &(id, r) in eligible {
                if !in_pool(id) {
                    continue;
                }
                let w = ((r - pool_best) / 4.0).exp();
                if pick < w {
                    chosen = id;
                    break;
                }
                pick -= w;
            }
            chosen
        };
        let tower = self.world.tower(serving);
        let rssi = eligible
            .iter()
            .find(|(id, _)| *id == serving)
            .expect("serving is eligible")
            .1;
        Some((
            GsmObservation {
                time,
                cell: tower.cell(),
                layer: tower.layer(),
                rssi_dbm: rssi,
            },
            serving,
        ))
    }

    /// Performs a WiFi scan at `position`.
    ///
    /// Each in-range access point is detected independently with a
    /// distance-dependent probability; detected APs get noisy RSSI readings,
    /// strongest first.
    pub fn scan_wifi<R: Rng + ?Sized>(
        &self,
        position: GeoPoint,
        time: SimTime,
        rng: &mut R,
    ) -> WifiScan {
        let mut scratch = WifiScratch::default();
        let mut out = WifiScan {
            time,
            readings: Vec::new(),
        };
        self.scan_wifi_with(&mut scratch, &mut out, position, time, rng);
        out
    }

    /// [`scan_wifi`](Self::scan_wifi) into caller-owned buffers: the
    /// detection pass fills the scratch's SoA columns (identical RNG draw
    /// order to the allocating variant), a stable sort on the permutation
    /// array orders readings strongest-first (the same comparator, hence
    /// the same permutation, as sorting the readings directly), and `out`
    /// is rewritten in place.
    pub fn scan_wifi_with<R: Rng + ?Sized>(
        &self,
        scratch: &mut WifiScratch,
        out: &mut WifiScan,
        position: GeoPoint,
        time: SimTime,
        rng: &mut R,
    ) {
        let WifiScratch {
            bssids,
            rssi_dbm,
            order,
        } = scratch;
        bssids.clear();
        rssi_dbm.clear();
        // 1.2× the largest AP range is the outer detection limit; use a
        // fixed generous search radius instead of tracking the max.
        let search = Meters::new(250.0);
        self.world
            .for_each_ap_near(position, search, |ap, distance| {
                let p = ap.detection_probability(distance);
                if p > 0.0 && rng.gen_bool(p) {
                    let rssi = ap.mean_rssi_at(distance)
                        + gaussian(rng, 0.0, self.config.wifi_rssi_sigma_db);
                    bssids.push(ap.bssid());
                    rssi_dbm.push(rssi);
                }
            });
        order.clear();
        order.extend(0..bssids.len() as u32);
        order.sort_by(|&a, &b| {
            rssi_dbm[b as usize]
                .partial_cmp(&rssi_dbm[a as usize])
                .expect("rssi is finite")
        });
        out.time = time;
        out.readings.clear();
        out.readings.extend(order.iter().map(|&i| WifiReading {
            bssid: bssids[i as usize],
            rssi_dbm: rssi_dbm[i as usize],
        }));
    }

    /// Attempts a GPS fix at `position`.
    ///
    /// Indoors (inside an indoor place) fixes mostly fail; when they succeed
    /// the error is much larger. Returns `None` when no fix is obtained.
    pub fn fix_gps<R: Rng + ?Sized>(
        &self,
        position: GeoPoint,
        time: SimTime,
        rng: &mut R,
    ) -> Option<GpsFix> {
        let indoor = self
            .world
            .place_at(position)
            .map(|p| p.is_indoor())
            .unwrap_or(false);
        let sigma = if indoor {
            if !rng.gen_bool(self.config.gps_indoor_availability) {
                return None;
            }
            self.config.gps_indoor_sigma
        } else {
            self.config.gps_outdoor_sigma
        };
        let bearing = rng.gen_range(0.0..360.0);
        let err = gaussian(rng, 0.0, sigma.value()).abs();
        let reported = position.destination(bearing, Meters::new(err));
        Some(GpsFix {
            time,
            position: reported,
            accuracy: sigma,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{RegionProfile, WorldBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> World {
        WorldBuilder::new(RegionProfile::urban_india())
            .seed(42)
            .build()
    }

    #[test]
    fn gaussian_statistics() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd={}", var.sqrt());
    }

    #[test]
    fn gsm_observation_in_coverage() {
        let w = world();
        let env = RadioEnvironment::new(&w, RadioConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let pos = w.places()[0].position();
        let (obs, serving) = env
            .observe_gsm(pos, SimTime::EPOCH, None, &mut rng)
            .unwrap();
        assert!(obs.rssi_dbm < 0.0);
        assert_eq!(w.tower(serving).cell(), obs.cell);
    }

    #[test]
    fn stationary_phone_oscillates_but_not_wildly() {
        let w = world();
        let env = RadioEnvironment::new(&w, RadioConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        // places()[0] in this world sits almost on top of a tower (25 dB to
        // the runner-up), so no neighbour ever enters the oscillation
        // window there; places()[1] has typical several-towers-in-window
        // geometry, which is what this test is about.
        let pos = w.places()[1].position();
        let mut serving = None;
        let mut switches = 0;
        let mut distinct = std::collections::HashSet::new();
        let n = 600; // ten simulated hours of 1-minute samples
        for i in 0..n {
            let t = SimTime::from_seconds(i * 60);
            let (obs, s) = env.observe_gsm(pos, t, serving, &mut rng).unwrap();
            distinct.insert(obs.cell);
            if serving.is_some() && serving != Some(s) {
                switches += 1;
            }
            serving = Some(s);
        }
        // The oscillation effect must exist but the phone must not switch on
        // every sample: between 2% and 40% of samples.
        assert!(switches > n / 50, "too stable: {switches} switches");
        assert!(switches < n * 2 / 5, "too unstable: {switches} switches");
        assert!(
            distinct.len() >= 2,
            "oscillation must involve several cells"
        );
        assert!(
            distinct.len() <= 12,
            "oscillation set too large: {}",
            distinct.len()
        );
    }

    #[test]
    fn wifi_scan_near_place_sees_aps_repeatably() {
        let w = world();
        let env = RadioEnvironment::new(&w, RadioConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        // Find a place with WiFi coverage.
        let pos = w
            .places()
            .iter()
            .map(|p| p.position())
            .find(|pos| {
                let mut any = false;
                w.for_each_ap_near(*pos, Meters::new(100.0), |_, _| any = true);
                any
            })
            .expect("india profile has wifi at many places");
        let scans: Vec<WifiScan> = (0..10)
            .map(|i| env.scan_wifi(pos, SimTime::from_seconds(i * 60), &mut rng))
            .collect();
        assert!(scans.iter().all(|s| !s.is_empty()));
        // Scans vary but share most APs.
        let first: std::collections::HashSet<_> = scans[0].bssids().collect();
        let last: std::collections::HashSet<_> = scans[9].bssids().collect();
        let inter = first.intersection(&last).count();
        assert!(inter > 0, "consecutive scans at one spot should overlap");
    }

    #[test]
    fn wifi_readings_sorted_strongest_first() {
        let w = world();
        let env = RadioEnvironment::new(&w, RadioConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        for place in w.places().iter().take(10) {
            let scan = env.scan_wifi(place.position(), SimTime::EPOCH, &mut rng);
            for pair in scan.readings.windows(2) {
                assert!(pair[0].rssi_dbm >= pair[1].rssi_dbm);
            }
        }
    }

    #[test]
    fn gps_outdoor_accuracy_beats_indoor() {
        let w = world();
        let env = RadioEnvironment::new(&w, RadioConfig::default());
        let mut rng = StdRng::seed_from_u64(6);
        // Outdoors: middle of nowhere between places.
        let outdoor = w.bounds().center();
        let outdoor_fix = env.fix_gps(outdoor, SimTime::EPOCH, &mut rng);
        // An outdoor fix always succeeds (unless the bbox centre lands
        // inside an indoor place, which the builder avoids).
        if w.place_at(outdoor).is_none() {
            let fix = outdoor_fix.expect("outdoor fix always succeeds");
            let err = fix.position.equirectangular_distance(outdoor).value();
            assert!(err < 40.0, "outdoor error too large: {err}");
        }
        // Indoors: fixes frequently fail.
        let indoor_place = w.places().iter().find(|p| p.is_indoor()).unwrap();
        let mut failures = 0;
        for _ in 0..100 {
            if env
                .fix_gps(indoor_place.position(), SimTime::EPOCH, &mut rng)
                .is_none()
            {
                failures += 1;
            }
        }
        assert!(
            failures > 40,
            "indoor fixes should mostly fail, got {failures}/100 failures"
        );
    }

    #[test]
    fn determinism_same_seed_same_observation() {
        let w = world();
        let env = RadioEnvironment::new(&w, RadioConfig::default());
        let pos = w.places()[1].position();
        let obs1 = {
            let mut rng = StdRng::seed_from_u64(9);
            env.observe_gsm(pos, SimTime::EPOCH, None, &mut rng)
                .unwrap()
        };
        let obs2 = {
            let mut rng = StdRng::seed_from_u64(9);
            env.observe_gsm(pos, SimTime::EPOCH, None, &mut rng)
                .unwrap()
        };
        assert_eq!(obs1.0, obs2.0);
        assert_eq!(obs1.1, obs2.1);
    }
}
