//! Ground-truth places of interest.

use pmware_geo::{GeoPoint, Meters};
use serde::{Deserialize, Serialize};

use crate::ids::PlaceId;

/// Category of a place, used for agent schedules and ad targeting.
///
/// Figure 2 of the paper characterises place-aware applications by the
/// granularity of place they need; categories here drive both which places
/// agents visit and which advertisement categories are relevant there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PlaceCategory {
    /// A residence.
    Home,
    /// An office or campus.
    Workplace,
    /// Shops, markets, malls.
    Shopping,
    /// Restaurants and cafes.
    Restaurant,
    /// Gyms, sports grounds.
    Fitness,
    /// Parks and recreation.
    Park,
    /// Academic buildings, libraries.
    Education,
    /// Cinemas, venues.
    Entertainment,
    /// Clinics and hospitals.
    Healthcare,
    /// Transit hubs (stations, stops).
    Transit,
}

impl PlaceCategory {
    /// All categories.
    pub const ALL: [PlaceCategory; 10] = [
        PlaceCategory::Home,
        PlaceCategory::Workplace,
        PlaceCategory::Shopping,
        PlaceCategory::Restaurant,
        PlaceCategory::Fitness,
        PlaceCategory::Park,
        PlaceCategory::Education,
        PlaceCategory::Entertainment,
        PlaceCategory::Healthcare,
        PlaceCategory::Transit,
    ];

    /// A short lowercase label, e.g. for reports.
    pub fn label(self) -> &'static str {
        match self {
            PlaceCategory::Home => "home",
            PlaceCategory::Workplace => "workplace",
            PlaceCategory::Shopping => "shopping",
            PlaceCategory::Restaurant => "restaurant",
            PlaceCategory::Fitness => "fitness",
            PlaceCategory::Park => "park",
            PlaceCategory::Education => "education",
            PlaceCategory::Entertainment => "entertainment",
            PlaceCategory::Healthcare => "healthcare",
            PlaceCategory::Transit => "transit",
        }
    }
}

/// A ground-truth place in the simulated world.
///
/// Places have a physical extent (`radius`); an agent inside the radius is
/// "at" the place, which is what the diary ground truth records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldPlace {
    id: PlaceId,
    name: String,
    category: PlaceCategory,
    position: GeoPoint,
    radius: Meters,
    /// Whether the interior blocks GPS (indoors).
    indoor: bool,
}

impl WorldPlace {
    /// Creates a place.
    pub fn new(
        id: PlaceId,
        name: String,
        category: PlaceCategory,
        position: GeoPoint,
        radius: Meters,
        indoor: bool,
    ) -> Self {
        WorldPlace {
            id,
            name,
            category,
            position,
            radius,
            indoor,
        }
    }

    /// Ground-truth identifier.
    pub fn id(&self) -> PlaceId {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Category.
    pub fn category(&self) -> PlaceCategory {
        self.category
    }

    /// Centre position.
    pub fn position(&self) -> GeoPoint {
        self.position
    }

    /// Physical extent.
    pub fn radius(&self) -> Meters {
        self.radius
    }

    /// Whether GPS is degraded inside.
    pub fn is_indoor(&self) -> bool {
        self.indoor
    }

    /// Returns `true` if `point` is within the place's extent.
    pub fn contains(&self, point: GeoPoint) -> bool {
        self.position.equirectangular_distance(point) <= self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_respects_radius() {
        let p = WorldPlace::new(
            PlaceId(0),
            "Office".into(),
            PlaceCategory::Workplace,
            GeoPoint::new(12.97, 77.59).unwrap(),
            Meters::new(80.0),
            true,
        );
        let inside = p.position().destination(0.0, Meters::new(50.0));
        let outside = p.position().destination(0.0, Meters::new(120.0));
        assert!(p.contains(inside));
        assert!(!p.contains(outside));
    }

    #[test]
    fn labels_are_unique() {
        use std::collections::HashSet;
        let labels: HashSet<_> = PlaceCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), PlaceCategory::ALL.len());
    }
}
