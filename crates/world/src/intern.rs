//! Deterministic string-free interning for hot-path identifiers.
//!
//! The discovery pipeline hashes and compares 12-byte [`CellGlobalId`]s and
//! 8-byte [`Bssid`]s millions of times per simulated cohort: every GSM
//! sample touches the movement graph, every WiFi scan probes the SensLoc
//! signature index. An [`Interner`] maps each distinct identifier to a dense
//! `u32` symbol so those structures can use `Vec` indexing and cheap integer
//! hashing instead of map lookups on composite keys.
//!
//! # Determinism rules
//!
//! * Symbols are assigned in **first-seen order** and never reused: the
//!   *n*-th distinct value interned gets symbol *n − 1*. Two runs that
//!   observe the same identifier stream assign identical symbols.
//! * The table is **append-only** — `resolve` never invalidates.
//! * Symbols are process-local bookkeeping and must never leak onto the
//!   wire or into checkpoints: serialization resolves symbols back to the
//!   original identifiers so on-disk and on-wire shapes stay keyed by the
//!   real-world IDs (and stay independent of arrival order).
//!
//! [`CellGlobalId`]: crate::ids::CellGlobalId
//! [`Bssid`]: crate::ids::Bssid

use std::collections::HashMap;
use std::hash::Hash;

/// A dense symbol handed out by an [`Interner`].
pub type Symbol = u32;

/// An append-only table mapping values to dense [`Symbol`]s.
///
/// Symbols are assigned by first-seen order, making them deterministic for
/// a deterministic input stream — see the module docs for the rules.
#[derive(Debug, Clone)]
pub struct Interner<T> {
    table: Vec<T>,
    index: HashMap<T, Symbol>,
}

impl<T> Default for Interner<T> {
    fn default() -> Self {
        Interner {
            table: Vec::new(),
            index: HashMap::new(),
        }
    }
}

impl<T: Clone + Eq + Hash> Interner<T> {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            table: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Returns the symbol for `value`, assigning the next dense symbol if
    /// it has not been seen before.
    pub fn intern(&mut self, value: &T) -> Symbol {
        if let Some(&sym) = self.index.get(value) {
            return sym;
        }
        let sym = Symbol::try_from(self.table.len()).expect("interner overflow");
        self.table.push(value.clone());
        self.index.insert(value.clone(), sym);
        sym
    }

    /// The symbol for `value` if it has been interned.
    pub fn get(&self, value: &T) -> Option<Symbol> {
        self.index.get(value).copied()
    }

    /// The value behind a symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> &T {
        &self.table[sym as usize]
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// All interned values in symbol order (symbol `i` is `values()[i]`).
    pub fn values(&self) -> &[T] {
        &self.table
    }
}

impl<T: Clone + Eq + Hash> PartialEq for Interner<T> {
    /// Two interners are equal when they assigned the same symbols to the
    /// same values — i.e. their first-seen orders match. (The lookup index
    /// is derived state and does not participate.)
    fn eq(&self, other: &Self) -> bool {
        self.table == other.table
    }
}

impl<T: Clone + Eq + Hash> Eq for Interner<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Bssid;

    #[test]
    fn first_seen_order_is_dense_and_stable() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.intern(&Bssid(30)), 0);
        assert_eq!(i.intern(&Bssid(10)), 1);
        assert_eq!(i.intern(&Bssid(30)), 0, "re-intern returns the same symbol");
        assert_eq!(i.intern(&Bssid(20)), 2);
        assert_eq!(i.len(), 3);
        assert_eq!(*i.resolve(1), Bssid(10));
        assert_eq!(i.get(&Bssid(20)), Some(2));
        assert_eq!(i.get(&Bssid(99)), None);
        assert_eq!(i.values(), &[Bssid(30), Bssid(10), Bssid(20)]);
    }

    #[test]
    fn equality_is_first_seen_order() {
        let mut a = Interner::new();
        let mut b = Interner::new();
        a.intern(&1u32);
        a.intern(&2u32);
        b.intern(&1u32);
        assert_ne!(a, b);
        b.intern(&2u32);
        assert_eq!(a, b);
        let mut c = Interner::new();
        c.intern(&2u32);
        c.intern(&1u32);
        assert_ne!(a, c, "same values, different order");
    }
}
