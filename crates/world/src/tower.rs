//! GSM cell towers and their signal model.

use pmware_geo::{GeoPoint, Meters};
use serde::{Deserialize, Serialize};

use crate::ids::{CellGlobalId, TowerId};

/// The radio-access layer a cell belongs to.
///
/// Real phones hand off between 2G and 3G layers under load ("inter-network
/// (2G to 3G or vice versa) handoff", §2.2.2), which is one source of the
/// oscillation effect GCA must absorb: the 2G and 3G cells covering the same
/// spot have different cell IDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkLayer {
    /// GSM / GPRS layer.
    G2,
    /// UMTS layer.
    G3,
}

/// A simulated cell tower (one sector / one cell).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellTower {
    id: TowerId,
    cell: CellGlobalId,
    layer: NetworkLayer,
    position: GeoPoint,
    range: Meters,
    /// Transmit-power proxy: higher means stronger signal at equal distance.
    power_dbm: f64,
}

impl CellTower {
    /// Creates a tower.
    pub fn new(
        id: TowerId,
        cell: CellGlobalId,
        layer: NetworkLayer,
        position: GeoPoint,
        range: Meters,
        power_dbm: f64,
    ) -> Self {
        CellTower {
            id,
            cell,
            layer,
            position,
            range,
            power_dbm,
        }
    }

    /// Internal tower index.
    pub fn id(&self) -> TowerId {
        self.id
    }

    /// The cell's global identity (PLMN + LAC + CID).
    pub fn cell(&self) -> CellGlobalId {
        self.cell
    }

    /// Network layer (2G / 3G).
    pub fn layer(&self) -> NetworkLayer {
        self.layer
    }

    /// Antenna position.
    pub fn position(&self) -> GeoPoint {
        self.position
    }

    /// Nominal coverage radius.
    pub fn range(&self) -> Meters {
        self.range
    }

    /// Deterministic mean received signal strength (dBm) at `distance`,
    /// before fading noise. Log-distance path loss with exponent 3.0
    /// (urban macro-cell).
    pub fn mean_rssi_at(&self, distance: Meters) -> f64 {
        let d = distance.value().max(1.0);
        self.power_dbm - 30.0 * (d / 10.0).log10().max(0.0) - 40.0
    }

    /// Returns `true` if `point` is within nominal coverage.
    pub fn covers(&self, point: GeoPoint) -> bool {
        self.position.equirectangular_distance(point) <= self.range
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CellId, Lac, Plmn};

    fn tower() -> CellTower {
        CellTower::new(
            TowerId(0),
            CellGlobalId {
                plmn: Plmn { mcc: 404, mnc: 45 },
                lac: Lac(1),
                cell: CellId(100),
            },
            NetworkLayer::G2,
            GeoPoint::new(12.97, 77.59).unwrap(),
            Meters::new(1_500.0),
            20.0,
        )
    }

    #[test]
    fn rssi_decreases_with_distance() {
        let t = tower();
        let near = t.mean_rssi_at(Meters::new(50.0));
        let far = t.mean_rssi_at(Meters::new(1_000.0));
        assert!(near > far, "near={near} far={far}");
    }

    #[test]
    fn rssi_is_monotone_and_finite() {
        let t = tower();
        let mut last = f64::MAX;
        for d in [1.0, 10.0, 100.0, 500.0, 1_000.0, 2_000.0] {
            let r = t.mean_rssi_at(Meters::new(d));
            assert!(r.is_finite());
            assert!(r <= last);
            last = r;
        }
    }

    #[test]
    fn covers_respects_range() {
        let t = tower();
        let inside = t.position().destination(90.0, Meters::new(1_000.0));
        let outside = t.position().destination(90.0, Meters::new(2_000.0));
        assert!(t.covers(inside));
        assert!(!t.covers(outside));
    }
}
