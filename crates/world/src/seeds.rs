//! Deterministic seed derivation.
//!
//! Every stochastic component in the workspace takes a seed; deriving them
//! ad hoc (`master + 7`, `master * 31 + i`) invites collisions where two
//! components accidentally share a random stream and become correlated.
//! [`derive`] hashes a master seed with a stream label into an independent
//! 64-bit seed (FNV-1a, good enough for stream separation — this is not a
//! cryptographic domain separator).
//!
//! # Examples
//!
//! ```
//! use pmware_world::seeds;
//!
//! let master = 2014;
//! let radio = seeds::derive(master, "radio");
//! let agents = seeds::derive(master, "agents");
//! assert_ne!(radio, agents);
//! // Deterministic:
//! assert_eq!(radio, seeds::derive(master, "radio"));
//! ```

/// Derives an independent seed for `stream` from a master seed.
pub fn derive(master: u64, stream: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for byte in master.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    for byte in stream.as_bytes() {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Derives an indexed seed (e.g. one per participant) for `stream`.
pub fn derive_indexed(master: u64, stream: &str, index: u64) -> u64 {
    derive(derive(master, stream), &index.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn streams_are_independent() {
        let master = 42;
        let a = derive(master, "alpha");
        let b = derive(master, "beta");
        assert_ne!(a, b);
        assert_ne!(derive(1, "alpha"), derive(2, "alpha"));
    }

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive(7, "x"), derive(7, "x"));
        assert_eq!(derive_indexed(7, "x", 3), derive_indexed(7, "x", 3));
    }

    #[test]
    fn indexed_seeds_do_not_collide_in_practice() {
        let mut seen = HashSet::new();
        for master in 0..20u64 {
            for i in 0..50u64 {
                assert!(
                    seen.insert(derive_indexed(master, "participant", i)),
                    "collision at master={master} i={i}"
                );
            }
        }
    }

    #[test]
    fn label_prefixes_do_not_alias() {
        // "ab" + c vs "a" + "bc" style aliasing.
        assert_ne!(derive(0, "abc"), derive(0, "ab"));
        assert_ne!(derive_indexed(0, "s", 12), derive_indexed(0, "s1", 2));
    }
}
