//! Identifier newtypes for world entities.
//!
//! A place signature in PMWare is "a set of Cell IDs or a set of WiFi APs or
//! a pair of GPS-coordinates" (§2.1.1); these identifiers are hashable,
//! ordered, and serializable so that signatures can be stored, compared, and
//! shipped through the cloud API as data.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A GSM cell identifier as broadcast by the network (CID).
///
/// Paired with [`Lac`] and [`Plmn`] it forms a globally unique
/// [`CellGlobalId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CellId(pub u32);

/// A GSM location area code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Lac(pub u16);

/// A public land mobile network identity: mobile country code + mobile
/// network code (MCC/MNC), e.g. `404/45` for an Indian operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Plmn {
    /// Mobile country code.
    pub mcc: u16,
    /// Mobile network code.
    pub mnc: u16,
}

/// The globally unique identity of a cell: PLMN + LAC + CID.
///
/// This is what the PMWare mobile service logs every minute (§2.2.2: "tracks
/// GSM-based location information (Cell ID, LAC, MNC and MCC)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellGlobalId {
    /// Operator identity.
    pub plmn: Plmn,
    /// Location area code.
    pub lac: Lac,
    /// Cell identifier within the location area.
    pub cell: CellId,
}

/// Internal index of a tower in a [`World`](crate::World).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TowerId(pub u32);

/// A WiFi access point's MAC-layer identifier (BSSID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Bssid(pub u64);

/// Internal index of an access point in a [`World`](crate::World).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ApId(pub u32);

/// Identifier of a ground-truth place in a [`World`](crate::World).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PlaceId(pub u32);

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cid:{}", self.0)
    }
}

impl fmt::Display for Plmn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{:02}", self.mcc, self.mnc)
    }
}

impl fmt::Display for CellGlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.plmn, self.lac.0, self.cell.0)
    }
}

impl fmt::Display for Bssid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render as a MAC address from the low 48 bits.
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            (b >> 40) & 0xff,
            (b >> 32) & 0xff,
            (b >> 24) & 0xff,
            (b >> 16) & 0xff,
            (b >> 8) & 0xff,
            b & 0xff
        )
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "place:{}", self.0)
    }
}

impl fmt::Display for TowerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tower:{}", self.0)
    }
}

impl fmt::Display for ApId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ap:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn cell_global_id_orders_and_hashes() {
        let a = CellGlobalId {
            plmn: Plmn { mcc: 404, mnc: 45 },
            lac: Lac(100),
            cell: CellId(1),
        };
        let b = CellGlobalId {
            cell: CellId(2),
            ..a
        };
        let set: BTreeSet<_> = [b, a, a].into_iter().collect();
        assert_eq!(set.len(), 2);
        assert!(a < b);
    }

    #[test]
    fn display_formats() {
        let id = CellGlobalId {
            plmn: Plmn { mcc: 404, mnc: 5 },
            lac: Lac(77),
            cell: CellId(4242),
        };
        assert_eq!(id.to_string(), "404-05/77/4242");
        assert_eq!(Bssid(0x0011_2233_4455).to_string(), "00:11:22:33:44:55");
        assert_eq!(PlaceId(3).to_string(), "place:3");
    }

    #[test]
    fn serde_transparency() {
        let json = serde_json::to_string(&CellId(9)).unwrap();
        assert_eq!(json, "9");
        let back: CellId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, CellId(9));
    }
}
