//! Synthetic radio world for the PMWare reproduction.
//!
//! The PMWare paper evaluated its middleware on real phones moving through a
//! real city; this crate replaces that environment with a deterministic,
//! city-scale simulation. A [`World`] holds:
//!
//! * a grid of [GSM cell towers](tower::CellTower) on two network layers
//!   (2G/3G) whose overlapping coverage produces the **oscillation effect**
//!   the paper's GCA algorithm is built to absorb (§2.2.2),
//! * [WiFi access points](wifi::AccessPoint) clustered around places, with a
//!   region-dependent coverage fraction (§1 item 4: ~60 % of a day under
//!   WiFi in urban India vs > 90 % in Switzerland),
//! * [places of interest](place::WorldPlace) (homes, workplaces, markets, …),
//! * a [road graph](roads::RoadGraph) along which agents travel,
//! * and a [radio propagation model](radio::RadioEnvironment) translating a
//!   position into GSM/WiFi/GPS observations with realistic noise.
//!
//! Everything is seeded: the same [`builder::WorldBuilder`] configuration and
//! seed yield an identical world.
//!
//! # Examples
//!
//! ```
//! use pmware_world::builder::{RegionProfile, WorldBuilder};
//!
//! let world = WorldBuilder::new(RegionProfile::urban_india())
//!     .seed(7)
//!     .build();
//! assert!(world.towers().len() > 10);
//! assert!(world.places().len() >= 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod ids;
pub mod intern;
pub mod observation;
pub mod place;
pub mod radio;
pub mod roads;
pub mod seeds;
pub mod time;
pub mod tower;
pub mod wifi;

mod world;

pub use ids::{ApId, Bssid, CellGlobalId, CellId, Lac, PlaceId, Plmn, TowerId};
pub use intern::{Interner, Symbol};
pub use observation::{GpsFix, GsmObservation, MotionState, WifiReading, WifiScan};
pub use place::{PlaceCategory, WorldPlace};
pub use time::{SimDuration, SimTime, Weekday};
pub use world::World;
