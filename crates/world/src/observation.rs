//! Sensor observation types.
//!
//! These are the raw inputs to every discovery algorithm: what a phone's
//! location interfaces report at one instant. The radio model produces them;
//! the device simulator timestamps them; the inference engine consumes them.

use pmware_geo::{GeoPoint, Meters};
use serde::{Deserialize, Serialize};

use crate::ids::{Bssid, CellGlobalId};
use crate::time::SimTime;
use crate::tower::NetworkLayer;

/// One GSM location report: the serving cell and its signal strength.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GsmObservation {
    /// When the modem reported.
    pub time: SimTime,
    /// Serving cell identity (CID, LAC, MNC, MCC — §2.2.2).
    pub cell: CellGlobalId,
    /// Network layer the phone is camped on.
    pub layer: NetworkLayer,
    /// Received signal strength in dBm.
    pub rssi_dbm: f64,
}

/// One access point seen in a WiFi scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WifiReading {
    /// The AP's MAC identifier.
    pub bssid: Bssid,
    /// Received signal strength in dBm.
    pub rssi_dbm: f64,
}

/// The result of one WiFi scan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WifiScan {
    /// When the scan completed.
    pub time: SimTime,
    /// Detected access points, strongest first.
    pub readings: Vec<WifiReading>,
}

impl WifiScan {
    /// The set of BSSIDs in the scan, in reading order.
    pub fn bssids(&self) -> impl Iterator<Item = Bssid> + '_ {
        self.readings.iter().map(|r| r.bssid)
    }

    /// Returns `true` if no access point was detected.
    pub fn is_empty(&self) -> bool {
        self.readings.is_empty()
    }

    /// Number of detected access points.
    pub fn len(&self) -> usize {
        self.readings.len()
    }
}

/// One GPS fix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsFix {
    /// When the fix was obtained.
    pub time: SimTime,
    /// Estimated position (true position + error).
    pub position: GeoPoint,
    /// Reported horizontal accuracy (1-sigma).
    pub accuracy: Meters,
}

/// Coarse motion state from the accelerometer-based activity detector.
///
/// SensLoc-style sensing uses this to gate WiFi scans: "accelerometer based
/// activity detector is used to trigger WiFi-based place discovery" (§2.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MotionState {
    /// No significant movement.
    Stationary,
    /// Walking or otherwise moving.
    Moving,
}

impl MotionState {
    /// Returns `true` when moving.
    pub fn is_moving(self) -> bool {
        matches!(self, MotionState::Moving)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CellId, Lac, Plmn};

    #[test]
    fn wifi_scan_helpers() {
        let scan = WifiScan {
            time: SimTime::from_seconds(10),
            readings: vec![
                WifiReading {
                    bssid: Bssid(1),
                    rssi_dbm: -40.0,
                },
                WifiReading {
                    bssid: Bssid(2),
                    rssi_dbm: -60.0,
                },
            ],
        };
        assert_eq!(scan.len(), 2);
        assert!(!scan.is_empty());
        let ids: Vec<_> = scan.bssids().collect();
        assert_eq!(ids, vec![Bssid(1), Bssid(2)]);
    }

    #[test]
    fn observation_serde_round_trip() {
        let obs = GsmObservation {
            time: SimTime::from_seconds(60),
            cell: CellGlobalId {
                plmn: Plmn { mcc: 404, mnc: 45 },
                lac: Lac(7),
                cell: CellId(1234),
            },
            layer: NetworkLayer::G3,
            rssi_dbm: -71.5,
        };
        let json = serde_json::to_string(&obs).unwrap();
        let back: GsmObservation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, obs);
    }

    #[test]
    fn motion_state() {
        assert!(MotionState::Moving.is_moving());
        assert!(!MotionState::Stationary.is_moving());
    }
}
