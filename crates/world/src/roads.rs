//! Road network for agent travel.
//!
//! Agents move between places along roads rather than straight lines so that
//! routes (§2.1.2) have realistic shapes: shared corridors, turns, and
//! repeatable paths. The graph is undirected with great-circle edge lengths.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pmware_geo::{GeoError, GeoPoint, Meters, Polyline};
use serde::{Deserialize, Serialize};

/// Index of a node in a [`RoadGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub u32);

/// An undirected road network.
///
/// # Examples
///
/// ```
/// use pmware_geo::GeoPoint;
/// use pmware_world::roads::RoadGraph;
///
/// let mut roads = RoadGraph::new();
/// let a = roads.add_node(GeoPoint::new(0.0, 0.0)?);
/// let b = roads.add_node(GeoPoint::new(0.0, 0.01)?);
/// let c = roads.add_node(GeoPoint::new(0.01, 0.01)?);
/// roads.add_edge(a, b);
/// roads.add_edge(b, c);
/// let path = roads.shortest_path(a, c).expect("connected");
/// assert_eq!(path.nodes().len(), 3);
/// # Ok::<(), pmware_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoadGraph {
    nodes: Vec<GeoPoint>,
    adjacency: Vec<Vec<(NodeId, f64)>>,
}

/// A path through the road graph, from source to destination.
#[derive(Debug, Clone, PartialEq)]
pub struct RoadPath {
    nodes: Vec<NodeId>,
    points: Vec<GeoPoint>,
    length: Meters,
}

impl RoadPath {
    /// Node sequence, source first.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Positions of the path's nodes.
    pub fn points(&self) -> &[GeoPoint] {
        &self.points
    }

    /// Total path length.
    pub fn length(&self) -> Meters {
        self.length
    }

    /// The path as a geometric polyline.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::TooFewPoints`] for a degenerate single-node path
    /// (source equals destination).
    pub fn to_polyline(&self) -> Result<Polyline, GeoError> {
        Polyline::new(self.points.clone())
    }
}

impl RoadGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        RoadGraph::default()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Adds a node at `position` and returns its id.
    pub fn add_node(&mut self, position: GeoPoint) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(position);
        self.adjacency.push(Vec::new());
        id
    }

    /// Position of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in this graph.
    pub fn position(&self, node: NodeId) -> GeoPoint {
        self.nodes[node.0 as usize]
    }

    /// Connects two nodes with an undirected edge (length = great-circle
    /// distance). Duplicate edges and self-loops are ignored.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            return;
        }
        let len = self.nodes[a.0 as usize]
            .haversine_distance(self.nodes[b.0 as usize])
            .value();
        if self.adjacency[a.0 as usize].iter().any(|(n, _)| *n == b) {
            return;
        }
        self.adjacency[a.0 as usize].push((b, len));
        self.adjacency[b.0 as usize].push((a, len));
    }

    /// The node closest to `point`, or `None` for an empty graph.
    pub fn nearest_node(&self, point: GeoPoint) -> Option<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = point.equirectangular_distance(**a).value();
                let db = point.equirectangular_distance(**b).value();
                da.partial_cmp(&db).expect("distances are finite")
            })
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Shortest path by Dijkstra's algorithm, or `None` if `to` is
    /// unreachable from `from`.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<RoadPath> {
        let n = self.nodes.len();
        if from.0 as usize >= n || to.0 as usize >= n {
            return None;
        }
        if from == to {
            return Some(RoadPath {
                nodes: vec![from],
                points: vec![self.position(from)],
                length: Meters::ZERO,
            });
        }
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        let mut heap: BinaryHeap<Reverse<(OrderedF64, NodeId)>> = BinaryHeap::new();
        dist[from.0 as usize] = 0.0;
        heap.push(Reverse((OrderedF64(0.0), from)));

        while let Some(Reverse((OrderedF64(d), node))) = heap.pop() {
            if node == to {
                break;
            }
            if d > dist[node.0 as usize] {
                continue;
            }
            for &(next, len) in &self.adjacency[node.0 as usize] {
                let nd = d + len;
                if nd < dist[next.0 as usize] {
                    dist[next.0 as usize] = nd;
                    prev[next.0 as usize] = Some(node);
                    heap.push(Reverse((OrderedF64(nd), next)));
                }
            }
        }

        if dist[to.0 as usize].is_infinite() {
            return None;
        }
        let mut nodes = vec![to];
        let mut cur = to;
        while let Some(p) = prev[cur.0 as usize] {
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        let points: Vec<GeoPoint> = nodes.iter().map(|&id| self.position(id)).collect();
        Some(RoadPath {
            nodes,
            points,
            length: Meters::new(dist[to.0 as usize]),
        })
    }

    /// Route between two arbitrary positions: snap each to its nearest road
    /// node, find the shortest node path, and prepend/append the off-road
    /// stubs. Returns `None` if the graph is empty or disconnected between
    /// the snapped nodes.
    pub fn route_between(&self, from: GeoPoint, to: GeoPoint) -> Option<RoadPath> {
        let a = self.nearest_node(from)?;
        let b = self.nearest_node(to)?;
        let core = self.shortest_path(a, b)?;
        let mut points = Vec::with_capacity(core.points.len() + 2);
        let mut length = core.length;
        if from != core.points[0] {
            length += from.haversine_distance(core.points[0]);
            points.push(from);
        }
        points.extend_from_slice(&core.points);
        if to != *core.points.last().expect("non-empty") {
            length += to.haversine_distance(*core.points.last().expect("non-empty"));
            points.push(to);
        }
        Some(RoadPath {
            nodes: core.nodes,
            points,
            length,
        })
    }
}

/// f64 wrapper with a total order for use in the Dijkstra heap.
/// Distances are always finite and non-negative there.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("heap distances are finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lng: f64) -> GeoPoint {
        GeoPoint::new(lat, lng).unwrap()
    }

    /// A 3×3 street grid, 0.01° (~1.1 km) spacing.
    fn grid() -> (RoadGraph, Vec<NodeId>) {
        let mut g = RoadGraph::new();
        let mut ids = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                ids.push(g.add_node(p(r as f64 * 0.01, c as f64 * 0.01)));
            }
        }
        for r in 0..3 {
            for c in 0..3 {
                let i = r * 3 + c;
                if c + 1 < 3 {
                    g.add_edge(ids[i], ids[i + 1]);
                }
                if r + 1 < 3 {
                    g.add_edge(ids[i], ids[i + 3]);
                }
            }
        }
        (g, ids)
    }

    #[test]
    fn counts() {
        let (g, _) = grid();
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.edge_count(), 12);
    }

    #[test]
    fn duplicate_edges_and_self_loops_ignored() {
        let mut g = RoadGraph::new();
        let a = g.add_node(p(0.0, 0.0));
        let b = g.add_node(p(0.0, 0.01));
        g.add_edge(a, b);
        g.add_edge(a, b);
        g.add_edge(b, a);
        g.add_edge(a, a);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn shortest_path_across_grid_is_manhattan() {
        let (g, ids) = grid();
        let path = g.shortest_path(ids[0], ids[8]).unwrap();
        // 4 edges of ~1112 m each.
        assert!(
            (path.length().value() - 4.0 * 1_112.0).abs() < 20.0,
            "{}",
            path.length()
        );
        assert_eq!(path.nodes().first(), Some(&ids[0]));
        assert_eq!(path.nodes().last(), Some(&ids[8]));
        assert_eq!(path.nodes().len(), 5);
    }

    #[test]
    fn path_to_self_is_trivial() {
        let (g, ids) = grid();
        let path = g.shortest_path(ids[4], ids[4]).unwrap();
        assert_eq!(path.length(), Meters::ZERO);
        assert_eq!(path.nodes(), &[ids[4]]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = RoadGraph::new();
        let a = g.add_node(p(0.0, 0.0));
        let b = g.add_node(p(0.0, 0.01));
        // No edges.
        assert!(g.shortest_path(a, b).is_none());
    }

    #[test]
    fn nearest_node_picks_closest() {
        let (g, ids) = grid();
        let near_center = p(0.0101, 0.0099);
        assert_eq!(g.nearest_node(near_center), Some(ids[4]));
        assert_eq!(RoadGraph::new().nearest_node(near_center), None);
    }

    #[test]
    fn route_between_includes_stubs() {
        let (g, _) = grid();
        let from = p(-0.001, -0.001); // off-grid, nearest node is corner 0
        let to = p(0.021, 0.021); // off-grid, nearest node is corner 8
        let route = g.route_between(from, to).unwrap();
        assert_eq!(route.points().first(), Some(&from));
        assert_eq!(route.points().last(), Some(&to));
        assert!(route.length().value() > 4.0 * 1_100.0);
    }

    #[test]
    fn path_polyline_round_trip() {
        let (g, ids) = grid();
        let path = g.shortest_path(ids[0], ids[2]).unwrap();
        let line = path.to_polyline().unwrap();
        assert_eq!(line.points().len(), path.points().len());
    }
}
