//! Simulation time.
//!
//! All simulated components share a single timeline measured in whole seconds
//! since the simulation epoch, which is defined to be **Monday 00:00**. Using
//! whole seconds keeps event ordering exact and hashable; nothing in the
//! reproduced system needs sub-second resolution (the paper's tightest
//! sampling period is one minute).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// Seconds in a minute.
pub const MINUTE: u64 = 60;
/// Seconds in an hour.
pub const HOUR: u64 = 3_600;
/// Seconds in a day.
pub const DAY: u64 = 86_400;

/// An instant on the simulation timeline (seconds since Monday 00:00).
///
/// # Examples
///
/// ```
/// use pmware_world::{SimTime, SimDuration, Weekday};
///
/// let t = SimTime::from_day_time(1, 9, 30, 0); // Tuesday 09:30
/// assert_eq!(t.weekday(), Weekday::Tuesday);
/// assert_eq!(t.hour_of_day(), 9);
/// let later = t + SimDuration::from_minutes(45);
/// assert_eq!(later.minute_of_hour(), 15);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of simulation time in whole seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

/// Day of the week; the simulation epoch is a Monday.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Weekday {
    /// Day 0, 7, 14, …
    Monday,
    /// Day 1, 8, 15, …
    Tuesday,
    /// Day 2, 9, 16, …
    Wednesday,
    /// Day 3, 10, 17, …
    Thursday,
    /// Day 4, 11, 18, …
    Friday,
    /// Day 5, 12, 19, …
    Saturday,
    /// Day 6, 13, 20, …
    Sunday,
}

impl Weekday {
    /// All weekdays, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Returns `true` for Saturday and Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }
}

impl SimTime {
    /// The simulation epoch: Monday 00:00.
    pub const EPOCH: SimTime = SimTime(0);

    /// Creates a time from raw seconds since the epoch.
    pub const fn from_seconds(seconds: u64) -> Self {
        SimTime(seconds)
    }

    /// Creates a time from a day index and a time of day.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`, `minute >= 60`, or `second >= 60`.
    pub fn from_day_time(day: u64, hour: u64, minute: u64, second: u64) -> Self {
        assert!(hour < 24, "hour {hour} out of range");
        assert!(minute < 60, "minute {minute} out of range");
        assert!(second < 60, "second {second} out of range");
        SimTime(day * DAY + hour * HOUR + minute * MINUTE + second)
    }

    /// Seconds since the epoch.
    pub const fn as_seconds(self) -> u64 {
        self.0
    }

    /// Day index since the epoch (day 0 is a Monday).
    pub const fn day(self) -> u64 {
        self.0 / DAY
    }

    /// Seconds elapsed since this day's midnight.
    pub const fn seconds_of_day(self) -> u64 {
        self.0 % DAY
    }

    /// Hour of day, `0..24`.
    pub const fn hour_of_day(self) -> u64 {
        self.seconds_of_day() / HOUR
    }

    /// Minute of hour, `0..60`.
    pub const fn minute_of_hour(self) -> u64 {
        (self.seconds_of_day() % HOUR) / MINUTE
    }

    /// Day of the week.
    pub fn weekday(self) -> Weekday {
        Weekday::ALL[(self.day() % 7) as usize]
    }

    /// Midnight of the day this instant falls on.
    pub const fn midnight(self) -> SimTime {
        SimTime(self.day() * DAY)
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole seconds.
    pub const fn from_seconds(seconds: u64) -> Self {
        SimDuration(seconds)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_minutes(minutes: u64) -> Self {
        SimDuration(minutes * MINUTE)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * HOUR)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * DAY)
    }

    /// The duration in whole seconds.
    pub const fn as_seconds(self) -> u64 {
        self.0
    }

    /// The duration in fractional minutes.
    pub fn as_minutes_f64(self) -> f64 {
        self.0 as f64 / MINUTE as f64
    }

    /// The duration in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / HOUR as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a scalar, rounding to whole seconds.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor).round().max(0.0) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

use std::iter::Sum;

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "day {} {:02}:{:02}:{:02}",
            self.day(),
            self.hour_of_day(),
            self.minute_of_hour(),
            self.seconds_of_day() % MINUTE
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s < MINUTE {
            write!(f, "{s}s")
        } else if s < HOUR {
            write!(f, "{}m{:02}s", s / MINUTE, s % MINUTE)
        } else {
            write!(f, "{}h{:02}m", s / HOUR, (s % HOUR) / MINUTE)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monday_midnight() {
        assert_eq!(SimTime::EPOCH.weekday(), Weekday::Monday);
        assert_eq!(SimTime::EPOCH.hour_of_day(), 0);
        assert_eq!(SimTime::EPOCH.day(), 0);
    }

    #[test]
    fn day_time_decomposition() {
        let t = SimTime::from_day_time(3, 14, 45, 30);
        assert_eq!(t.day(), 3);
        assert_eq!(t.weekday(), Weekday::Thursday);
        assert_eq!(t.hour_of_day(), 14);
        assert_eq!(t.minute_of_hour(), 45);
        assert_eq!(t.seconds_of_day() % 60, 30);
    }

    #[test]
    #[should_panic(expected = "hour 24 out of range")]
    fn from_day_time_rejects_bad_hour() {
        let _ = SimTime::from_day_time(0, 24, 0, 0);
    }

    #[test]
    fn weekday_cycles_weekly() {
        for day in 0..21 {
            let t = SimTime::from_day_time(day, 12, 0, 0);
            assert_eq!(t.weekday(), Weekday::ALL[(day % 7) as usize]);
        }
        assert!(SimTime::from_day_time(5, 0, 0, 0).weekday().is_weekend());
        assert!(SimTime::from_day_time(6, 0, 0, 0).weekday().is_weekend());
        assert!(!SimTime::from_day_time(7, 0, 0, 0).weekday().is_weekend());
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_day_time(0, 23, 30, 0);
        let later = t + SimDuration::from_hours(1);
        assert_eq!(later.day(), 1);
        assert_eq!(later.hour_of_day(), 0);
        assert_eq!(later - t, SimDuration::from_hours(1));
        // Saturating subtraction below epoch.
        assert_eq!(SimTime::EPOCH - SimDuration::from_hours(5), SimTime::EPOCH);
        assert_eq!(t - later, SimDuration::ZERO);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_seconds(100);
        let b = SimTime::from_seconds(300);
        assert_eq!(b.since(a).as_seconds(), 200);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_minutes(2).as_seconds(), 120);
        assert_eq!(SimDuration::from_hours(1).as_minutes_f64(), 60.0);
        assert_eq!(SimDuration::from_days(2).as_hours_f64(), 48.0);
        assert_eq!(SimDuration::from_seconds(90).mul_f64(2.0).as_seconds(), 180);
        assert_eq!(
            SimDuration::from_seconds(10).saturating_sub(SimDuration::from_seconds(20)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_minutes).sum();
        assert_eq!(total, SimDuration::from_minutes(10));
    }

    #[test]
    fn midnight_truncates() {
        let t = SimTime::from_day_time(5, 17, 3, 9);
        assert_eq!(t.midnight(), SimTime::from_day_time(5, 0, 0, 0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            SimTime::from_day_time(2, 9, 5, 7).to_string(),
            "day 2 09:05:07"
        );
        assert_eq!(SimDuration::from_seconds(45).to_string(), "45s");
        assert_eq!(SimDuration::from_seconds(125).to_string(), "2m05s");
        assert_eq!(SimDuration::from_seconds(3_720).to_string(), "1h02m");
    }

    #[test]
    fn ordering_and_hashing_derives() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(SimTime::from_seconds(5));
        set.insert(SimTime::from_seconds(5));
        assert_eq!(set.len(), 1);
        assert!(SimTime::from_seconds(1) < SimTime::from_seconds(2));
    }
}
