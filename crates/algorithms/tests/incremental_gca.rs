//! Equivalence of [`IncrementalGca`] with batch [`gca::discover_places`]:
//! absorbing a stream in arbitrary chunks must yield a **bit-identical**
//! `GcaOutput` (places, signatures, visit timestamps, movement graph) to
//! a single batch pass over the concatenation.

use pmware_algorithms::gca::{self, GcaConfig, IncrementalGca};
use pmware_world::tower::NetworkLayer;
use pmware_world::{CellGlobalId, CellId, GsmObservation, Lac, Plmn, SimTime};
use proptest::prelude::*;

fn cell(id: u32) -> CellGlobalId {
    CellGlobalId {
        plmn: Plmn { mcc: 404, mnc: 45 },
        lac: Lac(1),
        cell: CellId(id),
    }
}

fn obs(minute: u64, id: u32) -> GsmObservation {
    GsmObservation {
        time: SimTime::from_seconds(minute * 60),
        cell: cell(id),
        layer: NetworkLayer::G2,
        rssi_dbm: -70.0,
    }
}

/// Absorbs `stream` in the chunk sizes given by `splits` (cumulative cut
/// points) and asserts both the running view and the final output equal
/// batch discovery over the prefix/whole stream.
fn assert_equivalent_at_splits(stream: &[GsmObservation], cuts: &[usize], config: &GcaConfig) {
    let mut engine = IncrementalGca::new(config.clone());
    let mut fed = 0;
    for &cut in cuts {
        let cut = cut.min(stream.len());
        if cut < fed {
            continue;
        }
        engine.absorb(&stream[fed..cut]);
        fed = cut;
        let batch = gca::discover_places(&stream[..fed], config);
        assert_eq!(
            engine.places(),
            batch,
            "incremental view diverged from batch after {fed} observations"
        );
    }
    engine.absorb(&stream[fed..]);
    assert_eq!(engine.observation_count(), stream.len());
    assert_eq!(engine.finish(), gca::discover_places(stream, config));
}

/// Random walk over a small cell alphabet: plenty of bounces, cluster
/// merges, and qualifying runs.
fn cell_stream() -> impl Strategy<Value = Vec<GsmObservation>> {
    prop::collection::vec(0u32..10, 10..300).prop_map(|ids| {
        ids.into_iter()
            .enumerate()
            .map(|(m, id)| obs(m as u64, id))
            .collect()
    })
}

/// A stream with occasional large time gaps so max-gap run breaks and the
/// dwell clamp are exercised, not just contiguous sampling.
fn gappy_stream() -> impl Strategy<Value = Vec<GsmObservation>> {
    prop::collection::vec((0u32..8, 0u32..100), 10..200).prop_map(|steps| {
        let mut minute = 0u64;
        steps
            .into_iter()
            .map(|(id, jump)| {
                minute += if jump < 12 { 45 } else { 1 };
                obs(minute, id)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_equals_batch_at_one_random_split(
        stream in cell_stream(),
        frac in 0.0..1.0f64,
    ) {
        let cut = (stream.len() as f64 * frac) as usize;
        assert_equivalent_at_splits(&stream, &[cut], &GcaConfig::default());
    }

    #[test]
    fn incremental_equals_batch_at_many_splits(
        stream in cell_stream(),
        mut cuts in prop::collection::vec(0usize..300, 1..8),
    ) {
        cuts.sort_unstable();
        assert_equivalent_at_splits(&stream, &cuts, &GcaConfig::default());
    }

    #[test]
    fn incremental_equals_batch_with_gaps(
        stream in gappy_stream(),
        frac in 0.0..1.0f64,
    ) {
        let cut = (stream.len() as f64 * frac) as usize;
        assert_equivalent_at_splits(&stream, &[cut], &GcaConfig::default());
    }

    #[test]
    fn observation_at_a_time_equals_batch(stream in cell_stream()) {
        // The most hostile chunking: every absorb is a single observation,
        // so every tail-window and partition-crossing path fires.
        let mut engine = IncrementalGca::new(GcaConfig::default());
        for o in &stream {
            engine.absorb(std::slice::from_ref(o));
        }
        prop_assert_eq!(engine.finish(), gca::discover_places(&stream, &GcaConfig::default()));
    }
}

#[test]
fn oscillation_run_straddling_the_split_is_one_visit() {
    // 40 minutes of A↔B oscillation split down the middle: the open run
    // must survive the split and come out as one qualifying visit.
    let stream: Vec<GsmObservation> = (0..40)
        .map(|m| obs(m, if m % 3 == 1 { 2 } else { 1 }))
        .collect();
    let config = GcaConfig::default();
    assert_equivalent_at_splits(&stream, &[20], &config);

    let mut engine = IncrementalGca::new(config.clone());
    engine.absorb(&stream[..20]);
    engine.absorb(&stream[20..]);
    let out = engine.finish();
    assert_eq!(out.places.len(), 1);
    assert_eq!(out.places[0].visits.len(), 1);
    assert_eq!(out.places[0].visits[0].arrival, SimTime::from_seconds(0));
}

#[test]
fn late_bounce_merges_clusters_retroactively() {
    // Phase 1: dwell in {1,2} (bouncing) then in {3,4} (bouncing) — two
    // separate places. Phase 2: a bounce pattern 2→3→2 crosses the
    // threshold and merges both clusters into one component, which must
    // retroactively relabel the earlier runs exactly as a batch pass does.
    let mut stream = Vec::new();
    for m in 0..30u64 {
        stream.push(obs(m, if m % 3 == 1 { 2 } else { 1 }));
    }
    for m in 30..60u64 {
        stream.push(obs(m, if m % 3 == 1 { 4 } else { 3 }));
    }
    for m in 60..90u64 {
        stream.push(obs(m, if m % 2 == 1 { 3 } else { 2 }));
    }
    let config = GcaConfig::default();
    // Split inside phase 2 so the merge happens across an absorb boundary.
    assert_equivalent_at_splits(&stream, &[45, 65, 70], &config);
}

#[test]
fn max_gap_break_straddling_the_split() {
    // A qualifying run, a 45-minute silence exactly at the split, then a
    // second qualifying run at the same place: must equal batch (two
    // visits, not one glued across the gap).
    let mut stream: Vec<GsmObservation> = (0..20)
        .map(|m| obs(m, if m % 3 == 1 { 2 } else { 1 }))
        .collect();
    let resume = 20 + 45;
    stream.extend((0..20).map(|m| obs(resume + m, if m % 3 == 1 { 2 } else { 1 })));
    let config = GcaConfig::default();
    assert_equivalent_at_splits(&stream, &[20], &config);

    let mut engine = IncrementalGca::new(config.clone());
    engine.absorb(&stream);
    let out = engine.finish();
    assert_eq!(out.places.len(), 1);
    assert_eq!(out.places[0].visits.len(), 2);
}

#[test]
fn empty_absorbs_are_harmless() {
    let stream: Vec<GsmObservation> = (0..40)
        .map(|m| obs(m, if m % 3 == 1 { 2 } else { 1 }))
        .collect();
    let config = GcaConfig::default();
    let mut engine = IncrementalGca::new(config.clone());
    engine.absorb(&[]);
    assert!(engine.is_empty());
    assert_eq!(engine.places(), gca::discover_places(&[], &config));
    engine.absorb(&stream);
    engine.absorb(&[]);
    assert_eq!(engine.finish(), gca::discover_places(&stream, &config));
}

#[test]
fn graph_matches_batch_movement_graph() {
    let stream: Vec<GsmObservation> = (0..120)
        .map(|m| obs(m, [1, 2, 1, 3, 4, 3][(m % 6) as usize]))
        .collect();
    let config = GcaConfig::default();
    let mut engine = IncrementalGca::new(config.clone());
    for chunk in stream.chunks(7) {
        engine.absorb(chunk);
    }
    let batch = gca::MovementGraph::build(&stream, &config);
    assert_eq!(engine.graph(), &batch);
    assert_eq!(
        engine.graph().edge_weight(cell(1), cell(2)),
        batch.edge_weight(cell(1), cell(2))
    );
}

#[test]
fn zero_min_bounce_weight_still_matches_batch() {
    // Threshold 0 means a single bounce qualifies an edge; the crossing
    // detector must treat the first occurrence as the crossing.
    let config = GcaConfig {
        min_bounce_weight: 0,
        ..GcaConfig::default()
    };
    let stream: Vec<GsmObservation> = (0..50)
        .map(|m| obs(m, [1, 2, 1, 1, 3][(m % 5) as usize]))
        .collect();
    assert_equivalent_at_splits(&stream, &[1, 2, 3, 10, 30], &config);
}

#[test]
fn dwell_clamp_over_long_gaps_matches_batch() {
    // Dwell attribution clamps inter-sample gaps at max_sample_gap; make
    // sure the incremental accounting applies the same clamp.
    let config = GcaConfig::default();
    let mut stream = Vec::new();
    let mut minute = 0;
    for rep in 0..12u64 {
        for m in 0..10u64 {
            stream.push(obs(minute + m, if m % 3 == 1 { 2 } else { 1 }));
        }
        minute += 10 + 30 * (rep % 2);
    }
    assert_equivalent_at_splits(&stream, &[17, 55, 90], &config);
}

#[test]
#[should_panic(expected = "suffix must not start before")]
#[cfg(debug_assertions)]
fn out_of_order_absorb_panics_in_debug() {
    let mut engine = IncrementalGca::new(GcaConfig::default());
    engine.absorb(&[obs(10, 1)]);
    engine.absorb(&[obs(5, 1)]);
}
