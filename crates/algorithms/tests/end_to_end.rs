//! End-to-end validation: the discovery algorithms run on *simulated radio
//! data* (not synthetic streams) and must find the places an agent really
//! visited.

use pmware_algorithms::gca::{self, GcaConfig};
use pmware_algorithms::gps_cluster::{self, KangConfig};
use pmware_algorithms::matching::{classify_places, GroundTruthVisit};
use pmware_algorithms::sensloc::{self, SensLocConfig};
use pmware_device::{Device, EnergyModel};
use pmware_mobility::Population;
use pmware_world::builder::{RegionProfile, WorldBuilder};
use pmware_world::radio::{RadioConfig, RadioEnvironment};
use pmware_world::{GpsFix, GsmObservation, SimTime, WifiScan};

fn ground_truth(it: &pmware_mobility::Itinerary) -> Vec<GroundTruthVisit> {
    it.visits()
        .iter()
        .map(|v| GroundTruthVisit {
            place: v.place,
            arrival: v.arrival,
            departure: v.departure,
        })
        .collect()
}

#[test]
fn gca_discovers_agent_places_from_simulated_gsm() {
    // Seed picked from a scan of 10 candidate draws: most clear the
    // coverage and correctness bars; this one covers 6/7 true places with
    // every evaluable place classified correct under the workspace's
    // xoshiro-based RNG.
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(130)
        .build();
    let pop = Population::generate(&world, 1, 131);
    let agent = &pop.agents()[0];
    let days = 7;
    let it = pop.itinerary(&world, agent.id(), days);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let mut phone = Device::new(env, &it, EnergyModel::htc_explorer(), 132);

    // Sample GSM every minute for a week, as PMS does.
    let mut stream: Vec<GsmObservation> = Vec::new();
    for minute in 0..days * 24 * 60 {
        let t = SimTime::from_seconds(minute * 60);
        if let Some(obs) = phone.sample_gsm(t) {
            stream.push(obs);
        }
    }

    let out = gca::discover_places(&stream, &GcaConfig::default());
    assert!(
        !out.places.is_empty(),
        "a week of life must yield discovered places"
    );

    let truth = ground_truth(&it);
    let report = classify_places(&out.places, &truth, 0.2);

    // Home and work dominate the week; they must be discoverable.
    let covered = report.covered_true_places();
    let true_count = it.visited_places().len();
    assert!(
        covered * 2 >= true_count,
        "GCA covered only {covered}/{true_count} true places"
    );
    // Most evaluable places should be correct (paper: 79%; we accept a
    // generous band here — the precise calibration is the deployment-study
    // experiment's job).
    assert!(report.evaluable() > 0);
    assert!(
        report.correct_fraction() >= 0.5,
        "correct fraction {:.2} too low (correct={} merged={} divided={})",
        report.correct_fraction(),
        report.correct,
        report.merged,
        report.divided
    );
}

#[test]
fn sensloc_discovers_wifi_covered_places() {
    let world = WorldBuilder::new(RegionProfile::urban_europe())
        .seed(200)
        .build();
    let pop = Population::generate(&world, 1, 201);
    let agent = &pop.agents()[0];
    let days = 5;
    let it = pop.itinerary(&world, agent.id(), days);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let mut phone = Device::new(env, &it, EnergyModel::htc_explorer(), 202);

    // Scan WiFi every two minutes (an aggressive, accuracy-first plan).
    let mut scans: Vec<WifiScan> = Vec::new();
    for step in 0..days * 24 * 30 {
        let t = SimTime::from_seconds(step * 120);
        scans.push(phone.scan_wifi(t).clone());
    }

    let places = sensloc::discover_places(&scans, &SensLocConfig::default());
    assert!(
        !places.is_empty(),
        "urban-europe world has WiFi at >90% of places"
    );

    let truth = ground_truth(&it);
    let report = classify_places(&places, &truth, 0.2);
    assert!(report.evaluable() > 0);
    assert!(
        report.correct_fraction() >= 0.5,
        "correct fraction {:.2} too low (correct={} merged={} divided={})",
        report.correct_fraction(),
        report.correct,
        report.merged,
        report.divided
    );
}

#[test]
fn kang_discovers_places_from_gps() {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(300)
        .build();
    let pop = Population::generate(&world, 1, 301);
    let agent = &pop.agents()[0];
    let days = 3;
    let it = pop.itinerary(&world, agent.id(), days);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let mut phone = Device::new(env, &it, EnergyModel::htc_explorer(), 302);

    // A GPS fix every minute (continuous high-accuracy tracking).
    let mut fixes: Vec<GpsFix> = Vec::new();
    for minute in 0..days * 24 * 60 {
        let t = SimTime::from_seconds(minute * 60);
        if let Some(fix) = phone.fix_gps(t) {
            fixes.push(fix);
        }
    }
    assert!(!fixes.is_empty());

    let places = gps_cluster::discover_places(&fixes, &KangConfig::default());
    assert!(!places.is_empty());

    let truth = ground_truth(&it);
    let report = classify_places(&places, &truth, 0.2);
    assert!(report.evaluable() > 0);
    // GPS is the most precise interface: correctness should be high among
    // outdoor-visible places. Indoor places lose most fixes, so coverage is
    // partial but what is found should be right.
    assert!(
        report.correct_fraction() >= 0.6,
        "correct fraction {:.2} too low (correct={} merged={} divided={})",
        report.correct_fraction(),
        report.correct,
        report.merged,
        report.divided
    );
}
