//! Property-based tests for the discovery algorithms' invariants.

use std::collections::BTreeSet;

use pmware_algorithms::gca::{self, GcaConfig, MovementGraph};
use pmware_algorithms::gps_cluster::{self, KangConfig};
use pmware_algorithms::matching::{classify_places, GroundTruthVisit, MatchOutcome};
use pmware_algorithms::route::{route_similarity, RouteGeometry};
use pmware_algorithms::sensloc::tanimoto;
use pmware_algorithms::signature::{
    DiscoveredPlace, DiscoveredPlaceId, DiscoveredVisit, PlaceSignature,
};
use pmware_geo::{GeoPoint, Meters};
use pmware_world::tower::NetworkLayer;
use pmware_world::{
    Bssid, CellGlobalId, CellId, GpsFix, GsmObservation, Lac, PlaceId, Plmn, SimTime,
};
use proptest::prelude::*;

fn cell(id: u32) -> CellGlobalId {
    CellGlobalId {
        plmn: Plmn { mcc: 404, mnc: 45 },
        lac: Lac(1),
        cell: CellId(id),
    }
}

fn obs(minute: u64, id: u32) -> GsmObservation {
    GsmObservation {
        time: SimTime::from_seconds(minute * 60),
        cell: cell(id),
        layer: NetworkLayer::G2,
        rssi_dbm: -70.0,
    }
}

/// Strategy: a random walk of cell ids — arbitrary soup of stays/travel.
fn cell_stream() -> impl Strategy<Value = Vec<GsmObservation>> {
    prop::collection::vec(0u32..12, 10..400).prop_map(|ids| {
        ids.into_iter()
            .enumerate()
            .map(|(m, id)| obs(m as u64, id))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gca_clusters_are_disjoint_and_signatures_bounded(stream in cell_stream()) {
        let config = GcaConfig::default();
        let out = gca::discover_places(&stream, &config);
        let mut seen: BTreeSet<CellGlobalId> = BTreeSet::new();
        for place in &out.places {
            let PlaceSignature::Cells(cells) = &place.signature else {
                panic!("GCA emits cell signatures");
            };
            prop_assert!(!cells.is_empty());
            prop_assert!(cells.len() <= config.max_signature_cells);
            for c in cells {
                prop_assert!(seen.insert(*c), "cell {c} in two signatures");
            }
            // Visits well-formed, ordered, long enough.
            for v in &place.visits {
                prop_assert!(v.arrival <= v.departure);
                prop_assert!(v.duration() >= config.min_stay);
            }
            for w in place.visits.windows(2) {
                prop_assert!(w[0].departure <= w[1].arrival);
            }
        }
    }

    #[test]
    fn movement_graph_weights_bounded_by_stream(stream in cell_stream()) {
        let config = GcaConfig::default();
        let graph = MovementGraph::build(&stream, &config);
        // Total bounce weight can never exceed the number of triples.
        let total: u32 = (0..12u32)
            .flat_map(|a| (a + 1..12).map(move |b| (a, b)))
            .map(|(a, b)| graph.edge_weight(cell(a), cell(b)))
            .sum();
        prop_assert!(total as usize <= stream.len().saturating_sub(2));
    }

    #[test]
    fn tanimoto_properties(
        a in prop::collection::btree_set(0u64..40, 0..15),
        b in prop::collection::btree_set(0u64..40, 0..15),
    ) {
        let sa: BTreeSet<Bssid> = a.iter().map(|&x| Bssid(x)).collect();
        let sb: BTreeSet<Bssid> = b.iter().map(|&x| Bssid(x)).collect();
        let t = tanimoto(&sa, &sb);
        prop_assert!((0.0..=1.0).contains(&t));
        prop_assert_eq!(t, tanimoto(&sb, &sa));
        if !sa.is_empty() {
            prop_assert_eq!(tanimoto(&sa, &sa), 1.0);
        }
        if sa.is_disjoint(&sb) {
            prop_assert_eq!(t, 0.0);
        }
    }

    #[test]
    fn kang_visits_are_ordered_and_centroids_enclosed(
        offsets in prop::collection::vec((0.0..360.0f64, 0.0..80.0f64), 20..120),
    ) {
        let base = GeoPoint::new(12.97, 77.59).unwrap();
        let fixes: Vec<GpsFix> = offsets
            .iter()
            .enumerate()
            .map(|(m, (bearing, dist))| GpsFix {
                time: SimTime::from_seconds(m as u64 * 60),
                position: base.destination(*bearing, Meters::new(*dist)),
                accuracy: Meters::new(6.0),
            })
            .collect();
        let places = gps_cluster::discover_places(&fixes, &KangConfig::default());
        for place in &places {
            let PlaceSignature::Coordinates { center, .. } = place.signature else {
                panic!("kang emits coordinates");
            };
            // All fixes are within 80 m of base; the centroid must be too
            // (it is a mean of a subset).
            prop_assert!(base.equirectangular_distance(center).value() <= 81.0);
            for w in place.visits.windows(2) {
                prop_assert!(w[0].departure <= w[1].arrival);
            }
        }
        // Everything is one tight blob: at most one place comes out.
        prop_assert!(places.len() <= 1);
    }

    #[test]
    fn route_similarity_bounds_and_symmetry(
        a in prop::collection::vec(0u32..20, 1..25),
        b in prop::collection::vec(0u32..20, 1..25),
    ) {
        let ra = RouteGeometry::CellSequence(a.iter().map(|&i| cell(i)).collect());
        let rb = RouteGeometry::CellSequence(b.iter().map(|&i| cell(i)).collect());
        let s = route_similarity(&ra, &rb);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - route_similarity(&rb, &ra)).abs() < 1e-12);
        prop_assert!((route_similarity(&ra, &ra) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matching_outcomes_partition_places(
        visits in prop::collection::vec((0u64..200, 1u64..40), 1..12),
        gt in prop::collection::vec((0u32..6, 0u64..200, 1u64..40), 1..12),
    ) {
        let discovered: Vec<DiscoveredPlace> = visits
            .iter()
            .enumerate()
            .map(|(i, &(start, len))| {
                DiscoveredPlace::new(
                    DiscoveredPlaceId(i as u32),
                    PlaceSignature::WifiAps(BTreeSet::new()),
                    vec![DiscoveredVisit {
                        arrival: SimTime::from_seconds(start * 60),
                        departure: SimTime::from_seconds((start + len) * 60),
                    }],
                )
            })
            .collect();
        let truth: Vec<GroundTruthVisit> = gt
            .iter()
            .map(|&(p, start, len)| GroundTruthVisit {
                place: PlaceId(p),
                arrival: SimTime::from_seconds(start * 60),
                departure: SimTime::from_seconds((start + len) * 60),
            })
            .collect();
        let report = classify_places(&discovered, &truth, 0.2);
        // Counts partition the discovered set.
        prop_assert_eq!(
            report.correct + report.merged + report.divided + report.no_match,
            discovered.len()
        );
        prop_assert_eq!(report.matches.len(), discovered.len());
        // Per-place outcomes agree with the aggregate counts.
        let correct = report
            .matches
            .iter()
            .filter(|m| m.outcome == MatchOutcome::Correct)
            .count();
        prop_assert_eq!(correct, report.correct);
        // Fractions are probabilities.
        for f in [
            report.correct_fraction(),
            report.merged_fraction(),
            report.divided_fraction(),
        ] {
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn gca_is_insensitive_to_trailing_silence(stream in cell_stream()) {
        // Appending a long gap then one observation must not corrupt
        // earlier places (runs are split across big gaps).
        let config = GcaConfig::default();
        let base = gca::discover_places(&stream, &config);
        let mut extended = stream.clone();
        let last = stream.last().unwrap().time;
        extended.push(GsmObservation {
            time: last + pmware_world::SimDuration::from_hours(10),
            cell: cell(99),
            layer: NetworkLayer::G2,
            rssi_dbm: -70.0,
        });
        let ext = gca::discover_places(&extended, &config);
        prop_assert!(ext.places.len() >= base.places.len());
    }
}
