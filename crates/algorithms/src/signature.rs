//! Place signatures and discovered places.
//!
//! §2.1.1 of the paper: *"each place is uniquely identified by a signature
//! which is combination of a set of Cell IDs or a set of WiFi APs or a pair
//! of GPS-coordinates"*. [`PlaceSignature`] is exactly that sum type.

use std::collections::BTreeSet;

use pmware_geo::{GeoPoint, Meters};
use pmware_world::{Bssid, CellGlobalId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The identity of a discovered place, unique within one discovery run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DiscoveredPlaceId(pub u32);

impl std::fmt::Display for DiscoveredPlaceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "discovered:{}", self.0)
    }
}

/// A place signature: how a place is recognised on future visits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlaceSignature {
    /// A set of GSM cell identities (GCA output):
    /// `P = {c1, c2, c3, c4, c5}`.
    Cells(BTreeSet<CellGlobalId>),
    /// A set of WiFi access points (SensLoc output):
    /// `P = {w1, w2, w3, w4}`.
    WifiAps(BTreeSet<Bssid>),
    /// A GPS coordinate pair with an effective radius (Kang et al. output):
    /// `P = {latitude, longitude}`.
    Coordinates {
        /// Cluster centroid.
        center: GeoPoint,
        /// Cluster radius.
        radius: Meters,
    },
}

impl PlaceSignature {
    /// Short description of the signature kind.
    pub fn kind(&self) -> &'static str {
        match self {
            PlaceSignature::Cells(_) => "gsm-cells",
            PlaceSignature::WifiAps(_) => "wifi-aps",
            PlaceSignature::Coordinates { .. } => "gps-coordinates",
        }
    }

    /// Number of elements in a set signature (1 for coordinates).
    pub fn len(&self) -> usize {
        match self {
            PlaceSignature::Cells(c) => c.len(),
            PlaceSignature::WifiAps(w) => w.len(),
            PlaceSignature::Coordinates { .. } => 1,
        }
    }

    /// Returns `true` for an empty set signature.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One detected stay at a discovered place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiscoveredVisit {
    /// Detected arrival.
    pub arrival: SimTime,
    /// Detected departure.
    pub departure: SimTime,
}

impl DiscoveredVisit {
    /// Stay length.
    pub fn duration(&self) -> SimDuration {
        self.departure.since(self.arrival)
    }

    /// Midpoint of the stay, used when aligning against ground truth.
    pub fn midpoint(&self) -> SimTime {
        SimTime::from_seconds((self.arrival.as_seconds() + self.departure.as_seconds()) / 2)
    }
}

/// A place discovered by any of the algorithms, with its visit history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveredPlace {
    /// Run-local identifier.
    pub id: DiscoveredPlaceId,
    /// Recognition signature.
    pub signature: PlaceSignature,
    /// Detected stays, in time order.
    pub visits: Vec<DiscoveredVisit>,
    /// Optional semantic label provided by the user (§2.2.5).
    pub label: Option<String>,
}

impl DiscoveredPlace {
    /// Creates a discovered place.
    pub fn new(
        id: DiscoveredPlaceId,
        signature: PlaceSignature,
        visits: Vec<DiscoveredVisit>,
    ) -> Self {
        DiscoveredPlace {
            id,
            signature,
            visits,
            label: None,
        }
    }

    /// Total time spent at the place across all visits.
    pub fn total_stay(&self) -> SimDuration {
        self.visits.iter().map(|v| v.duration()).sum()
    }

    /// First detected arrival, if any visit exists.
    pub fn first_seen(&self) -> Option<SimTime> {
        self.visits.first().map(|v| v.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmware_world::{CellId, Lac, Plmn};

    fn cell(id: u32) -> CellGlobalId {
        CellGlobalId {
            plmn: Plmn { mcc: 404, mnc: 45 },
            lac: Lac(1),
            cell: CellId(id),
        }
    }

    #[test]
    fn signature_kinds() {
        let cells = PlaceSignature::Cells([cell(1), cell(2)].into_iter().collect());
        assert_eq!(cells.kind(), "gsm-cells");
        assert_eq!(cells.len(), 2);
        assert!(!cells.is_empty());

        let empty = PlaceSignature::WifiAps(BTreeSet::new());
        assert!(empty.is_empty());

        let coord = PlaceSignature::Coordinates {
            center: GeoPoint::new(1.0, 2.0).unwrap(),
            radius: Meters::new(100.0),
        };
        assert_eq!(coord.kind(), "gps-coordinates");
        assert_eq!(coord.len(), 1);
    }

    #[test]
    fn visit_duration_and_midpoint() {
        let v = DiscoveredVisit {
            arrival: SimTime::from_seconds(100),
            departure: SimTime::from_seconds(500),
        };
        assert_eq!(v.duration(), SimDuration::from_seconds(400));
        assert_eq!(v.midpoint(), SimTime::from_seconds(300));
    }

    #[test]
    fn place_totals() {
        let place = DiscoveredPlace::new(
            DiscoveredPlaceId(0),
            PlaceSignature::Cells([cell(1)].into_iter().collect()),
            vec![
                DiscoveredVisit {
                    arrival: SimTime::from_seconds(0),
                    departure: SimTime::from_seconds(600),
                },
                DiscoveredVisit {
                    arrival: SimTime::from_seconds(1_000),
                    departure: SimTime::from_seconds(1_300),
                },
            ],
        );
        assert_eq!(place.total_stay(), SimDuration::from_seconds(900));
        assert_eq!(place.first_seen(), Some(SimTime::from_seconds(0)));
        assert!(place.label.is_none());
    }

    #[test]
    fn serde_round_trip() {
        let place = DiscoveredPlace::new(
            DiscoveredPlaceId(7),
            PlaceSignature::WifiAps([Bssid(1), Bssid(2)].into_iter().collect()),
            vec![],
        );
        let json = serde_json::to_string(&place).unwrap();
        let back: DiscoveredPlace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, place);
    }
}
