//! Kang et al. time-based clustering of GPS coordinates.
//!
//! §2.2.2 / §5 of the paper: *"Kang et al. designed a clustering algorithm
//! to find places using GPS coordinates based on temporal and spatial stay
//! threshold."* (Kang, Welbourne, Stewart, Borriello — WMASH 2004.)
//!
//! The algorithm is a single pass over the fix stream:
//!
//! * keep a current cluster with a running centroid;
//! * a fix within `distance_threshold` of the centroid joins the cluster;
//! * a fix outside it *pends*; a second consecutive outside fix closes the
//!   cluster (single outliers are discarded as GPS noise, per the original
//!   paper's "pending" buffer);
//! * a closed cluster whose time span is at least `time_threshold` becomes
//!   a place; closed clusters are merged with previously discovered places
//!   whose centroids are within `merge_distance`.

use pmware_geo::{GeoPoint, Meters};
use pmware_world::{GpsFix, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::signature::{DiscoveredPlace, DiscoveredPlaceId, DiscoveredVisit, PlaceSignature};

/// Tunable parameters of the Kang et al. clustering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KangConfig {
    /// Maximum distance from the running centroid to join the cluster.
    pub distance_threshold: Meters,
    /// Minimum cluster time span to qualify as a place.
    pub time_threshold: SimDuration,
    /// Distance under which a new cluster merges into an existing place.
    pub merge_distance: Meters,
}

impl Default for KangConfig {
    fn default() -> Self {
        KangConfig {
            distance_threshold: Meters::new(120.0),
            time_threshold: SimDuration::from_minutes(10),
            merge_distance: Meters::new(120.0),
        }
    }
}

#[derive(Debug, Clone)]
struct Cluster {
    sum_lat: f64,
    sum_lng: f64,
    count: usize,
    start: SimTime,
    end: SimTime,
    max_radius: f64,
}

impl Cluster {
    fn new(fix: &GpsFix) -> Cluster {
        Cluster {
            sum_lat: fix.position.latitude(),
            sum_lng: fix.position.longitude(),
            count: 1,
            start: fix.time,
            end: fix.time,
            max_radius: 0.0,
        }
    }

    fn centroid(&self) -> GeoPoint {
        GeoPoint::new(
            self.sum_lat / self.count as f64,
            self.sum_lng / self.count as f64,
        )
        .expect("mean of valid coordinates is valid")
    }

    fn add(&mut self, fix: &GpsFix) {
        self.sum_lat += fix.position.latitude();
        self.sum_lng += fix.position.longitude();
        self.count += 1;
        self.end = fix.time;
        let d = self
            .centroid()
            .equirectangular_distance(fix.position)
            .value();
        self.max_radius = self.max_radius.max(d);
    }

    fn span(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Runs the clustering over a time-ordered GPS fix stream.
///
/// # Panics
///
/// Panics in debug builds if `fixes` is not time-ordered.
pub fn discover_places(fixes: &[GpsFix], config: &KangConfig) -> Vec<DiscoveredPlace> {
    debug_assert!(
        fixes.windows(2).all(|w| w[0].time <= w[1].time),
        "fixes must be time-ordered"
    );
    let mut places: Vec<DiscoveredPlace> = Vec::new();
    let mut current: Option<Cluster> = None;
    let mut pending: Option<GpsFix> = None;

    for fix in fixes {
        match &mut current {
            None => current = Some(Cluster::new(fix)),
            Some(cluster) => {
                let d = cluster.centroid().equirectangular_distance(fix.position);
                if d <= config.distance_threshold {
                    cluster.add(fix);
                    pending = None;
                } else if let Some(first_out) = pending.take() {
                    // Two consecutive fixes outside: the stay is over.
                    let finished = current.take().expect("in Some branch");
                    close_cluster(finished, &mut places, config);
                    // Start the next cluster from the two outside fixes if
                    // they agree with each other, else from the newest.
                    let mut next = Cluster::new(&first_out);
                    if next.centroid().equirectangular_distance(fix.position)
                        <= config.distance_threshold
                    {
                        next.add(fix);
                    } else {
                        next = Cluster::new(fix);
                    }
                    current = Some(next);
                } else {
                    pending = Some(*fix);
                }
            }
        }
    }
    if let Some(cluster) = current {
        close_cluster(cluster, &mut places, config);
    }
    places
}

fn close_cluster(cluster: Cluster, places: &mut Vec<DiscoveredPlace>, config: &KangConfig) {
    if cluster.span() < config.time_threshold {
        return;
    }
    let centroid = cluster.centroid();
    let visit = DiscoveredVisit {
        arrival: cluster.start,
        departure: cluster.end,
    };
    // Merge into an existing place when centroids are close.
    for place in places.iter_mut() {
        if let PlaceSignature::Coordinates { center, radius } = &mut place.signature {
            if center.equirectangular_distance(centroid) <= config.merge_distance {
                place.visits.push(visit);
                // Grow the effective radius to cover the new evidence.
                let needed = center.equirectangular_distance(centroid).value() + cluster.max_radius;
                if needed > radius.value() {
                    *radius = Meters::new(needed);
                }
                return;
            }
        }
    }
    let id = DiscoveredPlaceId(places.len() as u32);
    places.push(DiscoveredPlace::new(
        id,
        PlaceSignature::Coordinates {
            center: centroid,
            radius: Meters::new(cluster.max_radius.max(30.0)),
        },
        vec![visit],
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(minute: u64, base: GeoPoint, offset_m: f64, bearing: f64) -> GpsFix {
        GpsFix {
            time: SimTime::from_seconds(minute * 60),
            position: base.destination(bearing, Meters::new(offset_m)),
            accuracy: Meters::new(6.0),
        }
    }

    fn home() -> GeoPoint {
        GeoPoint::new(12.97, 77.59).unwrap()
    }

    fn work() -> GeoPoint {
        home().destination(90.0, Meters::new(2_000.0))
    }

    /// 30 min at home (jittered fixes), travel fixes every minute, 30 min
    /// at work.
    fn commute_stream() -> Vec<GpsFix> {
        let mut v = Vec::new();
        for m in 0..30 {
            v.push(fix(m, home(), (m % 5) as f64 * 6.0, (m * 40 % 360) as f64));
        }
        // Travel: 10 fixes marching east 200 m apart.
        for i in 0..10 {
            v.push(fix(30 + i, home(), 200.0 * (i + 1) as f64, 90.0));
        }
        for m in 40..70 {
            v.push(fix(m, work(), (m % 4) as f64 * 8.0, (m * 70 % 360) as f64));
        }
        v
    }

    #[test]
    fn discovers_home_and_work() {
        let places = discover_places(&commute_stream(), &KangConfig::default());
        assert_eq!(places.len(), 2, "{places:?}");
        let centers: Vec<GeoPoint> = places
            .iter()
            .map(|p| match p.signature {
                PlaceSignature::Coordinates { center, .. } => center,
                _ => panic!("kang emits coordinates"),
            })
            .collect();
        assert!(centers[0].equirectangular_distance(home()).value() < 30.0);
        assert!(centers[1].equirectangular_distance(work()).value() < 30.0);
        for p in &places {
            assert_eq!(p.visits.len(), 1);
            assert!(p.visits[0].duration() >= SimDuration::from_minutes(25));
        }
    }

    #[test]
    fn travel_does_not_create_places() {
        let places = discover_places(&commute_stream(), &KangConfig::default());
        // Only the two stays qualify; each travel fix cluster spans < 10 min.
        assert_eq!(places.len(), 2);
    }

    #[test]
    fn revisit_merges_into_existing_place() {
        let mut v = commute_stream();
        // Travel back.
        for i in 0..10 {
            v.push(fix(70 + i, work(), 200.0 * (i + 1) as f64, 270.0));
        }
        for m in 80..110 {
            v.push(fix(m, home(), (m % 5) as f64 * 6.0, (m * 55 % 360) as f64));
        }
        let places = discover_places(&v, &KangConfig::default());
        assert_eq!(places.len(), 2, "{places:?}");
        let home_place = &places[0];
        assert_eq!(home_place.visits.len(), 2, "revisit should merge");
    }

    #[test]
    fn single_outlier_fix_does_not_split_stay() {
        let mut v: Vec<GpsFix> = (0..15)
            .map(|m| fix(m, home(), (m % 3) as f64 * 5.0, 0.0))
            .collect();
        // One wild multipath fix 500 m away.
        v.push(fix(15, home(), 500.0, 45.0));
        v.extend((16..30).map(|m| fix(m, home(), (m % 3) as f64 * 5.0, 180.0)));
        let places = discover_places(&v, &KangConfig::default());
        assert_eq!(places.len(), 1);
        assert_eq!(
            places[0].visits.len(),
            1,
            "outlier must not split the visit"
        );
    }

    #[test]
    fn short_stay_dropped() {
        let v: Vec<GpsFix> = (0..5).map(|m| fix(m, home(), 3.0, 0.0)).collect();
        let places = discover_places(&v, &KangConfig::default());
        assert!(places.is_empty());
    }

    #[test]
    fn empty_stream() {
        assert!(discover_places(&[], &KangConfig::default()).is_empty());
    }

    #[test]
    fn radius_reflects_cluster_spread() {
        let mut v = Vec::new();
        for m in 0..20 {
            v.push(fix(m, home(), 40.0, (m * 90) as f64 % 360.0));
        }
        let places = discover_places(&v, &KangConfig::default());
        assert_eq!(places.len(), 1);
        if let PlaceSignature::Coordinates { radius, .. } = places[0].signature {
            assert!(
                radius.value() >= 30.0 && radius.value() <= 120.0,
                "{radius}"
            );
        }
    }
}
