//! GCA: GSM-based place discovery over a cell-ID movement graph.
//!
//! §2.2.2 of the paper: *"GCA is a GSM-based place discovery algorithm that
//! performs clustering on Cell ID data to create place signatures. \[…\]
//! Cell ID may change even when a user stays at same place due to network
//! load, small time signal fading, and inter-network (2G to 3G or vice
//! versa) handoff. Such a change in Cell ID while the user is stationary is
//! called 'oscillating effect'. GCA models the oscillating effect among
//! Cell IDs using an undirected weighted graph (movement graph) and then
//! performs clustering with the help of heuristics such as edge weights,
//! node degree, etc."*
//!
//! The implementation here follows that outline:
//!
//! 1. **Movement graph.** Nodes are cell identities. For every *bounce*
//!    pattern `a → b → a` in the observation stream the edge `(a, b)` gains
//!    weight. A user passing through on a road produces monotone sequences
//!    (`a → b → c`) and almost never bounces, so bounce weight separates
//!    oscillation from travel far more cleanly than raw transition counts.
//! 2. **Clustering.** Edges with weight ≥ `min_bounce_weight` are kept;
//!    connected components of the remaining graph are cluster candidates.
//! 3. **Qualification.** A cluster is a *place* only if the user once
//!    stayed inside it contiguously for at least `min_stay` (prior work
//!    uses 10 minutes — \[19\] in the paper).
//! 4. **Visit extraction.** The stream is re-scanned; maximal runs inside
//!    one qualified cluster (allowing small gaps) become visits with
//!    arrival/departure timestamps.
//!
//! GCA is the algorithm PMWare offloads to the cloud instance (§2.3.1).
//! Two entry points share one implementation of the clustering rules:
//!
//! * [`discover_places`] — the one-shot batch computation over a complete
//!   stream;
//! * [`IncrementalGca`] — a persistent per-user engine whose
//!   [`absorb`](IncrementalGca::absorb) folds in a new suffix of
//!   observations in O(suffix) amortised time, and whose
//!   [`places`](IncrementalGca::places) view is **bit-identical** to
//!   running the batch algorithm over the concatenation of everything
//!   absorbed so far. This is what makes the paper's *nightly incremental
//!   discovery* cheap: neither the phone's local fallback nor the cloud
//!   re-clusters history that has already been processed.
//!
//! After discovery, cheap online tracking ([`CellPlaceTracker`])
//! recognises revisits on the phone.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use pmware_world::intern::{Interner, Symbol};
use pmware_world::{CellGlobalId, GsmObservation, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::signature::{DiscoveredPlace, DiscoveredPlaceId, DiscoveredVisit, PlaceSignature};

/// Tunable parameters of GCA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcaConfig {
    /// Minimum bounce weight for an edge to count as oscillation.
    pub min_bounce_weight: u32,
    /// Minimum contiguous stay for a cluster to qualify as a place.
    pub min_stay: SimDuration,
    /// Maximum time between consecutive observations for them to be
    /// considered adjacent (larger gaps break bounce patterns and runs).
    pub max_sample_gap: SimDuration,
    /// Maximum number of missing/foreign samples tolerated inside a visit
    /// run before the visit is closed.
    pub run_gap_tolerance: u32,
    /// Cap on signature size (the paper shows five-cell signatures).
    pub max_signature_cells: usize,
}

impl Default for GcaConfig {
    fn default() -> Self {
        GcaConfig {
            min_bounce_weight: 2,
            min_stay: SimDuration::from_minutes(10),
            max_sample_gap: SimDuration::from_minutes(5),
            run_gap_tolerance: 3,
            max_signature_cells: 5,
        }
    }
}

/// The movement graph: an inspectable intermediate result (C-INTERMEDIATE).
///
/// Internally the graph is keyed by dense interned symbols, not by raw
/// [`CellGlobalId`]s: the per-observation hot path (dwell accounting, bounce
/// counting) costs one intern lookup plus `Vec` indexing instead of B-tree
/// searches on 12-byte composite keys. Symbols never escape: every public
/// accessor speaks `CellGlobalId`, and [`components`](Self::components)
/// resolves and sorts edges back into cell order so the clustering walks
/// the exact edge sequence the old cell-keyed map produced.
#[derive(Debug, Clone, Default)]
pub struct MovementGraph {
    /// Cell ↔ symbol table, first-seen order (= stream appearance order).
    cells: Interner<CellGlobalId>,
    /// Bounce weight per unordered symbol pair (canonical: smaller first).
    edges: HashMap<(Symbol, Symbol), u32>,
    /// Total observed dwell per cell, indexed by symbol.
    dwell: Vec<SimDuration>,
}

impl MovementGraph {
    /// Builds the graph from a time-ordered observation stream.
    pub fn build(observations: &[GsmObservation], config: &GcaConfig) -> MovementGraph {
        let mut graph = MovementGraph::default();
        // Dwell accounting: each observation holds its cell until the next
        // sample (capped by the max gap).
        for w in observations.windows(2) {
            let dt = w[1].time.since(w[0].time);
            let dt = dt.min(config.max_sample_gap);
            let (sym, _) = graph.touch(w[0].cell);
            graph.note_dwell(sym, dt);
        }
        if let Some(last) = observations.last() {
            graph.touch(last.cell);
        }
        // Bounce patterns a → b → a over adjacent samples.
        for w in observations.windows(3) {
            let adjacent = w[1].time.since(w[0].time) <= config.max_sample_gap
                && w[2].time.since(w[1].time) <= config.max_sample_gap;
            if adjacent && w[0].cell == w[2].cell && w[0].cell != w[1].cell {
                let (a, _) = graph.touch(w[0].cell);
                let (b, _) = graph.touch(w[1].cell);
                graph.note_bounce(a, b);
            }
        }
        graph
    }

    /// Bounce weight of an edge (0 if absent).
    pub fn edge_weight(&self, a: CellGlobalId, b: CellGlobalId) -> u32 {
        match (self.cells.get(&a), self.cells.get(&b)) {
            (Some(sa), Some(sb)) => self.edges.get(&sym_key(sa, sb)).copied().unwrap_or(0),
            _ => 0,
        }
    }

    /// Number of edges with non-zero weight.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Total dwell recorded for a cell.
    pub fn dwell(&self, cell: CellGlobalId) -> SimDuration {
        self.cells
            .get(&cell)
            .map(|s| self.dwell[s as usize])
            .unwrap_or(SimDuration::ZERO)
    }

    /// All cells seen, in ascending cell order.
    pub fn cells(&self) -> impl Iterator<Item = CellGlobalId> + '_ {
        let mut cells: Vec<CellGlobalId> = self.cells.values().to_vec();
        cells.sort_unstable();
        cells.into_iter()
    }

    /// Number of distinct cells seen.
    fn cell_count(&self) -> usize {
        self.dwell.len()
    }

    /// The symbol for a cell, if it has been observed.
    fn symbol_of(&self, cell: CellGlobalId) -> Option<Symbol> {
        self.cells.get(&cell)
    }

    /// Interns `cell`, creating its dwell slot on first sight. Returns the
    /// symbol and whether the cell is brand new.
    fn touch(&mut self, cell: CellGlobalId) -> (Symbol, bool) {
        let sym = self.cells.intern(&cell);
        let fresh = sym as usize == self.dwell.len();
        if fresh {
            self.dwell.push(SimDuration::ZERO);
        }
        (sym, fresh)
    }

    /// Accounts dwell for an already-interned cell.
    fn note_dwell(&mut self, sym: Symbol, dt: SimDuration) {
        self.dwell[sym as usize] += dt;
    }

    /// Adds one bounce to the edge `(a, b)` and returns its new weight.
    fn note_bounce(&mut self, a: Symbol, b: Symbol) -> u32 {
        let w = self.edges.entry(sym_key(a, b)).or_insert(0);
        *w += 1;
        *w
    }

    /// Dwell per cell, in cell order — the canonical (symbol-free) view
    /// used for equality.
    fn dwell_by_cell(&self) -> BTreeMap<CellGlobalId, SimDuration> {
        self.cells
            .values()
            .iter()
            .zip(&self.dwell)
            .map(|(c, d)| (*c, *d))
            .collect()
    }

    /// Edges keyed by cell-ordered pairs — the canonical view used for
    /// equality and for the clustering walk.
    fn edges_by_cell(&self) -> Vec<((CellGlobalId, CellGlobalId), u32)> {
        self.edges
            .iter()
            .map(|(&(sa, sb), &w)| {
                (
                    edge_key(*self.cells.resolve(sa), *self.cells.resolve(sb)),
                    w,
                )
            })
            .collect()
    }

    /// Connected components over edges with weight ≥ `min_weight`.
    /// Cells without any qualifying edge form singleton components.
    pub fn components(&self, min_weight: u32) -> Vec<BTreeSet<CellGlobalId>> {
        let mut parent: HashMap<CellGlobalId, CellGlobalId> =
            self.cells.values().iter().map(|c| (*c, *c)).collect();

        fn find(parent: &mut HashMap<CellGlobalId, CellGlobalId>, x: CellGlobalId) -> CellGlobalId {
            let mut root = x;
            while parent[&root] != root {
                root = parent[&root];
            }
            // Path compression.
            let mut cur = x;
            while parent[&cur] != root {
                let next = parent[&cur];
                parent.insert(cur, root);
                cur = next;
            }
            root
        }

        // Union in ascending cell-pair order — the same sequence the old
        // cell-keyed B-tree map iterated in, so the union-find picks the
        // same roots and the component list comes out in the same order.
        let mut edges = self.edges_by_cell();
        edges.sort_unstable_by_key(|&(key, _)| key);
        for ((a, b), w) in edges {
            if w >= min_weight {
                parent.entry(a).or_insert(a);
                parent.entry(b).or_insert(b);
                let ra = find(&mut parent, a);
                let rb = find(&mut parent, b);
                if ra != rb {
                    parent.insert(ra, rb);
                }
            }
        }

        let keys: Vec<CellGlobalId> = parent.keys().copied().collect();
        let mut groups: BTreeMap<CellGlobalId, BTreeSet<CellGlobalId>> = BTreeMap::new();
        for cell in keys {
            let root = find(&mut parent, cell);
            groups.entry(root).or_default().insert(cell);
        }
        groups.into_values().collect()
    }
}

impl PartialEq for MovementGraph {
    /// Semantic equality: same dwell per cell and same weight per cell
    /// pair, regardless of symbol numbering (two graphs that saw the same
    /// cells in different orders still compare equal).
    fn eq(&self, other: &Self) -> bool {
        if self.dwell.len() != other.dwell.len() || self.edges.len() != other.edges.len() {
            return false;
        }
        let mut a = self.edges_by_cell();
        let mut b = other.edges_by_cell();
        a.sort_unstable_by_key(|&(key, _)| key);
        b.sort_unstable_by_key(|&(key, _)| key);
        a == b && self.dwell_by_cell() == other.dwell_by_cell()
    }
}

fn edge_key(a: CellGlobalId, b: CellGlobalId) -> (CellGlobalId, CellGlobalId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn sym_key(a: Symbol, b: Symbol) -> (Symbol, Symbol) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Result of a GCA run: discovered places plus the movement graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GcaOutput {
    /// Qualified places with signatures and visit histories.
    pub places: Vec<DiscoveredPlace>,
    /// The movement graph, for inspection and offline analytics.
    pub graph: MovementGraph,
}

/// Runs GCA over a time-ordered GSM observation stream.
///
/// # Panics
///
/// Panics in debug builds if `observations` is not time-ordered.
pub fn discover_places(observations: &[GsmObservation], config: &GcaConfig) -> GcaOutput {
    debug_assert!(
        observations.windows(2).all(|w| w[0].time <= w[1].time),
        "observations must be time-ordered"
    );
    let graph = MovementGraph::build(observations, config);
    let components = graph.components(config.min_bounce_weight);

    // Map every cell to its component index.
    let mut component_of: HashMap<CellGlobalId, usize> = HashMap::new();
    for (idx, comp) in components.iter().enumerate() {
        for cell in comp {
            component_of.insert(*cell, idx);
        }
    }

    // Extract contiguous runs per component.
    let runs = extract_runs(observations, &component_of, config);

    // Group visits per component.
    let mut visits_by_component: BTreeMap<usize, Vec<DiscoveredVisit>> = BTreeMap::new();
    for run in &runs {
        visits_by_component
            .entry(run.component)
            .or_default()
            .push(DiscoveredVisit {
                arrival: run.start,
                departure: run.end,
            });
    }

    let places = qualify_places(&graph, &components, visits_by_component, config);
    GcaOutput { places, graph }
}

/// Turns per-component visit candidates into qualified [`DiscoveredPlace`]s
/// — the single implementation of the qualification and signature rules,
/// shared by the batch and incremental engines so their outputs cannot
/// drift apart.
fn qualify_places(
    graph: &MovementGraph,
    components: &[BTreeSet<CellGlobalId>],
    visits_by_component: BTreeMap<usize, Vec<DiscoveredVisit>>,
    config: &GcaConfig,
) -> Vec<DiscoveredPlace> {
    let mut places = Vec::new();
    for (component, visits) in visits_by_component {
        // Qualify components: need one run of at least min_stay.
        let longest = visits
            .iter()
            .map(|v| v.duration())
            .max()
            .unwrap_or(SimDuration::ZERO);
        if longest < config.min_stay {
            continue;
        }
        // Keep only visits of at least min_stay; brief passes through the
        // cluster's cells are travel, not stays.
        let visits: Vec<DiscoveredVisit> = visits
            .into_iter()
            .filter(|v| v.duration() >= config.min_stay)
            .collect();
        if visits.is_empty() {
            continue;
        }
        // Signature: the strongest cells of the component by dwell.
        let mut cells: Vec<CellGlobalId> = components[component].iter().copied().collect();
        cells.sort_by_key(|c| std::cmp::Reverse(graph.dwell(*c).as_seconds()));
        cells.truncate(config.max_signature_cells);
        let signature = PlaceSignature::Cells(cells.into_iter().collect());
        let id = DiscoveredPlaceId(places.len() as u32);
        places.push(DiscoveredPlace::new(id, signature, visits));
    }
    places
}

/// A maximal in-cluster run, labelled by a component identity `C`
/// (`usize` index for the batch path, representative cell for the
/// incremental engine).
#[derive(Debug, Clone, Copy)]
struct Run<C> {
    component: C,
    start: SimTime,
    end: SimTime,
}

/// Resumable state of the run-extraction scan.
#[derive(Debug, Clone, Copy)]
struct RunScan<C> {
    current: Option<Run<C>>,
    foreign: u32,
}

impl<C> Default for RunScan<C> {
    fn default() -> Self {
        RunScan {
            current: None,
            foreign: 0,
        }
    }
}

impl<C: Copy + PartialEq> RunScan<C> {
    /// Feeds one observation (its component label and timestamp) through
    /// the state machine; completed runs are pushed onto `closed`. This is
    /// the only implementation of the run rules — both the batch scan and
    /// the incremental engine step through it, which is what guarantees
    /// their visit extraction is identical.
    fn step(
        &mut self,
        comp: Option<C>,
        time: SimTime,
        config: &GcaConfig,
        closed: &mut Vec<Run<C>>,
    ) {
        match (&mut self.current, comp) {
            (Some(run), Some(c)) if c == run.component => {
                // Break the run across large time gaps (device off / no
                // coverage for a while).
                if time.since(run.end)
                    > config
                        .max_sample_gap
                        .mul_f64((config.run_gap_tolerance + 1) as f64)
                {
                    closed.push(self.current.take().expect("checked above"));
                    self.current = Some(Run {
                        component: c,
                        start: time,
                        end: time,
                    });
                } else {
                    run.end = time;
                }
                self.foreign = 0;
            }
            (Some(run), other) => {
                self.foreign += 1;
                if self.foreign > config.run_gap_tolerance {
                    closed.push(self.current.take().expect("checked above"));
                    self.foreign = 0;
                    if let Some(c) = other {
                        self.current = Some(Run {
                            component: c,
                            start: time,
                            end: time,
                        });
                    }
                } else {
                    // Tolerated glitch: extend the run's end so that a
                    // momentary foreign cell does not shorten the stay.
                    run.end = time;
                }
            }
            (None, Some(c)) => {
                self.current = Some(Run {
                    component: c,
                    start: time,
                    end: time,
                });
                self.foreign = 0;
            }
            (None, None) => {}
        }
    }
}

fn extract_runs(
    observations: &[GsmObservation],
    component_of: &HashMap<CellGlobalId, usize>,
    config: &GcaConfig,
) -> Vec<Run<usize>> {
    let mut closed = Vec::new();
    let mut scan = RunScan::default();
    for obs in observations {
        scan.step(
            component_of.get(&obs.cell).copied(),
            obs.time,
            config,
            &mut closed,
        );
    }
    if let Some(run) = scan.current {
        closed.push(run);
    }
    closed
}

/// Persistent incremental GCA engine (§2.3.1's *nightly incremental
/// discovery*, done properly): absorb a suffix of new observations in
/// O(suffix) amortised time, and read back a place set **bit-identical**
/// to batch [`discover_places`] over the concatenated stream.
///
/// # Design
///
/// The movement graph (dwell + bounce weights) folds a new observation in
/// O(1) using a two-observation tail window. Visit runs are trickier: the
/// batch algorithm re-scans the stream with the *final* cluster partition,
/// and bounce weights only ever grow, so a late oscillation can merge two
/// clusters and retroactively change how *old* observations group into
/// runs. The engine therefore labels its resumable run scan with the
/// partition's *representative cells* (the smallest cell of each
/// component — stable under re-indexing) and keeps the absorbed log. When
/// an edge first crosses `min_bounce_weight`, it re-derives the partition;
/// if any already-scanned cell moved to a different component, the run
/// scan replays from the retained log. Crossings stop once the user's
/// regular places are established, so steady-state absorbs touch only the
/// suffix; the replay is the correctness fallback that keeps the
/// incremental view exactly equal to the batch one.
///
/// # Examples
///
/// ```
/// use pmware_algorithms::gca::{self, GcaConfig, IncrementalGca};
/// # use pmware_world::tower::NetworkLayer;
/// # use pmware_world::{CellGlobalId, CellId, GsmObservation, Lac, Plmn, SimTime};
/// # let cell = |id: u32| CellGlobalId {
/// #     plmn: Plmn { mcc: 404, mnc: 45 }, lac: Lac(1), cell: CellId(id),
/// # };
/// # let stream: Vec<GsmObservation> = (0..40)
/// #     .map(|m| GsmObservation {
/// #         time: SimTime::from_seconds(m * 60),
/// #         cell: if m % 3 == 1 { cell(2) } else { cell(1) },
/// #         layer: NetworkLayer::G2,
/// #         rssi_dbm: -70.0,
/// #     })
/// #     .collect();
/// let config = GcaConfig::default();
/// let mut engine = IncrementalGca::new(config.clone());
/// let (head, tail) = stream.split_at(stream.len() / 2);
/// engine.absorb(head);
/// engine.absorb(tail);
/// assert_eq!(engine.places(), gca::discover_places(&stream, &config));
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalGca {
    config: GcaConfig,
    /// Every observation absorbed so far — kept for the partition-change
    /// replay (and nothing else; steady-state absorbs never re-read it).
    log: Vec<GsmObservation>,
    /// The interned cell symbol of each log entry, so the replay and the
    /// resumable scan label observations without re-hashing cell IDs.
    log_syms: Vec<Symbol>,
    graph: MovementGraph,
    /// Closed runs in chronological order, labelled by the symbol of the
    /// representative (smallest) cell of their component.
    runs: Vec<Run<Symbol>>,
    /// The open run / foreign-sample state of the resumable scan.
    scan: RunScan<Symbol>,
    /// How many log entries the run scan has consumed.
    scanned_upto: usize,
    /// Cell symbol → representative symbol under the partition the scan
    /// used. While the partition is clean this covers every interned cell;
    /// cells first seen while dirty stay uncovered until the re-derive.
    rep_of: Vec<Symbol>,
    /// Set when an edge crossed the bounce threshold since the last scan:
    /// the partition must be re-derived before scanning further.
    partition_dirty: bool,
}

impl IncrementalGca {
    /// Creates an empty engine.
    pub fn new(config: GcaConfig) -> Self {
        IncrementalGca {
            config,
            log: Vec::new(),
            log_syms: Vec::new(),
            graph: MovementGraph::default(),
            runs: Vec::new(),
            scan: RunScan::default(),
            scanned_upto: 0,
            rep_of: Vec::new(),
            partition_dirty: false,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &GcaConfig {
        &self.config
    }

    /// Number of observations absorbed so far.
    pub fn observation_count(&self) -> usize {
        self.log.len()
    }

    /// The full absorbed observation log, in absorption order. A fresh
    /// engine fed this log in one `absorb` reproduces this engine's
    /// client-visible state exactly (the split-invariance property), which
    /// is what lets durable snapshots store `(config, log)` instead of the
    /// engine's internal indexes.
    pub fn observations(&self) -> &[GsmObservation] {
        &self.log
    }

    /// Returns `true` when nothing has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Timestamp of the most recently absorbed observation, if any.
    pub fn last_time(&self) -> Option<SimTime> {
        self.log.last().map(|o| o.time)
    }

    /// The incrementally maintained movement graph.
    pub fn graph(&self) -> &MovementGraph {
        &self.graph
    }

    /// Folds a time-ordered suffix of new observations into the engine.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `suffix` is not time-ordered or starts
    /// before the last absorbed observation.
    pub fn absorb(&mut self, suffix: &[GsmObservation]) {
        debug_assert!(
            suffix.windows(2).all(|w| w[0].time <= w[1].time),
            "suffix must be time-ordered"
        );
        debug_assert!(
            match (self.log.last(), suffix.first()) {
                (Some(last), Some(first)) => last.time <= first.time,
                _ => true,
            },
            "suffix must not start before already-absorbed observations"
        );
        if suffix.is_empty() {
            return;
        }
        // The effective weight at which an edge starts to qualify: even a
        // zero threshold needs the edge to exist (weight 1).
        let qualifying = self.config.min_bounce_weight.max(1);
        for obs in suffix {
            let n = self.log.len();
            let (sym, fresh) = self.graph.touch(obs.cell);
            if n >= 1 {
                let prev = self.log[n - 1];
                let prev_sym = self.log_syms[n - 1];
                let dt = obs.time.since(prev.time).min(self.config.max_sample_gap);
                self.graph.note_dwell(prev_sym, dt);
                if n >= 2 {
                    let first = self.log[n - 2];
                    let first_sym = self.log_syms[n - 2];
                    let adjacent = prev.time.since(first.time) <= self.config.max_sample_gap
                        && obs.time.since(prev.time) <= self.config.max_sample_gap;
                    if adjacent && first_sym == sym && first_sym != prev_sym {
                        let w = self.graph.note_bounce(first_sym, prev_sym);
                        if w == qualifying {
                            self.partition_dirty = true;
                        }
                    }
                }
            }
            if fresh && !self.partition_dirty {
                // A brand-new cell has no qualifying edges yet, so it is a
                // singleton component and its representative is itself.
                // Fresh symbols are dense, so this stays index-aligned.
                debug_assert_eq!(self.rep_of.len(), sym as usize);
                self.rep_of.push(sym);
            }
            self.log.push(*obs);
            self.log_syms.push(sym);
        }
        self.advance_scan();
    }

    /// Re-derives the partition if needed, replays the run scan when the
    /// partition changed retroactively, then consumes the unscanned tail.
    fn advance_scan(&mut self) {
        if self.partition_dirty {
            let fresh = self.representatives();
            // Did any already-labelled cell move to a different component?
            // (Components only ever merge, so this is exactly the case in
            // which past observations would group differently. Cells first
            // seen while dirty sit past `rep_of`'s end and don't vote.)
            let moved = self
                .rep_of
                .iter()
                .enumerate()
                .any(|(sym, rep)| fresh[sym] != *rep);
            if moved {
                self.runs.clear();
                self.scan = RunScan::default();
                self.scanned_upto = 0;
            }
            self.rep_of = fresh;
            self.partition_dirty = false;
        }
        for i in self.scanned_upto..self.log.len() {
            let time = self.log[i].time;
            let comp = self.rep_of[self.log_syms[i] as usize];
            self.scan
                .step(Some(comp), time, &self.config, &mut self.runs);
        }
        self.scanned_upto = self.log.len();
    }

    /// Cell symbol → symbol of the smallest cell of its component, under
    /// the current graph. Dense over every interned cell.
    fn representatives(&self) -> Vec<Symbol> {
        let components = self.graph.components(self.config.min_bounce_weight);
        let mut rep_of = vec![0 as Symbol; self.graph.cell_count()];
        for comp in &components {
            let first = *comp.first().expect("components are non-empty");
            let rep = self.graph.symbol_of(first).expect("interned");
            for cell in comp {
                rep_of[self.graph.symbol_of(*cell).expect("interned") as usize] = rep;
            }
        }
        rep_of
    }

    /// The current place view — bit-identical to
    /// [`discover_places`] over everything absorbed so far. Cost is
    /// proportional to the graph and run counts, not to history length.
    pub fn places(&self) -> GcaOutput {
        let components = self.graph.components(self.config.min_bounce_weight);
        let mut index_of_rep: HashMap<Symbol, usize> = HashMap::with_capacity(components.len());
        for (idx, comp) in components.iter().enumerate() {
            let first = *comp.first().expect("components are non-empty");
            index_of_rep.insert(self.graph.symbol_of(first).expect("interned"), idx);
        }
        let mut visits_by_component: BTreeMap<usize, Vec<DiscoveredVisit>> = BTreeMap::new();
        for run in self.runs.iter().chain(self.scan.current.as_ref()) {
            let idx = index_of_rep[&run.component];
            visits_by_component
                .entry(idx)
                .or_default()
                .push(DiscoveredVisit {
                    arrival: run.start,
                    departure: run.end,
                });
        }
        let places = qualify_places(&self.graph, &components, visits_by_component, &self.config);
        GcaOutput {
            places,
            graph: self.graph.clone(),
        }
    }

    /// Consumes the engine and returns the final output (same view as
    /// [`places`](Self::places), without cloning the graph).
    pub fn finish(self) -> GcaOutput {
        let mut out = self.places();
        out.graph = self.graph;
        out
    }
}

/// Online recogniser: once GCA signatures exist (computed on the cloud),
/// the phone tracks arrivals/departures by mapping each serving cell to its
/// place (§2.3.1: "after discovery of place signatures, mobile service can
/// track user's visit in those places").
#[derive(Debug, Clone)]
pub struct CellPlaceTracker {
    cell_to_place: HashMap<CellGlobalId, DiscoveredPlaceId>,
    confirm_in: u32,
    confirm_out: u32,
    state: TrackerState,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum TrackerState {
    Away {
        /// Consecutive samples inside some candidate place.
        candidate: Option<(DiscoveredPlaceId, u32, SimTime)>,
    },
    At {
        place: DiscoveredPlaceId,
        arrival: SimTime,
        /// Consecutive samples outside the place.
        strikes: u32,
        last_inside: SimTime,
    },
}

/// The serializable runtime state of a [`CellPlaceTracker`], for device
/// checkpoint/restore. The cell→place index is *not* part of the snapshot
/// (struct map keys don't serialize); it is rebuilt from the same place
/// list the tracker was constructed over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackerSnapshot(TrackerState);

/// An event emitted by the online tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlaceEvent {
    /// The user arrived at a known place.
    Arrival {
        /// Which place.
        place: DiscoveredPlaceId,
        /// When the arrival was confirmed (first in-place sample).
        time: SimTime,
    },
    /// The user left a known place.
    Departure {
        /// Which place.
        place: DiscoveredPlaceId,
        /// When the departure was confirmed (last in-place sample).
        time: SimTime,
    },
}

impl CellPlaceTracker {
    /// Creates a tracker over known places. `confirm_in` / `confirm_out`
    /// are the number of consecutive samples required to confirm an arrival
    /// or a departure (debouncing the oscillation effect).
    ///
    /// # Panics
    ///
    /// Panics if either confirmation count is zero.
    pub fn new(places: &[DiscoveredPlace], confirm_in: u32, confirm_out: u32) -> Self {
        assert!(
            confirm_in > 0 && confirm_out > 0,
            "confirmation counts must be positive"
        );
        let mut cell_to_place = HashMap::new();
        for place in places {
            if let PlaceSignature::Cells(cells) = &place.signature {
                for cell in cells {
                    // First-writer-wins: overlapping signatures (merged
                    // places) resolve to the earlier place.
                    cell_to_place.entry(*cell).or_insert(place.id);
                }
            }
        }
        CellPlaceTracker {
            cell_to_place,
            confirm_in,
            confirm_out,
            state: TrackerState::Away { candidate: None },
        }
    }

    /// The place currently occupied, if any.
    pub fn current_place(&self) -> Option<DiscoveredPlaceId> {
        match &self.state {
            TrackerState::At { place, .. } => Some(*place),
            TrackerState::Away { .. } => None,
        }
    }

    /// Captures the in-flight debouncing state for a checkpoint.
    pub fn snapshot(&self) -> TrackerSnapshot {
        TrackerSnapshot(self.state.clone())
    }

    /// Rebuilds a tracker from the place list it was constructed over and
    /// a previously captured [`TrackerSnapshot`], resuming mid-stay and
    /// mid-debounce exactly where the snapshot left off.
    ///
    /// # Panics
    ///
    /// Panics if either confirmation count is zero.
    pub fn from_snapshot(
        places: &[DiscoveredPlace],
        confirm_in: u32,
        confirm_out: u32,
        snapshot: TrackerSnapshot,
    ) -> Self {
        let mut tracker = CellPlaceTracker::new(places, confirm_in, confirm_out);
        tracker.state = snapshot.0;
        tracker
    }

    /// Feeds one observation; returns the events it triggered (0–2: a
    /// departure may be followed immediately by a new arrival candidate).
    pub fn update(&mut self, obs: &GsmObservation) -> Vec<PlaceEvent> {
        let here = self.cell_to_place.get(&obs.cell).copied();
        let mut events = Vec::new();
        match &mut self.state {
            TrackerState::Away { candidate } => match here {
                Some(place) => {
                    let (count, since) = match candidate {
                        Some((p, n, since)) if *p == place => (*n + 1, *since),
                        _ => (1, obs.time),
                    };
                    if count >= self.confirm_in {
                        events.push(PlaceEvent::Arrival { place, time: since });
                        self.state = TrackerState::At {
                            place,
                            arrival: since,
                            strikes: 0,
                            last_inside: obs.time,
                        };
                    } else {
                        *candidate = Some((place, count, since));
                    }
                }
                None => *candidate = None,
            },
            TrackerState::At {
                place,
                strikes,
                last_inside,
                ..
            } => {
                if here == Some(*place) {
                    *strikes = 0;
                    *last_inside = obs.time;
                } else {
                    *strikes += 1;
                    if *strikes >= self.confirm_out {
                        events.push(PlaceEvent::Departure {
                            place: *place,
                            time: *last_inside,
                        });
                        self.state = TrackerState::Away {
                            candidate: here.map(|p| (p, 1, obs.time)),
                        };
                    }
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmware_world::tower::NetworkLayer;
    use pmware_world::{CellId, Lac, Plmn};

    fn cell(id: u32) -> CellGlobalId {
        CellGlobalId {
            plmn: Plmn { mcc: 404, mnc: 45 },
            lac: Lac(1),
            cell: CellId(id),
        }
    }

    fn obs(minute: u64, c: CellGlobalId) -> GsmObservation {
        GsmObservation {
            time: SimTime::from_seconds(minute * 60),
            cell: c,
            layer: NetworkLayer::G2,
            rssi_dbm: -70.0,
        }
    }

    /// A synthetic day: stay oscillating between cells 1/2 (minutes 0–59),
    /// travel through 10,11,12 (one minute each), stay oscillating between
    /// cells 3/4 (minutes 63–122).
    fn synthetic_stream() -> Vec<GsmObservation> {
        let mut v = Vec::new();
        for m in 0..60 {
            let c = if m % 7 == 3 { cell(2) } else { cell(1) };
            v.push(obs(m, c));
        }
        v.push(obs(60, cell(10)));
        v.push(obs(61, cell(11)));
        v.push(obs(62, cell(12)));
        for m in 63..123 {
            let c = if m % 5 == 2 { cell(4) } else { cell(3) };
            v.push(obs(m, c));
        }
        v
    }

    #[test]
    fn movement_graph_counts_bounces_not_transitions() {
        let stream = synthetic_stream();
        let graph = MovementGraph::build(&stream, &GcaConfig::default());
        // Oscillating pairs have high bounce weight.
        assert!(graph.edge_weight(cell(1), cell(2)) >= 5);
        assert!(graph.edge_weight(cell(3), cell(4)) >= 5);
        // Travel cells never bounce.
        assert_eq!(graph.edge_weight(cell(10), cell(11)), 0);
        assert_eq!(graph.edge_weight(cell(11), cell(12)), 0);
        assert_eq!(graph.edge_weight(cell(2), cell(10)), 0);
    }

    #[test]
    fn discovers_two_places_from_synthetic_stream() {
        let stream = synthetic_stream();
        let out = discover_places(&stream, &GcaConfig::default());
        assert_eq!(out.places.len(), 2, "places: {:?}", out.places);
        for place in &out.places {
            match &place.signature {
                PlaceSignature::Cells(cells) => {
                    assert!(cells.len() >= 2, "oscillation pair expected");
                }
                other => panic!("GCA must emit cell signatures, got {other:?}"),
            }
            assert_eq!(place.visits.len(), 1);
            assert!(place.visits[0].duration() >= SimDuration::from_minutes(50));
        }
        // The two signatures are disjoint.
        let (a, b) = (&out.places[0].signature, &out.places[1].signature);
        if let (PlaceSignature::Cells(a), PlaceSignature::Cells(b)) = (a, b) {
            assert!(a.is_disjoint(b));
        }
    }

    #[test]
    fn travel_cells_do_not_become_places() {
        let stream = synthetic_stream();
        let out = discover_places(&stream, &GcaConfig::default());
        for place in &out.places {
            if let PlaceSignature::Cells(cells) = &place.signature {
                for c in [cell(10), cell(11), cell(12)] {
                    assert!(!cells.contains(&c), "travel cell in signature");
                }
            }
        }
    }

    #[test]
    fn short_stay_below_min_stay_is_dropped() {
        // Oscillate for only 5 minutes.
        let mut v = Vec::new();
        for m in 0..5 {
            let c = if m % 2 == 0 { cell(1) } else { cell(2) };
            v.push(obs(m, c));
        }
        let out = discover_places(&v, &GcaConfig::default());
        assert!(out.places.is_empty());
    }

    #[test]
    fn repeated_visits_are_separate() {
        // Stay at place A (0–30), away with distant cells (35–95, an hour
        // at unclustered singletons), return to A (100–130).
        let mut v = Vec::new();
        for m in 0..30 {
            v.push(obs(m, if m % 3 == 1 { cell(2) } else { cell(1) }));
        }
        for m in 35..95 {
            // Travel: monotone new cells, never bouncing.
            v.push(obs(m, cell(100 + m as u32)));
        }
        for m in 100..130 {
            v.push(obs(m, if m % 3 == 1 { cell(2) } else { cell(1) }));
        }
        let out = discover_places(&v, &GcaConfig::default());
        assert_eq!(out.places.len(), 1);
        assert_eq!(out.places[0].visits.len(), 2, "{:?}", out.places[0].visits);
        let v0 = out.places[0].visits[0];
        let v1 = out.places[0].visits[1];
        assert!(v0.departure < v1.arrival);
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let out = discover_places(&[], &GcaConfig::default());
        assert!(out.places.is_empty());
        assert_eq!(out.graph.edge_count(), 0);
    }

    #[test]
    fn tracker_emits_arrival_and_departure() {
        let stream = synthetic_stream();
        let out = discover_places(&stream, &GcaConfig::default());
        let mut tracker = CellPlaceTracker::new(&out.places, 2, 3);
        let mut events = Vec::new();
        for o in &stream {
            events.extend(tracker.update(o));
        }
        // Expect at least: arrival at place 1, departure, arrival at place
        // 2 (final departure never confirmed because the stream ends).
        let arrivals = events
            .iter()
            .filter(|e| matches!(e, PlaceEvent::Arrival { .. }))
            .count();
        let departures = events
            .iter()
            .filter(|e| matches!(e, PlaceEvent::Departure { .. }))
            .count();
        assert_eq!(arrivals, 2, "events: {events:?}");
        assert_eq!(departures, 1, "events: {events:?}");
        assert!(tracker.current_place().is_some());
    }

    #[test]
    fn tracker_debounces_oscillation() {
        let stream = synthetic_stream();
        let out = discover_places(&stream, &GcaConfig::default());
        let mut tracker = CellPlaceTracker::new(&out.places, 2, 3);
        // During the first stay the oscillation between cells 1 and 2 must
        // not produce spurious departures.
        let mut events = Vec::new();
        for o in stream.iter().take(60) {
            events.extend(tracker.update(o));
        }
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, PlaceEvent::Departure { .. }))
                .count(),
            0
        );
    }

    #[test]
    #[should_panic(expected = "confirmation counts")]
    fn tracker_rejects_zero_confirmation() {
        let _ = CellPlaceTracker::new(&[], 0, 1);
    }
}
