//! Place and route discovery algorithms from the PMWare paper.
//!
//! PMWare bootstraps its inference engine with three place-discovery
//! algorithms (§2.2.2), all reimplemented here:
//!
//! * [`gca`] — **GCA**, the GSM-based discovery algorithm from the authors'
//!   PlaceMap work: it models the *oscillation effect* among cell IDs with
//!   an undirected weighted movement graph and clusters cells into place
//!   signatures using edge-weight heuristics.
//! * [`sensloc`] — the **SensLoc** WiFi algorithm (Kim et al., SenSys 2010):
//!   Tanimoto-coefficient similarity over access-point fingerprints detects
//!   arrivals, departures, and revisits.
//! * [`gps_cluster`] — **Kang et al.**'s time-based clustering of GPS
//!   coordinates into physical places.
//!
//! plus [`route`] discovery/similarity (§2.1.2) and the deployment-study
//! scoring metric ([`matching`]): classifying each discovered place as
//! *correct*, *merged*, or *divided* against diary ground truth (§4).
//!
//! All algorithms are pure functions over observation streams — the same
//! code runs inside the simulated phone (PMS) and the cloud instance (PCI).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gca;
pub mod gps_cluster;
pub mod matching;
pub mod route;
pub mod sensloc;
pub mod signature;

pub use matching::{classify_places, MatchOutcome, MatchingReport};
pub use signature::{DiscoveredPlace, DiscoveredVisit, PlaceSignature};
