//! Scoring discovered places against diary ground truth.
//!
//! §4 of the paper evaluates place discovery with three outcomes over the
//! tagged, evaluable places: *"PMWare using GSM data (augmented with
//! opportunistic WiFi sensing) was able to correctly discover 79.03% of the
//! places, merged 14.52% of places, and divided 6.45% of places."*
//!
//! The classification implemented here:
//!
//! * a discovered place is **merged** when its visits cover two or more
//!   distinct ground-truth places (e.g. the paper's adjacent academic
//!   building and library sharing one cell cluster);
//! * it is **divided** when it maps to a single true place that is also
//!   covered by *other* discovered places (one physical place split across
//!   several signatures);
//! * otherwise the mapping is one-to-one and the place is **correct**.
//!
//! Attribution is temporal: each discovered visit is attributed to the
//! ground-truth place occupied for the majority of the visit interval.

use std::collections::{BTreeMap, BTreeSet};

use pmware_world::{PlaceId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::signature::{DiscoveredPlace, DiscoveredPlaceId};

/// One ground-truth stay (a diary entry).
///
/// Mirrors `pmware_mobility::TrueVisit` without the agent field so that
/// this crate stays independent of the mobility substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruthVisit {
    /// The ground-truth place.
    pub place: PlaceId,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Departure instant.
    pub departure: SimTime,
}

/// Classification of one discovered place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchOutcome {
    /// One-to-one with a ground-truth place.
    Correct,
    /// Covers two or more ground-truth places.
    Merged,
    /// One of several discovered places covering the same ground-truth
    /// place.
    Divided,
    /// No ground-truth attribution (e.g. visits during travel); excluded
    /// from the percentages, like the paper's untagged places.
    NoMatch,
}

/// The verdict for one discovered place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaceMatch {
    /// Which discovered place.
    pub discovered: DiscoveredPlaceId,
    /// Its classification.
    pub outcome: MatchOutcome,
    /// The ground-truth places attributed to it.
    pub true_places: Vec<PlaceId>,
}

/// Aggregate report over a discovery run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchingReport {
    /// Per-place verdicts.
    pub matches: Vec<PlaceMatch>,
    /// Count of correct places.
    pub correct: usize,
    /// Count of merged places.
    pub merged: usize,
    /// Count of divided places.
    pub divided: usize,
    /// Count of unattributable places.
    pub no_match: usize,
}

impl MatchingReport {
    /// Places that could be evaluated (everything but `NoMatch`).
    pub fn evaluable(&self) -> usize {
        self.correct + self.merged + self.divided
    }

    /// Fraction of evaluable places classified `Correct` (0 if none).
    pub fn correct_fraction(&self) -> f64 {
        fraction(self.correct, self.evaluable())
    }

    /// Fraction of evaluable places classified `Merged`.
    pub fn merged_fraction(&self) -> f64 {
        fraction(self.merged, self.evaluable())
    }

    /// Fraction of evaluable places classified `Divided`.
    pub fn divided_fraction(&self) -> f64 {
        fraction(self.divided, self.evaluable())
    }

    /// Distinct ground-truth places covered by any discovered place.
    pub fn covered_true_places(&self) -> usize {
        self.matches
            .iter()
            .flat_map(|m| m.true_places.iter())
            .collect::<BTreeSet<_>>()
            .len()
    }
}

fn fraction(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// Overlap between two half-open intervals.
fn overlap(a0: SimTime, a1: SimTime, b0: SimTime, b1: SimTime) -> SimDuration {
    let start = a0.max(b0);
    let end = a1.min(b1);
    end.since(start)
}

/// Classifies every discovered place against the diary.
///
/// `min_share` is the fraction of a discovered place's attributed time a
/// ground-truth place must account for to be listed (defending against a
/// few minutes of overlap from a neighbouring stay). The paper's analysis
/// corresponds to `min_share ≈ 0.2`.
///
/// # Panics
///
/// Panics if `min_share` is outside `[0, 1]`.
pub fn classify_places(
    discovered: &[DiscoveredPlace],
    ground_truth: &[GroundTruthVisit],
    min_share: f64,
) -> MatchingReport {
    assert!(
        (0.0..=1.0).contains(&min_share),
        "min_share must be a fraction, got {min_share}"
    );

    // Attribute each discovered place's visit time to true places.
    let mut attribution: Vec<BTreeMap<PlaceId, SimDuration>> = Vec::with_capacity(discovered.len());
    for place in discovered {
        let mut shares: BTreeMap<PlaceId, SimDuration> = BTreeMap::new();
        for visit in &place.visits {
            for gt in ground_truth {
                let o = overlap(visit.arrival, visit.departure, gt.arrival, gt.departure);
                if o > SimDuration::ZERO {
                    *shares.entry(gt.place).or_insert(SimDuration::ZERO) += o;
                }
            }
        }
        attribution.push(shares);
    }

    // Keep true places above the share threshold.
    let significant: Vec<BTreeSet<PlaceId>> = attribution
        .iter()
        .map(|shares| {
            let total: u64 = shares.values().map(|d| d.as_seconds()).sum();
            if total == 0 {
                return BTreeSet::new();
            }
            shares
                .iter()
                .filter(|(_, d)| d.as_seconds() as f64 >= total as f64 * min_share)
                .map(|(p, _)| *p)
                .collect()
        })
        .collect();

    // Invert: true place -> discovered places covering it.
    let mut coverage: BTreeMap<PlaceId, Vec<usize>> = BTreeMap::new();
    for (idx, places) in significant.iter().enumerate() {
        for p in places {
            coverage.entry(*p).or_default().push(idx);
        }
    }

    let mut matches = Vec::with_capacity(discovered.len());
    let (mut correct, mut merged, mut divided, mut no_match) = (0, 0, 0, 0);
    for (idx, place) in discovered.iter().enumerate() {
        let true_places: Vec<PlaceId> = significant[idx].iter().copied().collect();
        let outcome = if true_places.is_empty() {
            no_match += 1;
            MatchOutcome::NoMatch
        } else if true_places.len() >= 2 {
            merged += 1;
            MatchOutcome::Merged
        } else {
            let t = true_places[0];
            if coverage.get(&t).map(Vec::len).unwrap_or(0) >= 2 {
                divided += 1;
                MatchOutcome::Divided
            } else {
                correct += 1;
                MatchOutcome::Correct
            }
        };
        matches.push(PlaceMatch {
            discovered: place.id,
            outcome,
            true_places,
        });
    }

    MatchingReport {
        matches,
        correct,
        merged,
        divided,
        no_match,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::{DiscoveredVisit, PlaceSignature};
    use pmware_geo::{GeoPoint, Meters};

    fn t(min: u64) -> SimTime {
        SimTime::from_seconds(min * 60)
    }

    fn gt(place: u32, a: u64, d: u64) -> GroundTruthVisit {
        GroundTruthVisit {
            place: PlaceId(place),
            arrival: t(a),
            departure: t(d),
        }
    }

    fn dp(id: u32, visits: &[(u64, u64)]) -> DiscoveredPlace {
        DiscoveredPlace::new(
            DiscoveredPlaceId(id),
            PlaceSignature::Coordinates {
                center: GeoPoint::new(0.0, 0.0).unwrap(),
                radius: Meters::new(50.0),
            },
            visits
                .iter()
                .map(|&(a, d)| DiscoveredVisit {
                    arrival: t(a),
                    departure: t(d),
                })
                .collect(),
        )
    }

    #[test]
    fn one_to_one_is_correct() {
        let discovered = vec![dp(0, &[(0, 60)]), dp(1, &[(100, 160)])];
        let truth = vec![gt(10, 0, 60), gt(11, 100, 160)];
        let report = classify_places(&discovered, &truth, 0.2);
        assert_eq!(report.correct, 2);
        assert_eq!(report.merged, 0);
        assert_eq!(report.divided, 0);
        assert_eq!(report.correct_fraction(), 1.0);
        assert_eq!(report.covered_true_places(), 2);
    }

    #[test]
    fn covering_two_places_is_merged() {
        // One discovered place whose single signature absorbs visits to two
        // adjacent true places (the academic building + library case).
        let discovered = vec![dp(0, &[(0, 60), (100, 160)])];
        let truth = vec![gt(10, 0, 60), gt(11, 100, 160)];
        let report = classify_places(&discovered, &truth, 0.2);
        assert_eq!(report.merged, 1);
        assert_eq!(report.matches[0].true_places.len(), 2);
    }

    #[test]
    fn two_discovered_for_one_true_is_divided() {
        let discovered = vec![dp(0, &[(0, 60)]), dp(1, &[(100, 160)])];
        let truth = vec![gt(10, 0, 160)];
        let report = classify_places(&discovered, &truth, 0.2);
        assert_eq!(report.divided, 2);
        assert_eq!(report.divided_fraction(), 1.0);
    }

    #[test]
    fn travel_only_place_is_no_match() {
        let discovered = vec![dp(0, &[(200, 230)])];
        let truth = vec![gt(10, 0, 60)];
        let report = classify_places(&discovered, &truth, 0.2);
        assert_eq!(report.no_match, 1);
        assert_eq!(report.evaluable(), 0);
        assert_eq!(report.correct_fraction(), 0.0);
    }

    #[test]
    fn tiny_overlap_below_share_is_ignored() {
        // 60 min at place 10, then 5 min brushing place 11 on the way out.
        let discovered = vec![dp(0, &[(0, 65)])];
        let truth = vec![gt(10, 0, 60), gt(11, 60, 65)];
        let report = classify_places(&discovered, &truth, 0.2);
        assert_eq!(report.correct, 1, "5/65 < 20% share must not merge");
        assert_eq!(report.matches[0].true_places, vec![PlaceId(10)]);
    }

    #[test]
    fn mixed_report_fractions() {
        let discovered = vec![
            dp(0, &[(0, 60)]),                // correct → place 1
            dp(1, &[(100, 160), (200, 260)]), // merged → places 2,3
            dp(2, &[(300, 330)]),             // divided (with dp 3) → place 4
            dp(3, &[(340, 370)]),             // divided → place 4
            dp(4, &[(500, 520)]),             // no match
        ];
        let truth = vec![
            gt(1, 0, 60),
            gt(2, 100, 160),
            gt(3, 200, 260),
            gt(4, 300, 370),
        ];
        let report = classify_places(&discovered, &truth, 0.2);
        assert_eq!(report.correct, 1);
        assert_eq!(report.merged, 1);
        assert_eq!(report.divided, 2);
        assert_eq!(report.no_match, 1);
        assert_eq!(report.evaluable(), 4);
        assert!((report.correct_fraction() - 0.25).abs() < 1e-12);
        assert!((report.merged_fraction() - 0.25).abs() < 1e-12);
        assert!((report.divided_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "min_share")]
    fn bad_share_rejected() {
        let _ = classify_places(&[], &[], 1.5);
    }
}
