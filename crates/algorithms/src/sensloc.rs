//! SensLoc-style WiFi place discovery (Kim et al., SenSys 2010).
//!
//! §2.2.2 of the paper: *"PMWare uses algorithm described in SenseLoc for
//! place discovery using WiFi data. This algorithm uses tanimoto-coefficient
//! based similarity measure to find unique place signatures as well to
//! detect subsequent arrival and departures from a place."*
//!
//! The detector is an online state machine over WiFi scans:
//!
//! * **Entering.** Consecutive scans that are mutually similar (Tanimoto
//!   coefficient ≥ `enter_threshold`) indicate the user has settled; after
//!   `confirm_scans` such scans the stay becomes a visit candidate.
//! * **At a place.** The place fingerprint is the set of APs seen, with
//!   response rates; scans dissimilar from the fingerprint
//!   (< `depart_threshold`) for `depart_scans` consecutive scans confirm a
//!   departure.
//! * **Recognition.** A finished visit's fingerprint is compared with all
//!   known places; the best match above `match_threshold` merges the visit
//!   into that place, otherwise a new place is created.

use std::collections::{BTreeMap, BTreeSet};

use pmware_world::intern::Interner;
use pmware_world::{Bssid, SimDuration, SimTime, WifiScan};
use serde::{Deserialize, Serialize};

use crate::signature::{DiscoveredPlace, DiscoveredPlaceId, DiscoveredVisit, PlaceSignature};

/// Tanimoto (Jaccard) coefficient between two AP sets.
///
/// Returns 0 for two empty sets (nothing in common rather than identical —
/// an empty scan carries no place evidence).
pub fn tanimoto(a: &BTreeSet<Bssid>, b: &BTreeSet<Bssid>) -> f64 {
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Tunable parameters of the SensLoc detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensLocConfig {
    /// Similarity between consecutive scans required to begin a stay.
    pub enter_threshold: f64,
    /// Similarity to the current fingerprint below which a scan counts as a
    /// departure strike.
    pub depart_threshold: f64,
    /// Consecutive similar scans to confirm an arrival.
    pub confirm_scans: u32,
    /// Consecutive dissimilar scans to confirm a departure.
    pub depart_scans: u32,
    /// Similarity above which a finished visit matches a known place.
    pub match_threshold: f64,
    /// Minimum confirmed stay to record a visit.
    pub min_stay: SimDuration,
    /// An AP must appear in at least this fraction of a visit's scans to
    /// enter the signature (drops passers-by APs).
    pub min_response_rate: f64,
}

impl Default for SensLocConfig {
    fn default() -> Self {
        SensLocConfig {
            enter_threshold: 0.4,
            depart_threshold: 0.25,
            confirm_scans: 2,
            depart_scans: 2,
            match_threshold: 0.45,
            min_stay: SimDuration::from_minutes(10),
            min_response_rate: 0.3,
        }
    }
}

/// The online SensLoc detector.
///
/// Feed scans in time order with [`update`](SensLocDetector::update); pull
/// accumulated places with [`into_places`](SensLocDetector::into_places)
/// (or inspect them anytime with [`places`](SensLocDetector::places)).
#[derive(Debug, Clone)]
pub struct SensLocDetector {
    config: SensLocConfig,
    places: Vec<DiscoveredPlace>,
    /// BSSID ↔ dense symbol table for the inverted index. Symbols are
    /// process-local; checkpoints serialize the index keyed by raw BSSIDs
    /// (see the custom serde below), so the wire shape is unchanged and
    /// independent of intern order.
    aps: Interner<Bssid>,
    /// Inverted index, indexed by AP symbol: indices into `places` whose
    /// signature contains that AP. Recognition of a finished stay consults
    /// only the places sharing at least one AP with the new signature
    /// instead of scanning every known place.
    signature_index: Vec<Vec<usize>>,
    state: State,
}

/// The on-wire shape of a [`SensLocDetector`] — identical to the old
/// derived form, with the inverted index keyed by raw BSSIDs in ascending
/// order rather than by process-local symbols.
#[derive(Serialize, Deserialize)]
struct SensLocDetectorWire {
    config: SensLocConfig,
    places: Vec<DiscoveredPlace>,
    signature_index: BTreeMap<Bssid, Vec<usize>>,
    state: State,
}

impl Serialize for SensLocDetector {
    fn to_json_value(&self) -> serde::Value {
        let signature_index = self
            .aps
            .values()
            .iter()
            .zip(&self.signature_index)
            .filter(|(_, idxs)| !idxs.is_empty())
            .map(|(ap, idxs)| (*ap, idxs.clone()))
            .collect();
        SensLocDetectorWire {
            config: self.config.clone(),
            places: self.places.clone(),
            signature_index,
            state: self.state.clone(),
        }
        .to_json_value()
    }
}

impl<'de> Deserialize<'de> for SensLocDetector {
    fn from_json_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let wire = SensLocDetectorWire::from_json_value(value)?;
        let mut aps = Interner::new();
        let mut signature_index = Vec::with_capacity(wire.signature_index.len());
        for (ap, idxs) in wire.signature_index {
            let sym = aps.intern(&ap);
            debug_assert_eq!(sym as usize, signature_index.len());
            signature_index.push(idxs);
        }
        Ok(SensLocDetector {
            config: wire.config,
            places: wire.places,
            aps,
            signature_index,
            state: wire.state,
        })
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum State {
    Away {
        prev_scan: Option<(SimTime, BTreeSet<Bssid>)>,
        streak: u32,
        streak_start: Option<SimTime>,
        accum: BTreeMap<Bssid, u32>,
        scan_count: u32,
    },
    Staying(Stay),
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Stay {
    start: SimTime,
    last_inside: SimTime,
    ap_counts: BTreeMap<Bssid, u32>,
    scan_count: u32,
    strikes: u32,
}

impl Stay {
    fn fingerprint(&self) -> BTreeSet<Bssid> {
        self.ap_counts.keys().copied().collect()
    }

    fn signature(&self, min_rate: f64) -> BTreeSet<Bssid> {
        let need = (self.scan_count as f64 * min_rate).ceil() as u32;
        self.ap_counts
            .iter()
            .filter(|(_, n)| **n >= need.max(1))
            .map(|(b, _)| *b)
            .collect()
    }
}

/// Event emitted by the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WifiPlaceEvent {
    /// A stay began (reported when confirmed, timestamped at its start).
    Arrival {
        /// Stay start.
        time: SimTime,
    },
    /// A stay ended and was recorded against a place.
    Departure {
        /// The place the stay was attributed to.
        place: DiscoveredPlaceId,
        /// Whether this stay created the place (first visit).
        new_place: bool,
        /// Stay start.
        arrival: SimTime,
        /// Stay end.
        departure: SimTime,
    },
}

impl SensLocDetector {
    /// Creates a detector.
    pub fn new(config: SensLocConfig) -> Self {
        SensLocDetector {
            config,
            places: Vec::new(),
            aps: Interner::new(),
            signature_index: Vec::new(),
            state: State::Away {
                prev_scan: None,
                streak: 0,
                streak_start: None,
                accum: BTreeMap::new(),
                scan_count: 0,
            },
        }
    }

    /// Places discovered so far.
    pub fn places(&self) -> &[DiscoveredPlace] {
        &self.places
    }

    /// Whether the detector currently believes the user is staying.
    pub fn is_staying(&self) -> bool {
        matches!(self.state, State::Staying(_))
    }

    /// Feeds one scan; returns triggered events.
    pub fn update(&mut self, scan: &WifiScan) -> Vec<WifiPlaceEvent> {
        let aps: BTreeSet<Bssid> = scan.bssids().collect();
        let mut events = Vec::new();

        match &mut self.state {
            State::Away {
                prev_scan,
                streak,
                streak_start,
                accum,
                scan_count,
            } => {
                let similar = prev_scan
                    .as_ref()
                    .map(|(_, prev)| tanimoto(prev, &aps) >= self.config.enter_threshold)
                    .unwrap_or(false);
                if similar && !aps.is_empty() {
                    *streak += 1;
                    if streak_start.is_none() {
                        *streak_start = prev_scan.as_ref().map(|(t, _)| *t);
                    }
                    for ap in &aps {
                        *accum.entry(*ap).or_insert(0) += 1;
                    }
                    *scan_count += 1;
                    if *streak >= self.config.confirm_scans {
                        let start = streak_start.unwrap_or(scan.time);
                        let mut ap_counts = std::mem::take(accum);
                        // Include the first scan of the streak.
                        if let Some((_, prev)) = prev_scan {
                            for ap in prev.iter() {
                                *ap_counts.entry(*ap).or_insert(0) += 1;
                            }
                        }
                        let stay = Stay {
                            start,
                            last_inside: scan.time,
                            ap_counts,
                            scan_count: *scan_count + 1,
                            strikes: 0,
                        };
                        events.push(WifiPlaceEvent::Arrival { time: start });
                        self.state = State::Staying(stay);
                        return events;
                    }
                } else {
                    *streak = 0;
                    *streak_start = None;
                    accum.clear();
                    *scan_count = 0;
                }
                *prev_scan = Some((scan.time, aps));
            }
            State::Staying(stay) => {
                let sim = tanimoto(&stay.fingerprint(), &aps);
                if sim >= self.config.depart_threshold && !aps.is_empty() {
                    stay.strikes = 0;
                    stay.last_inside = scan.time;
                    stay.scan_count += 1;
                    for ap in &aps {
                        *stay.ap_counts.entry(*ap).or_insert(0) += 1;
                    }
                } else {
                    stay.strikes += 1;
                    if stay.strikes >= self.config.depart_scans {
                        let finished = stay.clone();
                        self.state = State::Away {
                            prev_scan: Some((scan.time, aps)),
                            streak: 0,
                            streak_start: None,
                            accum: BTreeMap::new(),
                            scan_count: 0,
                        };
                        if let Some(event) = self.finish_stay(finished) {
                            events.push(event);
                        }
                    }
                }
            }
        }
        events
    }

    /// Flushes an in-progress stay at end of stream (device shutdown).
    pub fn finish(&mut self) -> Vec<WifiPlaceEvent> {
        let mut events = Vec::new();
        if let State::Staying(stay) = std::mem::replace(
            &mut self.state,
            State::Away {
                prev_scan: None,
                streak: 0,
                streak_start: None,
                accum: BTreeMap::new(),
                scan_count: 0,
            },
        ) {
            if let Some(e) = self.finish_stay(stay) {
                events.push(e);
            }
        }
        events
    }

    /// Consumes the detector, returning all discovered places.
    pub fn into_places(mut self) -> Vec<DiscoveredPlace> {
        self.finish();
        self.places
    }

    /// The mutable index entry for an AP, interning it on first sight.
    fn index_slot(&mut self, ap: Bssid) -> &mut Vec<usize> {
        let sym = self.aps.intern(&ap) as usize;
        if sym == self.signature_index.len() {
            self.signature_index.push(Vec::new());
        }
        &mut self.signature_index[sym]
    }

    fn finish_stay(&mut self, stay: Stay) -> Option<WifiPlaceEvent> {
        let duration = stay.last_inside.since(stay.start);
        if duration < self.config.min_stay {
            return None;
        }
        let signature = stay.signature(self.config.min_response_rate);
        if signature.is_empty() {
            return None;
        }
        let visit = DiscoveredVisit {
            arrival: stay.start,
            departure: stay.last_inside,
        };

        // Match against known places. Places sharing no AP with the new
        // signature have a Tanimoto of 0 and cannot clear a positive match
        // threshold, so the candidate set comes from the inverted index
        // rather than a scan over every place. A BTreeSet keeps candidates
        // in ascending place order, preserving the earliest-index tie-break
        // of the former linear scan.
        let candidates: BTreeSet<usize> = if self.config.match_threshold > 0.0 {
            signature
                .iter()
                .filter_map(|ap| self.aps.get(ap))
                .flat_map(|sym| &self.signature_index[sym as usize])
                .copied()
                .collect()
        } else {
            (0..self.places.len()).collect()
        };
        let mut best: Option<(usize, f64)> = None;
        for &idx in &candidates {
            if let PlaceSignature::WifiAps(aps) = &self.places[idx].signature {
                let sim = tanimoto(aps, &signature);
                if sim >= self.config.match_threshold && best.is_none_or(|(_, b)| sim > b) {
                    best = Some((idx, sim));
                }
            }
        }
        match best {
            Some((idx, _)) => {
                self.places[idx].visits.push(visit);
                // Refresh the signature with newly seen APs (union keeps
                // recognition robust to AP churn), indexing the additions.
                if let PlaceSignature::WifiAps(aps) = &mut self.places[idx].signature {
                    aps.extend(signature.iter().copied());
                }
                for &ap in &signature {
                    let entry = self.index_slot(ap);
                    if !entry.contains(&idx) {
                        entry.push(idx);
                    }
                }
                Some(WifiPlaceEvent::Departure {
                    place: self.places[idx].id,
                    new_place: false,
                    arrival: visit.arrival,
                    departure: visit.departure,
                })
            }
            None => {
                let idx = self.places.len();
                let id = DiscoveredPlaceId(idx as u32);
                for &ap in &signature {
                    self.index_slot(ap).push(idx);
                }
                self.places.push(DiscoveredPlace::new(
                    id,
                    PlaceSignature::WifiAps(signature),
                    vec![visit],
                ));
                Some(WifiPlaceEvent::Departure {
                    place: id,
                    new_place: true,
                    arrival: visit.arrival,
                    departure: visit.departure,
                })
            }
        }
    }
}

/// Batch driver: runs the detector over a full scan history.
pub fn discover_places(scans: &[WifiScan], config: &SensLocConfig) -> Vec<DiscoveredPlace> {
    let mut detector = SensLocDetector::new(config.clone());
    for scan in scans {
        let _ = detector.update(scan);
    }
    detector.into_places()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmware_world::WifiReading;

    fn scan(minute: u64, ids: &[u64]) -> WifiScan {
        WifiScan {
            time: SimTime::from_seconds(minute * 60),
            readings: ids
                .iter()
                .map(|&b| WifiReading {
                    bssid: Bssid(b),
                    rssi_dbm: -50.0,
                })
                .collect(),
        }
    }

    #[test]
    fn tanimoto_basics() {
        let a: BTreeSet<Bssid> = [Bssid(1), Bssid(2), Bssid(3)].into_iter().collect();
        let b: BTreeSet<Bssid> = [Bssid(2), Bssid(3), Bssid(4)].into_iter().collect();
        assert!((tanimoto(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(tanimoto(&a, &a), 1.0);
        let empty = BTreeSet::new();
        assert_eq!(tanimoto(&a, &empty), 0.0);
        assert_eq!(tanimoto(&empty, &empty), 0.0);
    }

    /// Scans at "home" with APs {1,2,3} and per-scan dropout of one AP.
    fn home_scans(start_min: u64, count: u64) -> Vec<WifiScan> {
        (0..count)
            .map(|i| {
                let m = start_min + i;
                match m % 3 {
                    0 => scan(m, &[1, 2]),
                    1 => scan(m, &[1, 2, 3]),
                    _ => scan(m, &[2, 3]),
                }
            })
            .collect()
    }

    #[test]
    fn single_stay_discovered() {
        let scans = home_scans(0, 30);
        let places = discover_places(&scans, &SensLocConfig::default());
        assert_eq!(places.len(), 1, "{places:?}");
        let place = &places[0];
        assert_eq!(place.visits.len(), 1);
        assert!(place.visits[0].duration() >= SimDuration::from_minutes(25));
        if let PlaceSignature::WifiAps(aps) = &place.signature {
            assert!(aps.contains(&Bssid(1)));
            assert!(aps.contains(&Bssid(2)));
            assert!(aps.contains(&Bssid(3)));
        } else {
            panic!("expected AP signature");
        }
    }

    #[test]
    fn revisit_matches_same_place() {
        let mut scans = home_scans(0, 30);
        // Travel: disjoint transient APs, one scan each.
        for m in 30..40 {
            scans.push(scan(m, &[100 + m, 200 + m]));
        }
        scans.extend(home_scans(40, 30));
        let places = discover_places(&scans, &SensLocConfig::default());
        assert_eq!(places.len(), 1, "revisit must merge: {places:?}");
        assert_eq!(places[0].visits.len(), 2);
    }

    #[test]
    fn two_distinct_places() {
        let mut scans = home_scans(0, 30);
        for m in 30..35 {
            scans.push(scan(m, &[1_000 + m]));
        }
        // Different AP set at "work".
        for i in 0..30 {
            let m = 35 + i;
            let ids: &[u64] = if m % 2 == 0 { &[7, 8, 9] } else { &[7, 9] };
            scans.push(scan(m, ids));
        }
        let places = discover_places(&scans, &SensLocConfig::default());
        assert_eq!(places.len(), 2, "{places:?}");
    }

    #[test]
    fn short_stay_is_dropped() {
        let scans = home_scans(0, 5); // under min_stay
        let places = discover_places(&scans, &SensLocConfig::default());
        assert!(places.is_empty());
    }

    #[test]
    fn empty_scans_never_confirm_a_stay() {
        let scans: Vec<WifiScan> = (0..30).map(|m| scan(m, &[])).collect();
        let places = discover_places(&scans, &SensLocConfig::default());
        assert!(places.is_empty());
    }

    #[test]
    fn arrival_event_fires_once_per_stay() {
        let scans = home_scans(0, 30);
        let mut det = SensLocDetector::new(SensLocConfig::default());
        let mut arrivals = 0;
        for s in &scans {
            for e in det.update(s) {
                if matches!(e, WifiPlaceEvent::Arrival { .. }) {
                    arrivals += 1;
                }
            }
        }
        assert_eq!(arrivals, 1);
        assert!(det.is_staying());
        let events = det.finish();
        assert_eq!(events.len(), 1);
        match events[0] {
            WifiPlaceEvent::Departure { new_place, .. } => assert!(new_place),
            _ => panic!("expected departure"),
        }
    }

    #[test]
    fn departure_strikes_tolerate_one_bad_scan() {
        let mut scans = home_scans(0, 15);
        scans.push(scan(15, &[500])); // one glitch scan
        scans.extend(home_scans(16, 15));
        let places = discover_places(&scans, &SensLocConfig::default());
        assert_eq!(places.len(), 1);
        assert_eq!(places[0].visits.len(), 1, "glitch must not split the stay");
    }
}
