//! Route discovery and similarity.
//!
//! §2.1.2 of the paper: *"The path taken to travel between two places is
//! marked as a route. \[…\] it comprises of a series of timestamp ordered
//! GPS coordinates or set of time ordered Cell IDs."* PMWare tracks routes
//! in a **low accuracy** mode (GSM only) or a **high accuracy** mode (GPS
//! trace, §2.2.2); the cloud hosts "miscellaneous algorithms such as route
//! similarity" (§2.3.1).

use pmware_geo::{Meters, Polyline};
use pmware_world::{CellGlobalId, GpsFix, GsmObservation, SimTime};
use serde::{Deserialize, Serialize};

use crate::signature::DiscoveredPlaceId;

/// Identifier of a canonical route in a [`RouteStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RouteId(pub u32);

/// The geometry of one traversal, depending on tracking mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RouteGeometry {
    /// Low-accuracy mode: the time-ordered cell sequence observed en route
    /// (consecutive duplicates removed): `R = {c1, c2, …, c10}`.
    CellSequence(Vec<CellGlobalId>),
    /// High-accuracy mode: a GPS trace: `R = {g1, g2, …, g15}`.
    GpsTrace(Polyline),
}

impl RouteGeometry {
    /// Number of elements (cells or trace vertices).
    pub fn len(&self) -> usize {
        match self {
            RouteGeometry::CellSequence(c) => c.len(),
            RouteGeometry::GpsTrace(p) => p.len(),
        }
    }

    /// Returns `true` when the geometry carries no information.
    pub fn is_empty(&self) -> bool {
        match self {
            RouteGeometry::CellSequence(c) => c.is_empty(),
            RouteGeometry::GpsTrace(_) => false,
        }
    }
}

/// One observed traversal between two discovered places.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteObservation {
    /// Departure place.
    pub from: DiscoveredPlaceId,
    /// Arrival place.
    pub to: DiscoveredPlaceId,
    /// Departure time.
    pub start: SimTime,
    /// Arrival time.
    pub end: SimTime,
    /// The recorded geometry.
    pub geometry: RouteGeometry,
}

/// Extracts the deduplicated cell sequence observed in `(start, end)` —
/// the low-accuracy route geometry.
pub fn cell_route(observations: &[GsmObservation], start: SimTime, end: SimTime) -> RouteGeometry {
    let mut cells: Vec<CellGlobalId> = Vec::new();
    for obs in observations {
        if obs.time < start || obs.time > end {
            continue;
        }
        if cells.last() != Some(&obs.cell) {
            cells.push(obs.cell);
        }
    }
    RouteGeometry::CellSequence(cells)
}

/// Extracts a GPS trace polyline for `(start, end)` — the high-accuracy
/// route geometry. Returns `None` when fewer than two fixes fall in the
/// window.
pub fn gps_route(fixes: &[GpsFix], start: SimTime, end: SimTime) -> Option<RouteGeometry> {
    let pts: Vec<_> = fixes
        .iter()
        .filter(|f| f.time >= start && f.time <= end)
        .map(|f| f.position)
        .collect();
    Polyline::new(pts).ok().map(RouteGeometry::GpsTrace)
}

/// Similarity between two routes in `[0, 1]`.
///
/// * Cell sequences: normalised longest-common-subsequence ratio — robust
///   to oscillation-induced insertions.
/// * GPS traces: symmetric mean closest-point distance mapped through
///   `max(0, 1 - d / tolerance)` with a 250 m tolerance.
/// * Mixed geometries are incomparable and score 0.
pub fn route_similarity(a: &RouteGeometry, b: &RouteGeometry) -> f64 {
    match (a, b) {
        (RouteGeometry::CellSequence(x), RouteGeometry::CellSequence(y)) => {
            if x.is_empty() || y.is_empty() {
                return 0.0;
            }
            let lcs = lcs_len(x, y);
            lcs as f64 / x.len().max(y.len()) as f64
        }
        (RouteGeometry::GpsTrace(x), RouteGeometry::GpsTrace(y)) => {
            let d = symmetric_mean_distance(x, y);
            (1.0 - d.value() / 250.0).max(0.0)
        }
        _ => 0.0,
    }
}

fn lcs_len<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for x in a {
        for (j, y) in b.iter().enumerate() {
            cur[j + 1] = if x == y {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

fn symmetric_mean_distance(a: &Polyline, b: &Polyline) -> Meters {
    let one_way = |from: &Polyline, to: &Polyline| -> f64 {
        let pts = from.points();
        pts.iter().map(|p| to.distance_to(*p).value()).sum::<f64>() / pts.len() as f64
    };
    Meters::new((one_way(a, b) + one_way(b, a)) / 2.0)
}

/// A canonical route with usage statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CanonicalRoute {
    /// Store-local identifier.
    pub id: RouteId,
    /// Endpoints (directed).
    pub from: DiscoveredPlaceId,
    /// Arrival endpoint.
    pub to: DiscoveredPlaceId,
    /// Representative geometry (from the first traversal).
    pub geometry: RouteGeometry,
    /// How many traversals matched this route — the "route usage frequency"
    /// the Route API exposes (§2.3.3).
    pub usage_count: u32,
    /// Traversal start times, for temporal analytics.
    pub traversals: Vec<SimTime>,
}

/// Clusters traversals into canonical routes by endpoint and similarity.
///
/// # Examples
///
/// ```
/// use pmware_algorithms::route::{RouteGeometry, RouteObservation, RouteStore};
/// use pmware_algorithms::signature::DiscoveredPlaceId;
/// use pmware_world::SimTime;
///
/// let mut store = RouteStore::new(0.5);
/// let obs = RouteObservation {
///     from: DiscoveredPlaceId(0),
///     to: DiscoveredPlaceId(1),
///     start: SimTime::from_seconds(0),
///     end: SimTime::from_seconds(600),
///     geometry: RouteGeometry::CellSequence(vec![]),
/// };
/// // Empty geometry is rejected.
/// assert!(store.record(obs).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteStore {
    routes: Vec<CanonicalRoute>,
    match_threshold: f64,
}

impl RouteStore {
    /// Creates a store; traversals with similarity ≥ `match_threshold` to a
    /// canonical route (with the same endpoints) are counted against it.
    ///
    /// # Panics
    ///
    /// Panics if `match_threshold` is outside `[0, 1]`.
    pub fn new(match_threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&match_threshold),
            "threshold must be a fraction, got {match_threshold}"
        );
        RouteStore {
            routes: Vec::new(),
            match_threshold,
        }
    }

    /// Canonical routes discovered so far.
    pub fn routes(&self) -> &[CanonicalRoute] {
        &self.routes
    }

    /// Records one traversal; returns the canonical route id it was matched
    /// or assigned to, or `None` if the geometry was empty.
    pub fn record(&mut self, observation: RouteObservation) -> Option<RouteId> {
        if observation.geometry.is_empty() {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        for (idx, route) in self.routes.iter().enumerate() {
            if route.from != observation.from || route.to != observation.to {
                continue;
            }
            let sim = route_similarity(&route.geometry, &observation.geometry);
            if sim >= self.match_threshold && best.is_none_or(|(_, b)| sim > b) {
                best = Some((idx, sim));
            }
        }
        match best {
            Some((idx, _)) => {
                self.routes[idx].usage_count += 1;
                self.routes[idx].traversals.push(observation.start);
                Some(self.routes[idx].id)
            }
            None => {
                let id = RouteId(self.routes.len() as u32);
                self.routes.push(CanonicalRoute {
                    id,
                    from: observation.from,
                    to: observation.to,
                    geometry: observation.geometry,
                    usage_count: 1,
                    traversals: vec![observation.start],
                });
                Some(id)
            }
        }
    }

    /// Routes between two endpoints, most used first.
    pub fn between(&self, from: DiscoveredPlaceId, to: DiscoveredPlaceId) -> Vec<&CanonicalRoute> {
        let mut out: Vec<&CanonicalRoute> = self
            .routes
            .iter()
            .filter(|r| r.from == from && r.to == to)
            .collect();
        out.sort_by_key(|r| std::cmp::Reverse(r.usage_count));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmware_geo::GeoPoint;
    use pmware_world::tower::NetworkLayer;
    use pmware_world::{CellId, Lac, Plmn};

    fn cell(id: u32) -> CellGlobalId {
        CellGlobalId {
            plmn: Plmn { mcc: 404, mnc: 45 },
            lac: Lac(1),
            cell: CellId(id),
        }
    }

    fn obs(minute: u64, c: CellGlobalId) -> GsmObservation {
        GsmObservation {
            time: SimTime::from_seconds(minute * 60),
            cell: c,
            layer: NetworkLayer::G2,
            rssi_dbm: -70.0,
        }
    }

    fn p(lat: f64, lng: f64) -> GeoPoint {
        GeoPoint::new(lat, lng).unwrap()
    }

    #[test]
    fn cell_route_dedups_consecutive() {
        let stream = vec![
            obs(0, cell(1)),
            obs(1, cell(1)),
            obs(2, cell(2)),
            obs(3, cell(2)),
            obs(4, cell(3)),
            obs(5, cell(2)),
        ];
        let geom = cell_route(
            &stream,
            SimTime::from_seconds(0),
            SimTime::from_seconds(360),
        );
        match geom {
            RouteGeometry::CellSequence(cells) => {
                assert_eq!(cells, vec![cell(1), cell(2), cell(3), cell(2)]);
            }
            _ => panic!("expected cells"),
        }
    }

    #[test]
    fn cell_route_windows_by_time() {
        let stream = vec![obs(0, cell(1)), obs(10, cell(2)), obs(20, cell(3))];
        let geom = cell_route(
            &stream,
            SimTime::from_seconds(5 * 60),
            SimTime::from_seconds(15 * 60),
        );
        match geom {
            RouteGeometry::CellSequence(cells) => assert_eq!(cells, vec![cell(2)]),
            _ => panic!("expected cells"),
        }
    }

    #[test]
    fn gps_route_needs_two_fixes() {
        let fixes = vec![GpsFix {
            time: SimTime::from_seconds(0),
            position: p(0.0, 0.0),
            accuracy: Meters::new(5.0),
        }];
        assert!(gps_route(&fixes, SimTime::from_seconds(0), SimTime::from_seconds(60)).is_none());
    }

    #[test]
    fn identical_cell_routes_have_similarity_one() {
        let a = RouteGeometry::CellSequence(vec![cell(1), cell(2), cell(3)]);
        let b = a.clone();
        assert_eq!(route_similarity(&a, &b), 1.0);
    }

    #[test]
    fn oscillation_insertions_keep_similarity_high() {
        let a = RouteGeometry::CellSequence(vec![cell(1), cell(2), cell(3), cell(4)]);
        let b = RouteGeometry::CellSequence(vec![
            cell(1),
            cell(9), // oscillation glitch
            cell(2),
            cell(3),
            cell(4),
        ]);
        let sim = route_similarity(&a, &b);
        assert!(sim >= 0.75, "got {sim}");
    }

    #[test]
    fn disjoint_cell_routes_score_zero() {
        let a = RouteGeometry::CellSequence(vec![cell(1), cell(2)]);
        let b = RouteGeometry::CellSequence(vec![cell(8), cell(9)]);
        assert_eq!(route_similarity(&a, &b), 0.0);
    }

    #[test]
    fn mixed_geometries_incomparable() {
        let a = RouteGeometry::CellSequence(vec![cell(1)]);
        let b = RouteGeometry::GpsTrace(Polyline::new(vec![p(0.0, 0.0), p(0.0, 0.01)]).unwrap());
        assert_eq!(route_similarity(&a, &b), 0.0);
    }

    #[test]
    fn gps_similarity_distance_sensitive() {
        let a = RouteGeometry::GpsTrace(Polyline::new(vec![p(0.0, 0.0), p(0.0, 0.02)]).unwrap());
        // Same corridor, 50 m to the north.
        let north = p(0.0, 0.0).destination(0.0, Meters::new(50.0));
        let north2 = p(0.0, 0.02).destination(0.0, Meters::new(50.0));
        let b = RouteGeometry::GpsTrace(Polyline::new(vec![north, north2]).unwrap());
        let sim_close = route_similarity(&a, &b);
        assert!(sim_close > 0.7, "got {sim_close}");
        // A parallel street 2 km away scores 0.
        let far1 = p(0.0, 0.0).destination(0.0, Meters::new(2_000.0));
        let far2 = p(0.0, 0.02).destination(0.0, Meters::new(2_000.0));
        let c = RouteGeometry::GpsTrace(Polyline::new(vec![far1, far2]).unwrap());
        assert_eq!(route_similarity(&a, &c), 0.0);
    }

    #[test]
    fn store_counts_repeated_commute() {
        let mut store = RouteStore::new(0.5);
        for day in 0..5 {
            let obs = RouteObservation {
                from: DiscoveredPlaceId(0),
                to: DiscoveredPlaceId(1),
                start: SimTime::from_day_time(day, 8, 30, 0),
                end: SimTime::from_day_time(day, 9, 0, 0),
                geometry: RouteGeometry::CellSequence(vec![cell(1), cell(2), cell(3)]),
            };
            store.record(obs);
        }
        assert_eq!(store.routes().len(), 1);
        assert_eq!(store.routes()[0].usage_count, 5);
        assert_eq!(store.routes()[0].traversals.len(), 5);
    }

    #[test]
    fn store_separates_directions_and_detours() {
        let mut store = RouteStore::new(0.5);
        let forward = RouteObservation {
            from: DiscoveredPlaceId(0),
            to: DiscoveredPlaceId(1),
            start: SimTime::from_seconds(0),
            end: SimTime::from_seconds(600),
            geometry: RouteGeometry::CellSequence(vec![cell(1), cell(2), cell(3)]),
        };
        let backward = RouteObservation {
            from: DiscoveredPlaceId(1),
            to: DiscoveredPlaceId(0),
            start: SimTime::from_seconds(10_000),
            end: SimTime::from_seconds(10_600),
            geometry: RouteGeometry::CellSequence(vec![cell(3), cell(2), cell(1)]),
        };
        let detour = RouteObservation {
            from: DiscoveredPlaceId(0),
            to: DiscoveredPlaceId(1),
            start: SimTime::from_seconds(20_000),
            end: SimTime::from_seconds(21_000),
            geometry: RouteGeometry::CellSequence(vec![
                cell(1),
                cell(7),
                cell(8),
                cell(9),
                cell(10),
                cell(3),
            ]),
        };
        store.record(forward);
        store.record(backward);
        store.record(detour);
        assert_eq!(store.routes().len(), 3);
        let between = store.between(DiscoveredPlaceId(0), DiscoveredPlaceId(1));
        assert_eq!(between.len(), 2);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        let _ = RouteStore::new(2.0);
    }
}
