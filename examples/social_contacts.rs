//! Social discovery (§2.2.2): detecting the colleagues a user encounters,
//! via Bluetooth proximity, with targeted sensing and cloud sync.
//!
//! Two simulated colleagues share a workplace; one runs PMWare with a
//! meetup app that wants social contacts. PMWare duty-cycles Bluetooth
//! inquiries while stationary, records encounters into the mobility
//! profile, and the app queries the cloud for place-specific contacts.
//!
//! ```sh
//! cargo run --release --example social_contacts
//! ```

use pmware::core::pms::PeerProvider;
use pmware::prelude::*;
use serde_json::json;

/// The other participants' phones, as the Bluetooth layer sees them.
struct Colleagues {
    others: Vec<(String, Itinerary)>,
}

impl PeerProvider for Colleagues {
    fn peers_at(&self, t: SimTime) -> Vec<(String, GeoPoint)> {
        self.others
            .iter()
            .map(|(name, it)| (name.clone(), it.position_at(t)))
            .collect()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(41)
        .build();
    // Enough agents that some share a workplace.
    let population = Population::generate(&world, 8, 42);
    let days = 5;

    // Pick two colleagues.
    let (me, colleague) = {
        let mut pair = None;
        'outer: for (i, a) in population.agents().iter().enumerate() {
            for b in &population.agents()[i + 1..] {
                if a.workplace() == b.workplace() {
                    pair = Some((a.id(), b.id()));
                    break 'outer;
                }
            }
        }
        pair.expect("eight agents over twelve offices usually collide; reseed if not")
    };
    println!("participant {me} and colleague {colleague} share an office");

    let my_itinerary = population.itinerary(&world, me, days);
    let their_itinerary = population.itinerary(&world, colleague, days);

    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let phone = Device::new(env, &my_itinerary, EnergyModel::htc_explorer(), 43);
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 44));
    let mut pms =
        PmwareMobileService::new(phone, cloud, PmsConfig::for_participant(4), SimTime::EPOCH)?;

    // A meetup app that wants social contacts (targeted sensing: PMWare
    // only scans Bluetooth while the user is stationary at a place).
    let rx = pms.register_app(
        "meetups",
        AppRequirement::places(Granularity::Building).with_social(),
        IntentFilter::for_actions([actions::SOCIAL_CONTACT]),
    );
    pms.set_peer_provider(Box::new(Colleagues {
        others: vec![("colleague-phone".to_owned(), their_itinerary)],
    }));

    let end = SimTime::from_day_time(days, 0, 0, 0);
    pms.run(end)?;

    let encounters = pms.counters().encounters;
    println!("encounters recorded by PMS: {encounters}");
    let mut app_events = 0;
    for intent in rx.try_iter() {
        app_events += 1;
        println!(
            "  contact {} at place {:?} ({})",
            intent.extras["contact"], intent.extras["place"], intent.time
        );
    }
    println!("intents delivered to the meetup app: {app_events}");

    // §2.3.3: place-specific contact retrieval from the cloud.
    let resp = pms
        .cloud_client_mut()
        .call("/api/v1/social/query", json!({"place": null}), end)?;
    let stored = resp.body["contacts"].as_array().map(Vec::len).unwrap_or(0);
    println!("contacts stored on the cloud instance: {stored}");

    let bt_energy = pms.battery().drained_by(Interface::Bluetooth);
    println!("bluetooth energy spent: {bt_energy:.1} J (targeted: stationary-only scans)");
    Ok(())
}
