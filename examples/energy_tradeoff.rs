//! The energy–accuracy trade-off (§1 limitation 1, §2.2.2): what each
//! sensing strategy costs on the Figure 1 battery, and what PMWare's
//! triggered sensing buys.
//!
//! ```sh
//! cargo run --release --example energy_tradeoff
//! ```

use pmware::device::energy::figure1_dataset;
use pmware::prelude::*;

fn main() {
    // Part 1 — the raw interface costs (Figure 1).
    let model = EnergyModel::htc_explorer();
    let periods = [
        SimDuration::from_seconds(30),
        SimDuration::from_minutes(1),
        SimDuration::from_minutes(5),
    ];
    println!("battery duration (hours) under continuous sensing:");
    print!("{:>10}", "period");
    for i in Interface::ALL {
        print!("{:>15}", i.label());
    }
    println!();
    for row in figure1_dataset(&model, &periods) {
        print!("{:>10}", row.period.to_string());
        for (_, h) in &row.hours {
            print!("{h:>15.1}");
        }
        println!();
    }
    let minute = SimDuration::from_minutes(1);
    println!(
        "\nGSM@1min lasts {:.1}x longer than GPS@1min (paper: ~11x)",
        model.battery_duration_hours(Interface::Gsm, minute)
            / model.battery_duration_hours(Interface::Gps, minute)
    );

    // Part 2 — what a *plan* costs: PMWare's triggered mix vs naive mixes.
    println!("\ncombined sensing plans (idealised, stationary user):");
    let plans: [(&str, Vec<(Interface, SimDuration)>); 4] = [
        ("gsm-only", vec![(Interface::Gsm, minute)]),
        (
            "pmware triggered (gsm + wifi/10min)",
            vec![
                (Interface::Gsm, minute),
                (Interface::WifiScan, SimDuration::from_minutes(10)),
                (Interface::Accelerometer, minute),
            ],
        ),
        (
            "continuous wifi (gsm + wifi/1min)",
            vec![(Interface::Gsm, minute), (Interface::WifiScan, minute)],
        ),
        (
            "continuous gps (gsm + gps/1min)",
            vec![(Interface::Gsm, minute), (Interface::Gps, minute)],
        ),
    ];
    for (name, plan) in &plans {
        println!(
            "  {:<38} {:>7.1} h",
            name,
            model.combined_duration_hours(plan)
        );
    }
    println!(
        "\nThe full closed-loop version of this comparison (real movement,\n\
         real discovery quality) is `cargo run --release -p pmware-bench --bin ablation_triggered`."
    );
}
