//! The energy–accuracy trade-off (§1 limitation 1, §2.2.2): what each
//! sensing strategy costs on the Figure 1 battery, and what PMWare's
//! triggered sensing buys.
//!
//! ```sh
//! cargo run --release --example energy_tradeoff
//! ```

use pmware::device::energy::figure1_dataset;
use pmware::prelude::*;

fn main() {
    // Part 1 — the raw interface costs (Figure 1).
    let model = EnergyModel::htc_explorer();
    let periods = [
        SimDuration::from_seconds(30),
        SimDuration::from_minutes(1),
        SimDuration::from_minutes(5),
    ];
    println!("battery duration (hours) under continuous sensing:");
    print!("{:>10}", "period");
    for i in Interface::ALL {
        print!("{:>15}", i.label());
    }
    println!();
    for row in figure1_dataset(&model, &periods) {
        print!("{:>10}", row.period.to_string());
        for (_, h) in &row.hours {
            print!("{h:>15.1}");
        }
        println!();
    }
    let minute = SimDuration::from_minutes(1);
    println!(
        "\nGSM@1min lasts {:.1}x longer than GPS@1min (paper: ~11x)",
        model.battery_duration_hours(Interface::Gsm, minute)
            / model.battery_duration_hours(Interface::Gps, minute)
    );

    // Part 2 — what a *plan* costs: PMWare's triggered mix vs naive mixes.
    println!("\ncombined sensing plans (idealised, stationary user):");
    let plans: [(&str, Vec<(Interface, SimDuration)>); 4] = [
        ("gsm-only", vec![(Interface::Gsm, minute)]),
        (
            "pmware triggered (gsm + wifi/10min)",
            vec![
                (Interface::Gsm, minute),
                (Interface::WifiScan, SimDuration::from_minutes(10)),
                (Interface::Accelerometer, minute),
            ],
        ),
        (
            "continuous wifi (gsm + wifi/1min)",
            vec![(Interface::Gsm, minute), (Interface::WifiScan, minute)],
        ),
        (
            "continuous gps (gsm + gps/1min)",
            vec![(Interface::Gsm, minute), (Interface::Gps, minute)],
        ),
    ];
    for (name, plan) in &plans {
        println!(
            "  {:<38} {:>7.1} h",
            name,
            model.combined_duration_hours(plan)
        );
    }
    // Part 3 — the same accounting, live. One simulated day on a real
    // itinerary with the metrics registry attached: per-interface energy
    // is read back from the registry snapshot (what `--metrics-out`
    // exports), not from the battery object — the registry mirrors the
    // battery to the microjoule.
    let world = WorldBuilder::new(RegionProfile::test_tiny())
        .seed(11)
        .build();
    let population = Population::generate(&world, 1, 11);
    let itinerary = population.itinerary(&world, population.agents()[0].id(), 1);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let device = Device::new(env, &itinerary, EnergyModel::htc_explorer(), 11);
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 11));
    let obs = Obs::new();
    let mut pms =
        PmwareMobileService::new(device, cloud, PmsConfig::for_participant(0), SimTime::EPOCH)
            .expect("registration succeeds");
    pms.set_obs(&obs.for_actor("p0000"));
    let _rx = pms.register_app(
        "example",
        AppRequirement::places(Granularity::Building),
        IntentFilter::all(),
    );
    pms.run(SimTime::from_day_time(1, 0, 0, 0))
        .expect("run succeeds");
    let battery_joules = pms.battery().drained_joules();

    let snapshot = obs.metrics().expect("live registry").snapshot();
    println!("\none simulated day, read back from the metrics registry:");
    for interface in Interface::ALL {
        let energy_key = format!(
            "device_energy_microjoules_total{{interface=\"{}\",user=\"p0000\"}}",
            interface.label()
        );
        let samples_key = format!(
            "device_samples_total{{interface=\"{}\",user=\"p0000\"}}",
            interface.label()
        );
        println!(
            "  {:>14}: {:>8.1} J over {} samples",
            interface.label(),
            snapshot.counter_value(&energy_key) as f64 / 1e6,
            snapshot.counter_value(&samples_key),
        );
    }
    let total_uj = snapshot.counter_sum_with_prefix("device_energy_microjoules_total");
    println!(
        "  registry total {:.1} J (battery object agrees: {:.1} J)",
        total_uj as f64 / 1e6,
        battery_joules,
    );

    println!(
        "\nThe full closed-loop version of this comparison (real movement,\n\
         real discovery quality) is `cargo run --release -p pmware-bench --bin ablation_triggered`."
    );
}
