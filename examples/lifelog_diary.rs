//! The life-logging application of §3 (Figure 4) plus the cloud analytics
//! of §2.3.2: visit diary, semantic tagging, and the three example
//! prediction queries.
//!
//! ```sh
//! cargo run --release --example lifelog_diary
//! ```

use pmware::prelude::*;
use serde_json::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(31)
        .build();
    let population = Population::generate(&world, 1, 32);
    let agent = &population.agents()[0];
    let days = 14;
    let itinerary = population.itinerary(&world, agent.id(), days);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let phone = Device::new(env, &itinerary, EnergyModel::htc_explorer(), 33);
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 34));
    let mut pms =
        PmwareMobileService::new(phone, cloud, PmsConfig::for_participant(3), SimTime::EPOCH)?;

    let rx = pms.register_app("lifelog", LifeLogApp::requirement(), LifeLogApp::filter());
    let mut lifelog = LifeLogApp::new(agent.tag_probability(), 35);

    for day in 1..=days {
        pms.run(SimTime::from_day_time(day, 0, 0, 0))?;
        for intent in rx.try_iter() {
            lifelog.on_intent(&intent);
        }
        // Tags decided in the app flow back into PMWare (§2.2.5) and are
        // synced to the cloud at the next maintenance pass.
        for (place, label) in lifelog.take_pending_labels() {
            pms.label_place(pmware::core::registry::PmPlaceId(place), label);
        }
    }

    // Figure 4b/4c: the places list with stay time and visiting days.
    println!("— mobility history (Figure 4 analogue) —");
    print!("{}", lifelog.report());
    println!(
        "tagged {} of {} places",
        lifelog.tagged_count(),
        lifelog.history().len()
    );

    // §2.3.2 analytics — the three example queries, answered by the cloud
    // from the synced mobility profiles.
    let end = SimTime::from_day_time(days, 0, 0, 0);
    // "Home" is the place where nights are spent; find its stable id from
    // PMS's registry by night visits.
    let home = pms
        .places()
        .iter()
        .max_by_key(|p| {
            p.gca_visits
                .iter()
                .filter(|v| v.arrival.hour_of_day() >= 17 || v.arrival.hour_of_day() <= 5)
                .count()
        })
        .expect("places discovered")
        .id;

    println!("\n— cloud analytics (§2.3.2) —");
    let client = pms.cloud_client_mut();

    // Query 1: likely time the user reaches home in the evening.
    let resp = client.call(
        "/api/v1/analytics/arrival",
        json!({"place": home.0, "window": [15, 24]}),
        end,
    )?;
    let s = resp.body["second_of_day"].as_u64().unwrap_or(0);
    println!(
        "1. typical evening home arrival: {:02}:{:02}",
        s / 3600,
        (s % 3600) / 60
    );

    // Query 2: when is the next visit to the most-frequented other place?
    // (Chosen by online-confirmed visits so the cloud's profile history —
    // which the predictor reads — actually contains it.)
    let work = pms
        .places()
        .iter()
        .filter(|p| p.id != home)
        .max_by_key(|p| p.visit_count)
        .expect("multiple places")
        .id;
    match pms.cloud_client_mut().call(
        "/api/v1/analytics/next_visit",
        json!({"place": work.0, "now": end}),
        end,
    ) {
        Ok(resp) => {
            let next: SimTime = serde_json::from_value(resp.body["time"].clone())?;
            println!("2. next predicted visit to place {}: {next}", work.0);
        }
        Err(e) => println!("2. no visit pattern for place {} yet ({e})", work.0),
    }

    // Query 3: how frequently does the user visit that place?
    let resp = pms.cloud_client_mut().call(
        "/api/v1/analytics/frequency",
        json!({"place": work.0}),
        end,
    )?;
    println!(
        "3. visit frequency of place {}: {:.1} visits/week ({} total)",
        work.0, resp.body["visits_per_week"], resp.body["visit_count"]
    );

    // Bonus: the Markov "where next" distribution from home.
    let resp = pms.cloud_client_mut().call(
        "/api/v1/analytics/next_place",
        json!({"place": home.0}),
        end,
    )?;
    println!(
        "   after home, the user usually goes to: {}",
        resp.body["predictions"]
    );
    Ok(())
}
