//! The paper's §2.4 walk-through use case: a To-Do application gets
//! workplace arrival/departure alerts at building-level granularity,
//! tracked between 9 AM and 6 PM.
//!
//! ```sh
//! cargo run --release --example todo_reminders
//! ```

use pmware::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(11)
        .build();
    let population = Population::generate(&world, 1, 12);
    let agent = &population.agents()[0];
    let days = 7;
    let itinerary = population.itinerary(&world, agent.id(), days);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let phone = Device::new(env, &itinerary, EnergyModel::htc_explorer(), 13);
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 14));
    let mut pms =
        PmwareMobileService::new(phone, cloud, PmsConfig::for_participant(1), SimTime::EPOCH)?;

    // §2.4 step 1–2: the To-Do app frames its request (building-level,
    // 9 AM – 6 PM) with its own intent filter, and registers with PMS.
    let rx = pms.register_app("todo", TodoApp::requirement(), TodoApp::filter());
    let mut todo = TodoApp::new();
    todo.add_arrival_note("review the sprint board");
    todo.add_departure_note("pick up groceries");

    // Each morning the user (re-)confirms which discovered place is
    // "work" — in the study this came from the life-logging UI's semantic
    // tag. The heuristic stand-in: the place with the most tracker-
    // confirmed visits whose arrivals cluster in the morning, excluding
    // where the user sleeps.
    let mut reminders = Vec::new();
    for day in 1..=days {
        pms.run(SimTime::from_day_time(day, 0, 0, 0))?;
        let places = pms.places();
        let night = places.iter().max_by_key(|p| {
            p.gca_visits
                .iter()
                .filter(|v| v.arrival.hour_of_day() < 6 || v.arrival.hour_of_day() >= 21)
                .count()
        });
        let work = places
            .iter()
            .filter(|p| Some(p.id) != night.map(|n| n.id))
            .max_by_key(|p| {
                (
                    p.visit_count,
                    p.gca_visits
                        .iter()
                        .filter(|v| (7..12).contains(&v.arrival.hour_of_day()))
                        .count(),
                )
            });
        if let Some(work) = work {
            if todo.workplace() != Some(work.id.0) {
                println!("day {day}: workplace (re)configured to {}", work.id);
                todo.set_workplace(work.id.0);
            }
        }
        for intent in rx.try_iter() {
            reminders.extend(todo.on_intent(&intent));
        }
    }

    // §2.4 steps 4–5: PMS broadcast the alerts; the app turned them into
    // reminders.
    println!("\nreminders fired over the week:");
    for r in &reminders {
        println!(
            "  [{}] {} — {}",
            r.time,
            if r.on_arrival {
                "arrived at work"
            } else {
                "left work"
            },
            r.message
        );
    }
    assert!(
        !reminders.is_empty(),
        "a commuter week must fire workplace reminders"
    );

    // The tracking window matters: no reminder outside 9–18 h... the
    // arrival events around 9 AM and departures around 5–6 PM fall inside.
    let outside = reminders
        .iter()
        .filter(|r| {
            let h = r.time.hour_of_day();
            !(8..=19).contains(&h)
        })
        .count();
    println!(
        "\n{} reminders total, {} outside the commute band",
        reminders.len(),
        outside
    );
    Ok(())
}
