//! Quickstart: build a world, run one participant's phone through PMWare
//! for a simulated week, and inspect what the middleware learned.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pmware::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic city (towers, WiFi, places, roads) and one
    //    participant moving through it on weekday/weekend schedules.
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(1)
        .build();
    let population = Population::generate(&world, 1, 2);
    let agent = &population.agents()[0];
    let days = 7;
    let itinerary = population.itinerary(&world, agent.id(), days);

    // 2. A phone carried along that itinerary, and the shared cloud.
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let phone = Device::new(env, &itinerary, EnergyModel::htc_explorer(), 3);
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 4));

    // 3. The middleware, with one connected application that wants
    //    building-level place events and low-accuracy routes.
    let mut pms =
        PmwareMobileService::new(phone, cloud, PmsConfig::for_participant(0), SimTime::EPOCH)?;
    let events = pms.register_app(
        "quickstart-app",
        AppRequirement::places(Granularity::Building).with_routes(RouteAccuracy::Low),
        IntentFilter::all(),
    );

    // 4. A simulated week.
    pms.run(SimTime::from_day_time(days, 0, 0, 0))?;

    // 5. What did PMWare learn?
    println!("discovered places: {}", pms.places().len());
    for place in pms.places() {
        println!(
            "  {} — {} cells, {} wifi APs, {} visits{}",
            place.id,
            place.cells.len(),
            place.wifi_aps.len(),
            place.visit_count,
            place
                .position
                .map(|p| format!(", est. position {p}"))
                .unwrap_or_default()
        );
    }
    println!("canonical routes: {}", pms.routes().routes().len());
    for route in pms.routes().routes() {
        println!(
            "  {:?}: {} -> {} used {}x",
            route.id, route.from, route.to, route.usage_count
        );
    }

    let counters = pms.counters();
    println!(
        "\nevents: {} arrivals, {} departures, {} routes, {} GCA offloads",
        counters.arrivals, counters.departures, counters.routes, counters.gca_offloads
    );

    let mut by_action = std::collections::BTreeMap::new();
    for intent in events.try_iter() {
        *by_action.entry(intent.action).or_insert(0u32) += 1;
    }
    println!("intents the app received: {by_action:?}");

    let report = pms.finish(SimTime::from_day_time(days, 0, 0, 0));
    println!(
        "\nbattery over the week: {:.1} kJ total",
        report.energy_joules / 1_000.0
    );
    for (interface, joules) in &report.energy_by_interface {
        println!("  {:>14}: {:>8.1} J", interface.label(), joules);
    }
    Ok(())
}
