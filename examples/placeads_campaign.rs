//! PlaceADs end-to-end (§3–§4): contextual ad cards on place arrivals,
//! swiped by a simulated user, with the like:dislike tally the deployment
//! study reports.
//!
//! ```sh
//! cargo run --release --example placeads_campaign
//! ```

use pmware::apps::adsim::Swipe;
use pmware::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = WorldBuilder::new(RegionProfile::urban_india())
        .seed(21)
        .build();
    let population = Population::generate(&world, 1, 22);
    let agent = &population.agents()[0];
    let days = 14;
    let itinerary = population.itinerary(&world, agent.id(), days);
    let env = RadioEnvironment::new(&world, RadioConfig::default());
    let phone = Device::new(env, &itinerary, EnergyModel::htc_explorer(), 23);
    let cloud = SharedCloud::new(CloudInstance::new(CellDatabase::from_world(&world), 24));
    let mut pms =
        PmwareMobileService::new(phone, cloud, PmsConfig::for_participant(2), SimTime::EPOCH)?;

    // PlaceADs delegates all place sensing to PMWare and only asks for
    // area-level granularity (Figure 2) — the user additionally caps it
    // there in her privacy preferences, which changes nothing since the
    // request is already coarse.
    let rx = pms.register_app(
        "placeads",
        PlaceAdsApp::requirement(),
        PlaceAdsApp::filter(),
    );
    pms.preferences_mut().set_cap("placeads", Granularity::Area);

    let mut app = PlaceAdsApp::new(AdInventory::from_world(&world));
    let mut user = UserTasteModel::from_agent(agent, 25);

    // Day-by-day: PMS runs, cards are served on each arrival intent, the
    // user swipes them with knowledge of where she actually was.
    for day in 1..=days {
        pms.run(SimTime::from_day_time(day, 0, 0, 0))?;
        for intent in rx.try_iter().collect::<Vec<_>>() {
            if let Some(card) = app.on_intent(&intent) {
                let truth = itinerary.position_at(card.served_at);
                let swipe = user.swipe(&card, truth);
                let distance = truth.equirectangular_distance(card.ad.position);
                println!(
                    "[{}] {} ({}, {:.0} m away) -> {}",
                    card.served_at,
                    card.ad.offer,
                    card.ad.category.label(),
                    distance.value(),
                    match swipe {
                        Swipe::Like => "LIKE",
                        Swipe::Dislike => "dislike",
                    }
                );
            }
        }
    }

    println!(
        "\ncampaign totals over {days} days: {} likes : {} dislikes ({:.0}% liked; paper: 17:3 = 85%)",
        user.likes(),
        user.dislikes(),
        user.like_fraction().unwrap_or(0.0) * 100.0
    );
    println!("cards served: {}", app.served().len());
    Ok(())
}
